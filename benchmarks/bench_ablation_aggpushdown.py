"""Ablation: aggregate pushdown vs driver-side aggregation.

Compiling ``group_by().agg()`` into one partial GROUP BY query per
hash-range task (merged by the driver-side combiner) ships one partial
row per group per range instead of every raw row of the table.
"""

from repro.bench.experiments import run_ablation_aggpushdown


def test_ablation_aggpushdown(run_experiment):
    run_experiment(run_ablation_aggpushdown)
