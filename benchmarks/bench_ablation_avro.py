"""Ablation: Avro deflate vs uncompressed payloads in S2V (§3.2.2).

On compressible data (D2's text) deflate shrinks the wire volume and the
save time; on incompressible data (D1's random doubles) it is a wash.
"""

from repro.bench.experiments import run_ablation_avro


def test_ablation_avro(run_experiment):
    run_experiment(run_ablation_avro)
