"""Ablation: what the hash-ring locality buys (DESIGN.md ablation).

Compares intra-Vertica shuffle bytes and time between V2S's node-local
hash-range queries and JDBC-style value ranges through one host.
"""

from repro.bench.experiments import run_ablation_locality


def test_ablation_locality(run_experiment):
    run_experiment(run_ablation_locality)
