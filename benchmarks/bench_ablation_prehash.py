"""Ablation: the paper's §5 future-work pre-hashed S2V partitioning.

Pre-hashing the DataFrame to the staging table's segmentation eliminates
all Vertica-internal redistribution traffic during the load.
"""

from repro.bench.experiments import run_ablation_prehash


def test_ablation_prehash(run_experiment):
    run_experiment(run_ablation_prehash)
