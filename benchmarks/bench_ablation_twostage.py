"""Ablation: single-stage S2V vs the 2-stage landing-zone approach (§5).

The paper predicts the 2-stage (spark-redshift style) design "may be
slower than our single-stage approach because it requires an
intermediate write of a full copy of the data"; this bench measures it.
"""

from repro.bench.experiments import run_ablation_twostage


def test_ablation_twostage(run_experiment):
    run_experiment(run_ablation_twostage)
