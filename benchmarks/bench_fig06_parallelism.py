"""Figure 6: execution time of V2S and S2V vs the number of partitions.

Paper: both directions show a bowl — 4 partitions generate too little
work per connection, 256 add overhead without transfer benefit; V2S is
497 s @32 / 475 s @128, S2V's best is 252 s @128.
"""

from repro.bench.experiments import run_fig6


def test_fig06_parallelism(run_experiment):
    run_experiment(run_fig6)
