"""Figure 7: scaling D1 from 1M to 1000M rows (log-log linear).

Paper: both directions scale linearly; S2V pays fixed overheads at small
sizes (19 s at 1M rows) and overtakes V2S at large sizes.
"""

from repro.bench.experiments import run_fig7


def test_fig07_data_scaling(run_experiment):
    run_experiment(run_fig7)
