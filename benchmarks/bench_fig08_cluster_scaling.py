"""Figure 8: cluster scaling 2:4 -> 4:8 -> 8:16 at fixed per-node data.

Paper: slight linear degradation (<10%) with each doubling.
"""

from repro.bench.experiments import run_fig8


def test_fig08_cluster_scaling(run_experiment):
    run_experiment(run_fig8)
