"""Figure 9: 100 cols x 100M rows vs 1 col x 10,000M rows (same cells).

Paper: the tall/narrow shape is significantly slower — per-row overheads
(JDBC encode, per-row hash, Avro pack/unpack) dominate.
"""

from repro.bench.experiments import run_fig9


def test_fig09_dimensionality(run_experiment):
    run_experiment(run_fig9)
