"""Figure 10: load via V2S vs Spark's JDBC Default Source.

Paper: without pushdown V2S is ~4x faster (hash-ring locality vs value
ranges through a single host); with a 5% selectivity pushdown both
shrink drastically and converge.
"""

from repro.bench.experiments import run_fig10


def test_fig10_jdbc_load(run_experiment):
    run_experiment(run_fig10)
