"""Figure 11: save via S2V vs JDBC Default Source at 1..1M rows.

Paper: 1 row shows the overheads (S2V 5 s vs JDBC 3 s); beyond ~1K rows
S2V's COPY path wins decisively; at 1M rows JDBC ran >3 hours.
"""

from repro.bench.experiments import run_fig11


def test_fig11_jdbc_save(run_experiment):
    run_experiment(run_fig11)
