"""Figure 12: Vertica connector vs Spark's native HDFS read/write.

Paper: HDFS reads ~30% faster (2240 block-parallel partitions vs 32
consistent hash-range queries); writes are about the same — so Vertica
can serve as durable DataFrame storage in place of HDFS.
"""

from repro.bench.experiments import run_fig12


def test_fig12_hdfs(run_experiment):
    run_experiment(run_fig12)
