"""Scan/aggregate throughput of the plan pipeline vs the legacy interpreter.

The ``repro.vertica.plan`` pipeline replaced the per-row-dict interpreter
with columnar batch operators.  This bench measures rows/sec on the three
canonical shapes — full scan, filtered scan, grouped aggregation — over a
20,000-row table and writes a report artifact comparing against the
legacy interpreter's numbers (measured on the same workload immediately
before the interpreter was deleted, same container class).

It also closes the accounting loop end-to-end: PROFILE's per-operator
row counts must reconcile exactly with the statement's CostReport and
with the fabric's V2S telemetry counters when the same table flows
through a Spark read.
"""

import os
import time

import pytest

from repro import telemetry
from repro.connector import SimVerticaCluster
from repro.sim import Environment
from repro.spark import SparkSession
from repro.telemetry import MetricsRegistry
from repro.vertica import VerticaDatabase

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

ROWS = 20_000
NUM_NODES = 4

#: rows/sec of the pre-pipeline interpreter on this exact workload
#: (measured at the commit that removed it; see docs/ENGINE.md)
LEGACY_ROWS_PER_SEC = {
    "full_scan": 168_054,
    "filtered_scan": 217_505,
    "grouped_agg": 221_990,
}

QUERIES = {
    "full_scan": "SELECT id, grp, v, name FROM big",
    "filtered_scan": "SELECT id, v FROM big WHERE v > 50.0",
    "grouped_agg": (
        "SELECT grp, COUNT(*), SUM(v), MIN(v), MAX(v) FROM big GROUP BY grp"
    ),
}

#: CI smoke floor: the pipeline must stay within an order of magnitude of
#: the legacy interpreter (machine-dependent, so deliberately loose)
MIN_ROWS_PER_SEC = 20_000


def load_big_table(session):
    session.execute(
        "CREATE TABLE big (id INTEGER, grp INTEGER, v FLOAT, "
        "name VARCHAR(20)) SEGMENTED BY HASH(id) ALL NODES"
    )
    chunk = 2_000
    for start in range(0, ROWS, chunk):
        values = ", ".join(
            f"({i}, {i % 37}, {float(i % 101)}, 'n{i % 50}')"
            for i in range(start, start + chunk)
        )
        session.execute(f"INSERT INTO big VALUES {values}")


@pytest.fixture(scope="module")
def session():
    db = VerticaDatabase(num_nodes=NUM_NODES)
    session = db.connect()
    load_big_table(session)
    return session


def measure(session, sql, repeats=3):
    """Best-of-N wall time and the last result."""
    best = float("inf")
    result = None
    for __ in range(repeats):
        started = time.perf_counter()
        result = session.execute(sql)
        best = min(best, time.perf_counter() - started)
    return best, result


def test_scan_throughput_report(session):
    lines = [
        "scan throughput: plan pipeline vs legacy interpreter",
        f"table: big ({ROWS} rows, {NUM_NODES} nodes)",
        "",
        f"{'workload':<16} {'rows/sec':>12} {'legacy':>12} {'ratio':>7}",
    ]
    measured = {}
    for name, sql in QUERIES.items():
        elapsed, result = measure(session, sql)
        assert result.cost.rows_scanned == ROWS
        rows_per_sec = ROWS / elapsed
        measured[name] = rows_per_sec
        legacy = LEGACY_ROWS_PER_SEC[name]
        lines.append(
            f"{name:<16} {rows_per_sec:>12,.0f} {legacy:>12,} "
            f"{rows_per_sec / legacy:>6.2f}x"
        )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "scan_throughput.txt")
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))
    for name, rows_per_sec in measured.items():
        assert rows_per_sec > MIN_ROWS_PER_SEC, (
            f"{name}: {rows_per_sec:,.0f} rows/s under the "
            f"{MIN_ROWS_PER_SEC:,} rows/s smoke floor"
        )


def test_profile_reconciles_with_cost_and_v2s_telemetry():
    """PROFILE row counts == CostReport == V2S fabric telemetry."""
    env = Environment()
    vc = SimVerticaCluster(env=env, num_nodes=NUM_NODES)
    spark = SparkSession(env=env, cluster=vc.sim_cluster, num_workers=4)
    session = vc.db.connect()
    load_big_table(session)

    telemetry.install(MetricsRegistry(enabled=True))
    try:
        # PROFILE the grouped aggregation: operator stats vs CostReport.
        report = session.execute("PROFILE " + QUERIES["grouped_agg"])
        stats = {
            kind: (rows_in, rows_out)
            for kind, rows_in, rows_out in report.profile.operator_rows()
        }
        assert stats["scan"][1] == report.cost.rows_scanned == ROWS
        assert stats["aggregate"][0] == report.cost.rows_aggregated == ROWS
        assert stats["aggregate"][1] == len(report.query_result.rows) == 37
        # The same rows flowed into the plan-level telemetry counters.
        assert telemetry.counter("vertica.plan.scan.rows_out").value == ROWS
        assert (
            telemetry.counter("vertica.plan.aggregate.rows_out").value == 37
        )

        # V2S read of the same table: the connector's fetch counter must
        # agree with what a profiled full scan says the table holds.
        df = (
            spark.read.format("vertica")
            .options({"db": vc, "table": "big", "numpartitions": 4})
            .load()
        )
        assert len(df.collect()) == ROWS
        assert telemetry.counter("v2s.rows_fetched").value == ROWS
    finally:
        telemetry.reset()
