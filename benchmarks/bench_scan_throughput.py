"""Scan/aggregate throughput of the plan pipeline vs the legacy interpreter.

The measurement itself lives in the ``scan_throughput`` area of the grid
harness (:mod:`repro.bench.grid`): three canonical shapes — full scan,
filtered scan, grouped aggregation — over a 20,000-row table, best-of-N
wall timing, recorded as rows/sec in ``BENCH_scan_throughput.json`` and
gated in CI against the committed baseline's floors.  This bench drives
that area through pytest and layers on the legacy-interpreter comparison
(numbers measured on the same workload immediately before the interpreter
was deleted, same container class; see docs/ENGINE.md).

It also closes the accounting loop end-to-end: PROFILE's per-operator
row counts must reconcile exactly with the statement's CostReport and
with the fabric's V2S telemetry counters when the same table flows
through a Spark read.
"""

import os

from repro import telemetry
from repro.bench.grid import AREAS, DONE, SCAN_QUERIES, load_scan_table, run_area
from repro.connector import SimVerticaCluster
from repro.sim import Environment
from repro.spark import SparkSession
from repro.telemetry import MetricsRegistry

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

AREA = AREAS["scan_throughput"]
ROWS = AREA.config["rows"]
NUM_NODES = AREA.config["num_nodes"]

#: rows/sec of the pre-pipeline interpreter on this exact workload
#: (measured at the commit that removed it; see docs/ENGINE.md)
LEGACY_ROWS_PER_SEC = {
    "full_scan": 168_054,
    "filtered_scan": 217_505,
    "grouped_agg": 221_990,
}

#: CI smoke floor: the pipeline must stay within an order of magnitude of
#: the legacy interpreter (machine-dependent, so deliberately loose)
MIN_ROWS_PER_SEC = AREA.gate["floors"]["rows_per_sec"]


def test_scan_throughput_report():
    store, report = run_area(AREA, RESULTS_DIR, log=lambda _msg: None)
    assert report.all_checks_pass, report.failed_checks()
    measured = {
        cell["params"]["workload"]: cell["metrics"]["rows_per_sec"]
        for cell in store.records()
        if cell["status"] == DONE
    }
    assert set(measured) == set(SCAN_QUERIES)
    lines = [
        "scan throughput: plan pipeline vs legacy interpreter",
        f"table: big ({ROWS} rows, {NUM_NODES} nodes)",
        "",
        f"{'workload':<16} {'rows/sec':>12} {'legacy':>12} {'ratio':>7}",
    ]
    for name, rows_per_sec in measured.items():
        legacy = LEGACY_ROWS_PER_SEC[name]
        lines.append(
            f"{name:<16} {rows_per_sec:>12,.0f} {legacy:>12,} "
            f"{rows_per_sec / legacy:>6.2f}x"
        )
    path = os.path.join(RESULTS_DIR, "scan_throughput.txt")
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))
    for name, rows_per_sec in measured.items():
        assert rows_per_sec > MIN_ROWS_PER_SEC, (
            f"{name}: {rows_per_sec:,.0f} rows/s under the "
            f"{MIN_ROWS_PER_SEC:,} rows/s smoke floor"
        )


def test_profile_reconciles_with_cost_and_v2s_telemetry():
    """PROFILE row counts == CostReport == V2S fabric telemetry."""
    env = Environment()
    vc = SimVerticaCluster(env=env, num_nodes=NUM_NODES)
    spark = SparkSession(env=env, cluster=vc.sim_cluster, num_workers=4)
    session = vc.db.connect()
    load_scan_table(session, ROWS)

    telemetry.install(MetricsRegistry(enabled=True))
    try:
        # PROFILE the grouped aggregation: operator stats vs CostReport.
        report = session.execute("PROFILE " + SCAN_QUERIES["grouped_agg"])
        stats = {
            kind: (rows_in, rows_out)
            for kind, rows_in, rows_out in report.profile.operator_rows()
        }
        assert stats["scan"][1] == report.cost.rows_scanned == ROWS
        assert stats["aggregate"][0] == report.cost.rows_aggregated == ROWS
        assert stats["aggregate"][1] == len(report.query_result.rows) == 37
        # The same rows flowed into the plan-level telemetry counters.
        assert telemetry.counter("vertica.plan.scan.rows_out").value == ROWS
        assert (
            telemetry.counter("vertica.plan.aggregate.rows_out").value == 37
        )

        # V2S read of the same table: the connector's fetch counter must
        # agree with what a profiled full scan says the table holds.
        df = (
            spark.read.format("vertica")
            .options({"db": vc, "table": "big", "numpartitions": 4})
            .load()
        )
        assert len(df.collect()) == ROWS
        assert telemetry.counter("v2s.rows_fetched").value == ROWS
    finally:
        telemetry.reset()
