"""Staged (distributed-FS) transport vs direct JDBC, both directions.

The direct transport streams every row over JDBC/COPY and is bounded by
the per-COPY-stream cap (S2V) and the per-connection result-stream cap
(V2S).  The staging transport writes columnar files on the simulated
HDFS instead: S2V tasks stage attempt files and the driver bulk-loads
them with one ``COPY ... FORMAT COLUMNAR`` per node; V2S exports
segment-local columnar files and scan tasks read them block-locally.

This bench sweeps partition counts for both directions and both
transports over the same dataset, writes the machine-readable
``BENCH_staging.json`` artifact, and asserts the headline claim: at 8+
partitions the staged transport beats direct JDBC in *both* directions.

Run standalone (full size, writes the artifact)::

    PYTHONPATH=src python benchmarks/bench_staging_transport.py

or through pytest (the CI smoke job does this)::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_staging_transport.py
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.fabric import Fabric  # noqa: E402
from repro.workloads.datasets import make_d1  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
ARTIFACT = os.path.join(RESULTS_DIR, "BENCH_staging.json")

#: the dataset every cell moves: 400 real rows scaled to the virtual size
REAL_ROWS = 400
NUM_COLS = 10
SEED = 7
VIRTUAL_ROWS = 16_000_000

PARTITION_COUNTS = (2, 4, 8, 16)
#: the acceptance gate: staged must win at and above this partition count
GATE_PARTITIONS = 8

TABLE = "staging_bench"
STAGING = {"transport": "staging", "staging_root": "/staging"}


def _fabric() -> Fabric:
    return Fabric(with_hdfs=True)


def _dataset():
    return make_d1(REAL_ROWS, VIRTUAL_ROWS, NUM_COLS, SEED)


def measure_s2v(partitions: int, staged: bool) -> float:
    """Seconds for one S2V save of the dataset at ``partitions`` tasks."""
    fabric = _fabric()
    dataset = _dataset()
    options = dict(STAGING, staging_fs=fabric.hdfs) if staged else {}
    return fabric.s2v_save(dataset, TABLE, partitions, **options)


def measure_v2s(partitions: int, staged: bool) -> float:
    """Seconds for one V2S load of the dataset at ``partitions`` tasks."""
    fabric = _fabric()
    dataset = _dataset()
    fabric.populate(dataset, TABLE)
    options = dict(STAGING, staging_fs=fabric.hdfs) if staged else {}
    elapsed, rows = fabric.v2s_load(
        TABLE, partitions, dataset.scale, **options
    )
    assert rows == REAL_ROWS, f"V2S returned {rows} rows, wanted {REAL_ROWS}"
    return elapsed


def run_bench(virtual_rows: int = VIRTUAL_ROWS) -> dict:
    """Sweep both directions × transports × partition counts."""
    global VIRTUAL_ROWS
    VIRTUAL_ROWS = virtual_rows
    results = {
        "dataset": {
            "real_rows": REAL_ROWS,
            "virtual_rows": virtual_rows,
            "num_cols": NUM_COLS,
            "seed": SEED,
        },
        "gate_partitions": GATE_PARTITIONS,
        "cells": [],
    }
    for direction, measure in (("s2v", measure_s2v), ("v2s", measure_v2s)):
        for partitions in PARTITION_COUNTS:
            direct = measure(partitions, staged=False)
            staged = measure(partitions, staged=True)
            cell = {
                "direction": direction,
                "partitions": partitions,
                "direct_seconds": round(direct, 3),
                "staged_seconds": round(staged, 3),
                "speedup": round(direct / staged, 3) if staged else None,
            }
            results["cells"].append(cell)
            print(
                f"{direction} p={partitions:3d}  "
                f"direct {direct:8.2f}s  staged {staged:8.2f}s  "
                f"speedup {cell['speedup']:.2f}x"
            )
    return results


def gate_failures(results: dict) -> list:
    """Cells at/above the gate where staged did not beat direct."""
    return [
        cell for cell in results["cells"]
        if cell["partitions"] >= results["gate_partitions"]
        and cell["staged_seconds"] >= cell["direct_seconds"]
    ]


def write_artifact(results: dict, path: str = ARTIFACT) -> None:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")


def test_staging_transport_beats_direct_at_scale():
    """CI gate: staged wins both directions at >= GATE_PARTITIONS."""
    results = run_bench()
    write_artifact(results)
    failures = gate_failures(results)
    assert not failures, (
        f"staged transport lost to direct JDBC at >= {GATE_PARTITIONS} "
        f"partitions: {failures}"
    )


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--virtual-rows", type=int, default=VIRTUAL_ROWS)
    parser.add_argument("--output", default=ARTIFACT)
    args = parser.parse_args()
    results = run_bench(args.virtual_rows)
    write_artifact(results, args.output)
    failures = gate_failures(results)
    if failures:
        print(f"GATE FAILED: staged lost at >= {GATE_PARTITIONS} partitions "
              f"in {len(failures)} cell(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
