"""Staged (distributed-FS) transport vs direct JDBC, both directions.

The direct transport streams every row over JDBC/COPY and is bounded by
the per-COPY-stream cap (S2V) and the per-connection result-stream cap
(V2S).  The staging transport writes columnar files on the simulated
HDFS instead: S2V tasks stage attempt files and the driver bulk-loads
them with one ``COPY ... FORMAT COLUMNAR`` per node; V2S exports
segment-local columnar files and scan tasks read them block-locally.

The sweep itself is the ``staging`` area of the grid harness
(:mod:`repro.bench.grid`): direction × transport × partition count over
the same dataset, journaled for resume, emitted as the schema-versioned
``BENCH_staging.json`` artifact and gated in CI against the committed
baseline.  This bench drives that area through pytest and asserts the
headline claim: at 8+ partitions the staged transport beats direct JDBC
in *both* directions.

Run the area standalone (resumable, writes the artifact)::

    PYTHONPATH=src python -m repro.bench.grid staging

or through pytest (the CI smoke job does this)::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_staging_transport.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.grid import AREAS, DONE, run_area  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
ARTIFACT = os.path.join(RESULTS_DIR, "BENCH_staging.json")

AREA = AREAS["staging"]
#: the acceptance gate: staged must win at and above this partition count
GATE_PARTITIONS = AREA.config["gate_partitions"]


def test_staging_transport_beats_direct_at_scale():
    """CI gate: staged wins both directions at >= GATE_PARTITIONS."""
    store, report = run_area(AREA, RESULTS_DIR, log=lambda _msg: None)
    assert os.path.exists(ARTIFACT)
    times = {
        (c["params"]["direction"], c["params"]["transport"],
         c["params"]["partitions"]): c["sim_seconds"]
        for c in store.records() if c["status"] == DONE
    }
    for (direction, transport, partitions), staged in sorted(
            times.items(), key=lambda item: str(item[0])):
        if transport != "staged" or partitions < GATE_PARTITIONS:
            continue
        direct = times[(direction, "direct", partitions)]
        print(
            f"{direction} p={partitions:3d}  direct {direct:8.2f}s  "
            f"staged {staged:8.2f}s  speedup {direct / staged:.2f}x"
        )
    assert report.all_checks_pass, (
        f"staged transport lost to direct JDBC at >= {GATE_PARTITIONS} "
        f"partitions: {report.failed_checks()}"
    )
