"""Table 2: one Vertica node's CPU and outbound network during V2S.

Paper: with 4 partitions the network idles at ~38 MB/s (one connection's
producer pipeline) and CPU ~5%; with 32 partitions the NIC saturates at
~120 MB/s and CPU ~20%.
"""

from repro.bench.experiments import run_tab2


def test_tab02_resources(run_experiment):
    run_experiment(run_tab2)
