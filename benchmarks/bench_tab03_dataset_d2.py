"""Table 3: dataset D2 (tweets, 1.46B rows in the same 140 GB).

Paper: V2S loads D2 faster than D1 (378 vs ~490 s) while S2V saves it
slower (386 vs 252 s) — row count, not byte count, drives the difference.
"""

from repro.bench.experiments import run_tab3


def test_tab03_dataset_d2(run_experiment):
    run_experiment(run_tab3)
