"""Table 4: S2V vs Vertica's native parallel COPY from local splits.

Paper: best COPY 238 s (8 file parts) vs best S2V 252 s — S2V is ~6%
slower but needs no pre-staged node-local files.
"""

from repro.bench.experiments import run_tab4


def test_tab04_native_copy(run_experiment):
    run_experiment(run_tab4)
