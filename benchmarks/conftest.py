"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables or figures through
:mod:`repro.bench.experiments`, prints the paper-vs-measured report,
saves it under ``benchmarks/results/``, and *asserts the shape checks* —
who wins, by roughly what factor, where crossovers fall.

The simulations are deterministic, so each experiment runs once
(``benchmark.pedantic`` with a single round); pytest-benchmark records
the wall time of the harness itself.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Run one experiment function under pytest-benchmark and verify it."""

    def runner(experiment_fn):
        report = benchmark.pedantic(
            experiment_fn, rounds=1, iterations=1, warmup_rounds=0
        )
        with capsys.disabled():
            report.show(RESULTS_DIR)
        failed = report.failed_checks()
        assert not failed, f"shape checks failed: {failed}"
        return report

    return runner
