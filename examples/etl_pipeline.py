"""Spark as an ETL engine for Vertica (the paper's second headline use).

Raw, messy click logs land in HDFS.  Spark extracts and transforms them
(parse, filter bots, derive columns), then S2V loads the result into
Vertica with exactly-once semantics and a rejected-row tolerance — the
E-T in Spark, the L through the connector.

Run:  python examples/etl_pipeline.py
"""

from repro.baselines.hdfs_source import SimHdfsCluster
from repro.connector import SimVerticaCluster
from repro.connector.defaultsource import DefaultSource
from repro.sim import Environment
from repro.spark import SparkSession, StructField, StructType


RAW_SCHEMA = StructType(
    [
        StructField("line_no", "long"),
        StructField("raw", "string"),
    ]
)

CLEAN_SCHEMA = StructType(
    [
        StructField("user_id", "long"),
        StructField("url", "string"),
        StructField("latency_ms", "double"),
    ]
)


def make_raw_lines(count: int):
    """Synthetic click-log lines, a fraction of them malformed or bots."""
    lines = []
    for i in range(count):
        if i % 41 == 0:
            lines.append((i, "CORRUPT###"))
        elif i % 17 == 0:
            lines.append((i, f"bot-{i}|/healthz|0.1"))
        else:
            lines.append((i, f"{1000 + i % 97}|/page/{i % 23}|{(i % 900) / 3.0}"))
    return lines


def parse_line(row):
    """raw line -> (user_id, url, latency_ms) or None for junk/bots."""
    __, raw = row
    parts = raw.split("|")
    if len(parts) != 3:
        return None
    user, url, latency = parts
    if user.startswith("bot-"):
        return None
    try:
        return (int(user), url, float(latency))
    except ValueError:
        return None


def main() -> None:
    env = Environment()
    vertica = SimVerticaCluster(env=env, num_nodes=4)
    spark = SparkSession(env=env, cluster=vertica.sim_cluster, num_workers=8)
    hdfs = SimHdfsCluster(env, vertica.sim_cluster, num_nodes=4,
                          block_size=16 * 1024)

    # --- Extract: raw logs land in HDFS -----------------------------------------
    raw = spark.create_dataframe(make_raw_lines(3000), RAW_SCHEMA,
                                 num_partitions=8)
    raw.write.format("hdfs").options(fs=hdfs, path="/logs/day1").save()
    landed = spark.read.format("hdfs").options(fs=hdfs, path="/logs/day1").load()
    print(f"extracted {landed.count()} raw lines from HDFS "
          f"({sum(hdfs.fs.total_blocks(p) for p in hdfs.fs.list('/logs/day1/part-'))} blocks)")

    # --- Transform: parse, drop bots/corrupt, derive columns ----------------------
    cleaned_rdd = (
        landed.rdd()
        .map(parse_line)
        .filter(lambda r: r is not None)
        .filter(lambda r: r[2] > 0.0)
    )
    cleaned = spark.create_dataframe(cleaned_rdd.collect(), CLEAN_SCHEMA,
                                     num_partitions=8)
    print(f"transformed down to {cleaned.count()} clean click rows")

    # --- Load: exactly-once into Vertica with rejected-row tolerance --------------
    cleaned.write.format("vertica").options(
        db=vertica,
        table="clicks",
        numpartitions=16,
        failed_rows_percent_tolerance=0.01,
    ).mode("overwrite").save()
    result = DefaultSource.last_save_result
    print(f"S2V: loaded {result.rows_loaded} rows "
          f"({result.rows_rejected} rejected, status {result.status})")

    # --- the warehouse view -------------------------------------------------------
    session = vertica.db.connect()
    top = session.execute(
        "SELECT url, COUNT(*) AS hits, AVG(latency_ms) AS avg_ms FROM clicks "
        "GROUP BY url ORDER BY hits DESC, url LIMIT 3"
    )
    print("top pages in Vertica:")
    for url, hits, avg_ms in top.rows:
        print(f"  {url}: {hits} hits, {avg_ms:.1f} ms avg")

    # Daily increments simply append (still exactly-once):
    increment = spark.create_dataframe(
        [(5000, "/page/new", 12.5)], CLEAN_SCHEMA, num_partitions=1
    )
    increment.write.format("vertica").options(
        db=vertica, table="clicks", numpartitions=4
    ).mode("append").save()
    print(f"after append: {session.scalar('SELECT COUNT(*) FROM clicks')} rows")


if __name__ == "__main__":
    main()
