"""Exactly-once under fire: the §3.2.1 guarantees, demonstrated.

Injects the failure modes the paper's protocol defends against and shows
the target table is never partially or doubly loaded:

1. every task's first attempt dies right *after* committing its staging
   write (the subtle duplicate-after-commit case of §2.2.2);
2. speculative execution duplicates tasks, and the losers run their side
   effects to completion;
3. total Spark failure mid-job leaves the target untouched and the
   permanent job-status table shows IN_PROGRESS;
4. the same workload through the JDBC Default Source baseline *does*
   duplicate rows — the hazard the connector exists to remove.

Run:  python examples/fault_tolerance.py
"""

import repro.baselines  # noqa: F401  (registers the 'jdbc' data source)
from repro.connector import SimVerticaCluster
from repro.connector.defaultsource import DefaultSource
from repro.connector.s2v import FINAL_STATUS_TABLE, S2VWriter
from repro.sim import Environment
from repro.spark import JobFailedError, SparkSession, StructField, StructType
from repro.spark.faults import FailOncePerTaskPolicy, InjectedFailure, ProbeFailurePolicy

SCHEMA = StructType([StructField("id", "long"), StructField("v", "double")])
ROWS = [(i, i * 0.5) for i in range(400)]


def fabric(**spark_kwargs):
    env = Environment()
    vertica = SimVerticaCluster(env=env, num_nodes=4)
    spark = SparkSession(env=env, cluster=vertica.sim_cluster, num_workers=8,
                         **spark_kwargs)
    return vertica, spark


def count(vertica, table):
    session = vertica.db.connect()
    try:
        return session.scalar(f"SELECT COUNT(*) FROM {table}")
    finally:
        session.close()


def scenario_1_fail_after_commit():
    print("\n[1] every task dies once, right after its phase-1 commit")
    vertica, spark = fabric(
        fault_policy=FailOncePerTaskPolicy("s2v:phase1_after_commit")
    )
    df = spark.create_dataframe(ROWS, SCHEMA, num_partitions=8)
    df.write.format("vertica").options(
        db=vertica, table="t1", numpartitions=8
    ).mode("overwrite").save()
    loaded = count(vertica, "t1")
    print(f"    8 injected failures, retried tasks found done=TRUE -> "
          f"{loaded} rows (expected {len(ROWS)}): "
          f"{'exactly-once' if loaded == len(ROWS) else 'BROKEN'}")


def scenario_2_speculative_duplicates():
    print("\n[2] speculative execution: duplicate attempts run side effects")
    vertica, spark = fabric(speculation=True, kill_speculative_losers=False)
    df = spark.create_dataframe(ROWS, SCHEMA, num_partitions=8)
    df.write.format("vertica").options(
        db=vertica, table="t2", numpartitions=8
    ).mode("overwrite").save()
    vertica.env.run()  # let zombie duplicates finish their (harmless) work
    loaded = count(vertica, "t2")
    print(f"    duplicates deduped by the staging protocol -> {loaded} rows "
          f"(expected {len(ROWS)}): "
          f"{'exactly-once' if loaded == len(ROWS) else 'BROKEN'}")


def scenario_3_total_spark_failure():
    print("\n[3] total Spark failure mid-job")
    vertica, spark = fabric()
    # Seed an existing target the failed job must not damage.
    seed = spark.create_dataframe([(999, 9.9)], SCHEMA, num_partitions=1)
    seed.write.format("vertica").options(
        db=vertica, table="t3", numpartitions=4
    ).mode("overwrite").save()

    df = spark.create_dataframe(ROWS, SCHEMA, num_partitions=8)
    writer = S2VWriter(spark, "overwrite",
                       {"db": vertica, "table": "t3", "numpartitions": 8}, df)
    vertica.run(writer._setup())
    rdd, tasks = writer._partitioned_rdd()
    job = spark.scheduler.submit(
        [writer._make_task(rdd, i) for i in range(tasks)], writer.job_name
    )

    def crash():
        yield vertica.env.timeout(0.0)
        job.cancel("driver JVM crashed")

    vertica.env.process(crash())
    try:
        vertica.env.run(job.done)
    except JobFailedError as exc:
        print(f"    job failed as expected: {exc}")
    vertica.env.run()
    session = vertica.db.connect()
    status = session.scalar(
        f"SELECT status FROM {FINAL_STATUS_TABLE} "
        f"WHERE job_name = '{writer.job_name}'"
    )
    print(f"    target untouched ({count(vertica, 't3')} row(s), the old "
          f"data); job status the user can consult: {status}")


def scenario_4_jdbc_baseline_duplicates():
    print("\n[4] the same failure through JDBC Default Source (no protocol)")

    class DieAfterSecondInsert(ProbeFailurePolicy):
        def __init__(self):
            super().__init__({})
            self.seen = 0

        def on_probe(self, ctx, label):
            if label == "jdbc:before_insert_batch" and ctx.attempt_number == 0:
                self.seen += 1
                if self.seen == 3:
                    raise InjectedFailure("task dies after two inserts")

    vertica, spark = fabric(fault_policy=DieAfterSecondInsert())
    df = spark.create_dataframe(ROWS[:40], SCHEMA, num_partitions=1)
    df.write.format("jdbc").options(
        db=vertica, table="t4", batchsize=16
    ).mode("overwrite").save()
    loaded = count(vertica, "t4")
    print(f"    {loaded} rows for {40} inputs -> "
          f"{'DUPLICATED (as the paper warns)' if loaded > 40 else 'ok'}")


def main() -> None:
    scenario_1_fail_after_commit()
    scenario_2_speculative_duplicates()
    scenario_3_total_spark_failure()
    scenario_4_jdbc_baseline_duplicates()
    print("\nAll scenarios complete.")


if __name__ == "__main__":
    main()
