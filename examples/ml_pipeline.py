"""The full analytics pipeline of Figure 1: V2S -> MLlib -> MD -> in-DB scoring.

1. Customer events live in Vertica (the system of record).
2. V2S loads a consistent snapshot into Spark.
3. Spark MLlib trains a logistic-regression churn model.
4. MD exports the model as PMML, deploys it into Vertica's internal DFS,
   and registers the generic ``PMMLPredict`` UDx.
5. Predictions run *inside the database* with plain SQL — "closing the
   loop on the full analytics pipeline" (§3.3).

Run:  python examples/ml_pipeline.py
"""

from repro.connector import (
    SimVerticaCluster,
    deploy_pmml_model,
    install_pmml_udx,
    list_models,
)
from repro.sim import Environment
from repro.spark import SparkSession
from repro.spark.mllib import LabeledPoint, train_logistic_regression


def main() -> None:
    env = Environment()
    vertica = SimVerticaCluster(env=env, num_nodes=4)
    spark = SparkSession(env=env, cluster=vertica.sim_cluster, num_workers=8)

    # --- the system of record -------------------------------------------------
    session = vertica.db.connect()
    session.execute(
        "CREATE TABLE customers (customer_id INTEGER, monthly_spend FLOAT, "
        "support_tickets FLOAT, churned INTEGER) "
        "SEGMENTED BY HASH(customer_id) ALL NODES"
    )
    rows = []
    for i in range(1, 601):
        spend = (i * 37) % 200 / 2.0
        tickets = float((i * 13) % 8)
        churned = 1 if tickets * 12 - spend > 10 else 0
        rows.append(f"({i}, {spend}, {tickets}, {churned})")
    session.execute(f"INSERT INTO customers VALUES {', '.join(rows)}")

    # --- V2S: a consistent training snapshot into Spark -------------------------
    df = spark.read.format("vertica").options(
        db=vertica, table="customers", numpartitions=8
    ).load()
    training = df.select("MONTHLY_SPEND", "SUPPORT_TICKETS", "CHURNED").collect()
    print(f"V2S: {len(training)} training rows loaded into Spark")

    # --- train in Spark MLlib ----------------------------------------------------
    points = [
        LabeledPoint(float(churned), [spend, tickets])
        for spend, tickets, churned in training
    ]
    model = train_logistic_regression(
        points, iterations=250, names=["monthly_spend", "support_tickets"]
    )
    spark_side_accuracy = sum(
        1 for p in points if model.predict(p.features) == p.label
    ) / len(points)
    print(f"trained logistic regression; Spark-side accuracy "
          f"{spark_side_accuracy:.1%}")

    # --- MD: deploy the PMML model into Vertica ---------------------------------
    pmml = model.to_pmml("churn")
    deploy_pmml_model(vertica.db, "churn", pmml)
    install_pmml_udx(vertica.db)
    print("deployed models:", [(m["MODEL_NAME"], m["MODEL_TYPE"])
                               for m in list_models(vertica.db)])
    print("PMML document stored in the DFS at:",
          vertica.db.dfs.list("pmml_models/"))

    # --- in-database scoring with plain SQL -------------------------------------
    scored = session.execute(
        "SELECT customer_id, PMMLPredict(monthly_spend, support_tickets "
        "USING PARAMETERS model_name='churn') AS churn_risk "
        "FROM customers ORDER BY churn_risk DESC, customer_id LIMIT 5"
    )
    print("top-5 churn risks, computed inside Vertica:")
    for customer_id, risk in scored.rows:
        print(f"  customer {customer_id}: {risk:.3f}")

    # Verify in-DB scoring agrees with the Spark-side model exactly.
    check = session.execute(
        "SELECT monthly_spend, support_tickets, "
        "PMMLPredict(monthly_spend, support_tickets USING PARAMETERS "
        "model_name='churn') FROM customers LIMIT 20"
    )
    max_delta = max(
        abs(p - model.predict_probability([spend, tickets]))
        for spend, tickets, p in check.rows
    )
    print(f"max |in-DB - Spark| prediction delta over 20 rows: {max_delta:.2e}")


if __name__ == "__main__":
    main()
