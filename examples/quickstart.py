"""Quickstart: the enterprise fabric in five minutes.

Builds a simulated 4-node Vertica cluster and an 8-worker Spark cluster
on one simulation clock, then exercises the connector's two directions
exactly as in Table 1 of the paper:

- S2V: save a Spark DataFrame into Vertica (exactly-once, COPY + Avro),
- V2S: load it back through locality-aware hash-range queries, with
  filter and count pushdown.

Run:  python examples/quickstart.py
"""

from repro.connector import SimVerticaCluster
from repro.connector.defaultsource import DefaultSource
from repro.sim import Environment
from repro.spark import GreaterThan, SparkSession, StructField, StructType


def main() -> None:
    # One simulation environment hosts both clusters (the "fabric").
    env = Environment()
    vertica = SimVerticaCluster(env=env, num_nodes=4)
    spark = SparkSession(env=env, cluster=vertica.sim_cluster, num_workers=8)

    # A DataFrame of synthetic order data.
    schema = StructType(
        [
            StructField("order_id", "long"),
            StructField("amount", "double"),
            StructField("region", "string"),
        ]
    )
    rows = [
        (i, round(10.0 + (i * 7919) % 990 / 10.0, 2), ["EMEA", "AMER", "APAC"][i % 3])
        for i in range(1, 501)
    ]
    orders = spark.create_dataframe(rows, schema, num_partitions=8)

    # --- S2V: Spark -> Vertica -------------------------------------------------
    orders.write.format("vertica").options(
        db=vertica, table="orders", numpartitions=16
    ).mode("overwrite").save()
    result = DefaultSource.last_save_result
    print(f"S2V: {result.rows_loaded} rows loaded, job {result.job_name} "
          f"finished with status {result.status}")

    # The permanent job record survives in Vertica:
    session = vertica.db.connect()
    status_rows = session.execute(
        "SELECT job_name, status FROM S2V_JOB_STATUS"
    ).rows
    print(f"S2V job log in Vertica: {status_rows}")

    # Vertica-side SQL sees the data immediately:
    by_region = session.execute(
        "SELECT region, COUNT(*) AS n, SUM(amount) AS total FROM orders "
        "GROUP BY region ORDER BY region"
    )
    print("SQL aggregate in Vertica:")
    for region, count, total in by_region.rows:
        print(f"  {region}: {count} orders, {total:.2f} total")

    # --- V2S: Vertica -> Spark --------------------------------------------------
    df = spark.read.format("vertica").options(
        db=vertica, table="orders", numpartitions=16
    ).load()
    print(f"V2S: loaded {df.count()} rows "
          f"(COUNT pushed down into Vertica)")

    # Filter + column pushdown: Vertica pre-filters, only 2 columns travel.
    big = df.filter(GreaterThan("AMOUNT", 100.0)).select("ORDER_ID", "AMOUNT")
    big_rows = big.collect()
    print(f"V2S with pushdown: {len(big_rows)} orders above 100.00")

    # The locality-aware V2S queries induced zero Vertica-internal
    # traffic; the small residue below is S2V's segment redistribution.
    print(f"intra-Vertica bytes (S2V redistribution only): "
          f"{vertica.internal_bytes():.0f}")
    print(f"simulated wall clock consumed: {env.now:.2f}s")


if __name__ == "__main__":
    main()
