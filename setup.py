"""Legacy setuptools shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 660 editable installs fail; this shim lets ``pip install -e .`` take
pip's legacy ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
