"""Reproduction of the SIGMOD 2016 paper "Building the Enterprise Fabric for
Big Data with Vertica and Spark Integration" (LeFevre et al.).

The package implements, from scratch:

- ``repro.sim`` — a discrete-event simulation kernel with a fair-share
  network model and CPU core pools (the "cluster hardware").
- ``repro.vertica`` — an MPP columnar database with hash-ring segmentation,
  epochs/MVCC, ACID transactions, a SQL subset, COPY bulk load, UDx and an
  internal DFS (the "HPE Vertica" substrate).
- ``repro.spark`` — an RDD/DataFrame compute engine with a batch task
  scheduler, fault injection and speculative execution, plus a small MLlib
  (the "Apache Spark" substrate).
- ``repro.connector`` — the paper's contribution: V2S, S2V and MD.
- ``repro.baselines`` — the paper's comparison points (JDBC Default Source,
  HDFS read/write, native parallel COPY).
- ``repro.avrolite`` / ``repro.pmml`` / ``repro.hdfs`` — the encodings and
  storage substrates the connector depends on.
- ``repro.workloads`` / ``repro.bench`` — dataset generators and the
  experiment harness regenerating every table and figure in the paper.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
