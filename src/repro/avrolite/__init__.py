"""An Avro-like binary serialization format, implemented from scratch.

The paper's S2V path encodes each task's rows in Apache Avro before
streaming them to Vertica's COPY interface (§3.2.2): a binary,
self-describing, delimiter-free format with optional compression.  This
package reproduces the parts of the Avro 1.x specification the connector
needs:

- :mod:`repro.avrolite.schema` — primitive/record/array/nullable schemas
  with JSON round-trips,
- :mod:`repro.avrolite.codec` — null and deflate block codecs,
- :mod:`repro.avrolite.io` — zigzag/varint binary encoding and decoding,
- :mod:`repro.avrolite.container` — blocked object container files with
  sync markers.
"""

from repro.avrolite.schema import Schema, SchemaError
from repro.avrolite.io import BinaryDecoder, BinaryEncoder, DatumReader, DatumWriter
from repro.avrolite.codec import CODECS, CodecError, decompress_block, compress_block
from repro.avrolite.container import ContainerReader, ContainerWriter, encode_rows, decode_rows

__all__ = [
    "BinaryDecoder",
    "BinaryEncoder",
    "CODECS",
    "CodecError",
    "ContainerReader",
    "ContainerWriter",
    "DatumReader",
    "DatumWriter",
    "Schema",
    "SchemaError",
    "compress_block",
    "decode_rows",
    "decompress_block",
    "encode_rows",
]
