"""Block codecs for the Avro-like container format.

Avro compresses each block independently; we support the two codecs the
spec requires of every implementation: ``null`` (identity) and ``deflate``
(raw zlib streams, no header/checksum, per the Avro spec).  Deflate is what
gives the paper's S2V its wire-size advantage over text encodings.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, Tuple


class CodecError(Exception):
    """Raised for unknown codecs or corrupt compressed blocks."""


def _deflate_compress(data: bytes) -> bytes:
    compressor = zlib.compressobj(6, zlib.DEFLATED, -zlib.MAX_WBITS)
    return compressor.compress(data) + compressor.flush()


def _deflate_decompress(data: bytes) -> bytes:
    try:
        return zlib.decompress(data, -zlib.MAX_WBITS)
    except zlib.error as exc:
        raise CodecError(f"corrupt deflate block: {exc}") from exc


CODECS: Dict[str, Tuple[Callable[[bytes], bytes], Callable[[bytes], bytes]]] = {
    "null": (lambda data: data, lambda data: data),
    "deflate": (_deflate_compress, _deflate_decompress),
}


def compress_block(codec: str, data: bytes) -> bytes:
    try:
        compress, __ = CODECS[codec]
    except KeyError:
        raise CodecError(f"unknown codec {codec!r}; known: {sorted(CODECS)}") from None
    return compress(data)


def decompress_block(codec: str, data: bytes) -> bytes:
    try:
        __, decompress = CODECS[codec]
    except KeyError:
        raise CodecError(f"unknown codec {codec!r}; known: {sorted(CODECS)}") from None
    return decompress(data)
