"""Avro-like object container files.

Follows the Avro 1.x container layout: a magic header, a metadata map
(carrying the writer schema JSON and codec name), a 16-byte sync marker,
then a sequence of blocks — each block being ``(row count, compressed
byte size, compressed data, sync marker)``.  The sync marker is derived
deterministically from the schema so files are reproducible byte-for-byte.

``encode_rows``/``decode_rows`` are the convenience entry points the S2V
connector and the COPY parser use.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable, Iterator, List, Optional, Sequence

from repro.avrolite.codec import compress_block, decompress_block
from repro.avrolite.io import BinaryDecoder, BinaryEncoder, DatumReader, DatumWriter
from repro.avrolite.schema import Schema, SchemaError

MAGIC = b"Obj\x01"
DEFAULT_BLOCK_ROWS = 4096


def _sync_marker(schema: Schema, codec: str) -> bytes:
    digest = hashlib.sha256(schema.dumps().encode() + codec.encode()).digest()
    return digest[:16]


class ContainerWriter:
    """Builds a container file in memory, block by block."""

    def __init__(
        self,
        schema: Schema,
        codec: str = "null",
        block_rows: int = DEFAULT_BLOCK_ROWS,
    ):
        if block_rows <= 0:
            raise SchemaError(f"block_rows must be positive: {block_rows}")
        self.schema = schema
        self.codec = codec
        self.block_rows = block_rows
        self._writer = DatumWriter(schema)
        self._sync = _sync_marker(schema, codec)
        self._header = self._build_header()
        self._blocks: List[bytes] = []
        self._pending = BinaryEncoder()
        self._pending_rows = 0
        self.rows_written = 0

    def _build_header(self) -> bytes:
        enc = BinaryEncoder()
        enc.write_raw(MAGIC)
        meta = {
            "avro.schema": self.schema.dumps().encode(),
            "avro.codec": self.codec.encode(),
        }
        enc.write_long(len(meta))
        for key, value in sorted(meta.items()):
            enc.write_string(key)
            enc.write_bytes(value)
        enc.write_long(0)  # end of metadata map
        enc.write_raw(self._sync)
        return enc.getvalue()

    def append(self, datum: Any) -> None:
        self._writer.write(datum, self._pending)
        self._pending_rows += 1
        self.rows_written += 1
        if self._pending_rows >= self.block_rows:
            self._flush_block()

    def extend(self, data: Iterable[Any]) -> None:
        for datum in data:
            self.append(datum)

    def _flush_block(self) -> None:
        if self._pending_rows == 0:
            return
        payload = compress_block(self.codec, self._pending.getvalue())
        enc = BinaryEncoder()
        enc.write_long(self._pending_rows)
        enc.write_long(len(payload))
        enc.write_raw(payload)
        enc.write_raw(self._sync)
        self._blocks.append(enc.getvalue())
        self._pending = BinaryEncoder()
        self._pending_rows = 0

    def getvalue(self) -> bytes:
        self._flush_block()
        return self._header + b"".join(self._blocks)


class ContainerReader:
    """Reads a container file produced by :class:`ContainerWriter`."""

    def __init__(self, data: bytes):
        dec = BinaryDecoder(data)
        if dec.read_raw(4) != MAGIC:
            raise SchemaError("not an Avro container file (bad magic)")
        meta = {}
        while True:
            count = dec.read_long()
            if count == 0:
                break
            if count < 0:
                count = -count
                dec.read_long()
            for __ in range(count):
                key = dec.read_string()
                meta[key] = dec.read_bytes()
        try:
            self.schema = Schema.loads(meta["avro.schema"].decode())
        except KeyError:
            raise SchemaError("container missing avro.schema metadata") from None
        self.codec = meta.get("avro.codec", b"null").decode()
        self._sync = dec.read_raw(16)
        self._dec = dec
        self._reader = DatumReader(self.schema)

    def __iter__(self) -> Iterator[Any]:
        dec = self._dec
        while not dec.exhausted:
            count = dec.read_long()
            size = dec.read_long()
            payload = decompress_block(self.codec, dec.read_raw(size))
            if dec.read_raw(16) != self._sync:
                raise SchemaError("sync marker mismatch (corrupt container)")
            block = BinaryDecoder(payload)
            for __ in range(count):
                yield self._reader.read(block)

    def read_all(self) -> List[Any]:
        return list(self)


def encode_rows(
    schema: Schema,
    rows: Sequence[Any],
    codec: str = "deflate",
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> bytes:
    """Encode ``rows`` into a complete container file."""
    writer = ContainerWriter(schema, codec=codec, block_rows=block_rows)
    writer.extend(rows)
    return writer.getvalue()


def decode_rows(data: bytes, expected_schema: Optional[Schema] = None) -> List[Any]:
    """Decode every row of a container file, optionally checking its schema."""
    reader = ContainerReader(data)
    if expected_schema is not None and reader.schema != expected_schema:
        raise SchemaError(
            f"container schema {reader.schema.dumps()} does not match "
            f"expected {expected_schema.dumps()}"
        )
    return reader.read_all()
