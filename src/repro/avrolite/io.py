"""Binary encoding and decoding, following the Avro wire format.

Integers use zigzag-then-varint encoding; floats/doubles are IEEE 754
little-endian; bytes and strings are length-prefixed; record fields are
concatenated in schema order; arrays are written as a single block with a
count followed by a zero terminator; nullable values are unions encoded as
a branch index (0 = null, 1 = value).
"""

from __future__ import annotations

import struct
from typing import Any, List

from repro.avrolite.schema import Schema, SchemaError

_FLOAT = struct.Struct("<f")
_DOUBLE = struct.Struct("<d")

#: Avro int/long are 64-bit two's complement on the wire
INT64_MIN = -(1 << 63)
INT64_MAX = (1 << 63) - 1


def zigzag_encode(value: int) -> int:
    # Python's arithmetic right shift makes this work for both signs.
    return (value << 1) ^ (value >> 63)


def zigzag_decode(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


class BinaryEncoder:
    """Appends Avro-encoded primitives to an internal buffer."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def getvalue(self) -> bytes:
        return bytes(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def write_raw(self, data: bytes) -> None:
        self._buffer.extend(data)

    def write_long(self, value: int) -> None:
        # zigzag then base-128 varint, little-endian groups of 7 bits
        encoded = (value << 1) ^ (value >> 63)
        encoded &= (1 << 64) - 1
        while True:
            byte = encoded & 0x7F
            encoded >>= 7
            if encoded:
                self._buffer.append(byte | 0x80)
            else:
                self._buffer.append(byte)
                break

    def write_boolean(self, value: bool) -> None:
        self._buffer.append(1 if value else 0)

    def write_float(self, value: float) -> None:
        self._buffer.extend(_FLOAT.pack(value))

    def write_double(self, value: float) -> None:
        self._buffer.extend(_DOUBLE.pack(value))

    def write_bytes(self, value: bytes) -> None:
        self.write_long(len(value))
        self._buffer.extend(value)

    def write_string(self, value: str) -> None:
        self.write_bytes(value.encode("utf-8"))


class BinaryDecoder:
    """Reads Avro-encoded primitives from a bytes buffer."""

    def __init__(self, data: bytes, pos: int = 0):
        self._data = data
        self._pos = pos

    @property
    def pos(self) -> int:
        return self._pos

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._data)

    def read_raw(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise SchemaError("unexpected end of Avro data")
        out = self._data[self._pos : self._pos + n]
        self._pos += n
        return out

    def read_long(self) -> int:
        shift = 0
        accum = 0
        while True:
            if self._pos >= len(self._data):
                raise SchemaError("unexpected end of varint")
            byte = self._data[self._pos]
            self._pos += 1
            accum |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 70:
                raise SchemaError("varint too long")
        return (accum >> 1) ^ -(accum & 1)

    def read_boolean(self) -> bool:
        return self.read_raw(1) != b"\x00"

    def read_float(self) -> float:
        return _FLOAT.unpack(self.read_raw(4))[0]

    def read_double(self) -> float:
        return _DOUBLE.unpack(self.read_raw(8))[0]

    def read_bytes(self) -> bytes:
        length = self.read_long()
        if length < 0:
            raise SchemaError(f"negative bytes length: {length}")
        return self.read_raw(length)

    def read_string(self) -> str:
        return self.read_bytes().decode("utf-8")


class DatumWriter:
    """Writes arbitrary data matching a :class:`Schema`."""

    def __init__(self, schema: Schema):
        self.schema = schema

    def write(self, datum: Any, encoder: BinaryEncoder) -> None:
        self._write(self.schema, datum, encoder)

    def _write(self, schema: Schema, datum: Any, enc: BinaryEncoder) -> None:
        if schema.nullable:
            if datum is None:
                enc.write_long(0)
                return
            enc.write_long(1)
        elif datum is None and schema.kind != "null":
            raise SchemaError(f"None is not valid for non-nullable {schema.kind}")
        kind = schema.kind
        if kind == "null":
            return
        if kind == "boolean":
            enc.write_boolean(bool(datum))
        elif kind in ("int", "long"):
            value = int(datum)
            # The wire format is 64-bit: the encoder masks to 64 bits, so an
            # out-of-range value would silently wrap and decode as a
            # *different* number.  Refuse it here instead — a loud write-time
            # error is symmetric, a corrupted round trip is not.
            if not INT64_MIN <= value <= INT64_MAX:
                raise SchemaError(
                    f"value {value} out of 64-bit range for kind {kind!r}"
                )
            enc.write_long(value)
        elif kind == "float":
            enc.write_float(float(datum))
        elif kind == "double":
            enc.write_double(float(datum))
        elif kind == "bytes":
            enc.write_bytes(bytes(datum))
        elif kind == "string":
            enc.write_string(str(datum))
        elif kind == "record":
            values = schema._record_values(datum)
            for (__, field_schema), value in zip(schema.fields, values):
                self._write(field_schema, value, enc)
        elif kind == "array":
            assert schema.items is not None
            items = list(datum)
            if items:
                enc.write_long(len(items))
                for item in items:
                    self._write(schema.items, item, enc)
            enc.write_long(0)
        else:  # pragma: no cover - schema kinds are validated at construction
            raise SchemaError(f"cannot encode kind {kind!r}")


class DatumReader:
    """Reads data written by :class:`DatumWriter` with the same schema."""

    def __init__(self, schema: Schema):
        self.schema = schema

    def read(self, decoder: BinaryDecoder) -> Any:
        return self._read(self.schema, decoder)

    def _read(self, schema: Schema, dec: BinaryDecoder) -> Any:
        if schema.nullable:
            branch = dec.read_long()
            if branch == 0:
                return None
            if branch != 1:
                raise SchemaError(f"invalid union branch: {branch}")
        kind = schema.kind
        if kind == "null":
            return None
        if kind == "boolean":
            return dec.read_boolean()
        if kind in ("int", "long"):
            return dec.read_long()
        if kind == "float":
            return dec.read_float()
        if kind == "double":
            return dec.read_double()
        if kind == "bytes":
            return dec.read_bytes()
        if kind == "string":
            return dec.read_string()
        if kind == "record":
            return tuple(
                self._read(field_schema, dec) for __, field_schema in schema.fields
            )
        if kind == "array":
            assert schema.items is not None
            out: List[Any] = []
            while True:
                count = dec.read_long()
                if count == 0:
                    break
                if count < 0:
                    # Avro allows negative counts followed by a byte size.
                    count = -count
                    dec.read_long()
                for __ in range(count):
                    out.append(self._read(schema.items, dec))
            return out
        raise SchemaError(f"cannot decode kind {kind!r}")  # pragma: no cover
