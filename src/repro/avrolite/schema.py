"""Avro-like schemas.

Supports the subset of Avro's type system the connector uses: the
primitives ``null``, ``boolean``, ``int``, ``long``, ``float``, ``double``,
``bytes`` and ``string``; named ``record`` types with ordered fields;
``array`` types; and two-branch ``["null", T]`` unions for nullable fields.
Schemas serialise to/from the JSON shapes Avro uses, so files carry their
own schema like real Avro container files do.
"""

from __future__ import annotations

import json
from typing import Any, List, Optional, Sequence, Tuple, Union


class SchemaError(Exception):
    """Raised for malformed schemas or schema/datum mismatches."""


PRIMITIVES = ("null", "boolean", "int", "long", "float", "double", "bytes", "string")


class Schema:
    """One Avro-like schema node."""

    def __init__(
        self,
        kind: str,
        name: str = "",
        fields: Optional[Sequence[Tuple[str, "Schema"]]] = None,
        items: Optional["Schema"] = None,
        nullable: bool = False,
    ):
        if kind not in PRIMITIVES and kind not in ("record", "array"):
            raise SchemaError(f"unknown schema kind: {kind!r}")
        self.kind = kind
        self.name = name
        self.fields: List[Tuple[str, Schema]] = list(fields or [])
        self.items = items
        #: a nullable schema encodes as the Avro union ["null", this]
        self.nullable = nullable
        if kind == "record":
            if not name:
                raise SchemaError("record schemas require a name")
            seen = set()
            for field_name, __ in self.fields:
                if field_name in seen:
                    raise SchemaError(f"duplicate record field {field_name!r}")
                seen.add(field_name)
        if kind == "array" and items is None:
            raise SchemaError("array schemas require an items schema")

    # -- constructors --------------------------------------------------------
    @classmethod
    def primitive(cls, kind: str, nullable: bool = False) -> "Schema":
        if kind not in PRIMITIVES:
            raise SchemaError(f"not a primitive type: {kind!r}")
        return cls(kind, nullable=nullable)

    @classmethod
    def record(cls, name: str, fields: Sequence[Tuple[str, "Schema"]]) -> "Schema":
        return cls("record", name=name, fields=fields)

    @classmethod
    def array(cls, items: "Schema") -> "Schema":
        return cls("array", items=items)

    # -- structural equality ---------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.to_json() == other.to_json()

    def __hash__(self) -> int:
        return hash(json.dumps(self.to_json(), sort_keys=True))

    def __repr__(self) -> str:
        return f"Schema({json.dumps(self.to_json())})"

    def field_names(self) -> List[str]:
        return [name for name, __ in self.fields]

    def field(self, name: str) -> "Schema":
        for field_name, schema in self.fields:
            if field_name == name:
                return schema
        raise SchemaError(f"record {self.name!r} has no field {name!r}")

    # -- JSON round-trip -------------------------------------------------------
    def to_json(self) -> Any:
        base: Any
        if self.kind in PRIMITIVES:
            base = self.kind
        elif self.kind == "record":
            base = {
                "type": "record",
                "name": self.name,
                "fields": [
                    {"name": n, "type": s.to_json()} for n, s in self.fields
                ],
            }
        else:  # array
            assert self.items is not None
            base = {"type": "array", "items": self.items.to_json()}
        if self.nullable:
            return ["null", base]
        return base

    def dumps(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True)

    @classmethod
    def from_json(cls, obj: Any) -> "Schema":
        if isinstance(obj, str):
            return cls.primitive(obj)
        if isinstance(obj, list):
            if len(obj) != 2 or obj[0] != "null":
                raise SchemaError(
                    f"only two-branch ['null', T] unions are supported: {obj!r}"
                )
            inner = cls.from_json(obj[1])
            inner.nullable = True
            return inner
        if isinstance(obj, dict):
            kind = obj.get("type")
            if kind == "record":
                fields = [
                    (f["name"], cls.from_json(f["type"]))
                    for f in obj.get("fields", [])
                ]
                return cls.record(obj["name"], fields)
            if kind == "array":
                return cls.array(cls.from_json(obj["items"]))
            if isinstance(kind, str) and kind in PRIMITIVES:
                return cls.primitive(kind)
        raise SchemaError(f"cannot parse schema from {obj!r}")

    @classmethod
    def loads(cls, text: str) -> "Schema":
        return cls.from_json(json.loads(text))

    # -- validation --------------------------------------------------------------
    def validate(self, datum: Any) -> None:
        """Raise :class:`SchemaError` if ``datum`` does not match this schema."""
        if datum is None:
            if self.nullable or self.kind == "null":
                return
            raise SchemaError(f"None is not valid for non-nullable {self.kind}")
        if self.kind == "null":
            raise SchemaError(f"expected null, got {datum!r}")
        if self.kind == "boolean":
            if not isinstance(datum, bool):
                raise SchemaError(f"expected boolean, got {datum!r}")
        elif self.kind in ("int", "long"):
            if isinstance(datum, bool) or not isinstance(datum, int):
                raise SchemaError(f"expected {self.kind}, got {datum!r}")
            bits = 32 if self.kind == "int" else 64
            bound = 1 << (bits - 1)
            if not -bound <= datum < bound:
                raise SchemaError(f"{datum} out of range for {self.kind}")
        elif self.kind in ("float", "double"):
            if isinstance(datum, bool) or not isinstance(datum, (int, float)):
                raise SchemaError(f"expected {self.kind}, got {datum!r}")
        elif self.kind == "bytes":
            if not isinstance(datum, (bytes, bytearray)):
                raise SchemaError(f"expected bytes, got {datum!r}")
        elif self.kind == "string":
            if not isinstance(datum, str):
                raise SchemaError(f"expected string, got {datum!r}")
        elif self.kind == "record":
            if not isinstance(datum, (tuple, list, dict)):
                raise SchemaError(f"expected record datum, got {datum!r}")
            values = self._record_values(datum)
            for (__, field_schema), value in zip(self.fields, values):
                field_schema.validate(value)
        elif self.kind == "array":
            if not isinstance(datum, (list, tuple)):
                raise SchemaError(f"expected array datum, got {datum!r}")
            assert self.items is not None
            for item in datum:
                self.items.validate(item)

    def _record_values(self, datum: Union[tuple, list, dict]) -> List[Any]:
        if isinstance(datum, dict):
            try:
                return [datum[name] for name in self.field_names()]
            except KeyError as exc:
                raise SchemaError(f"record datum missing field {exc}") from None
        if len(datum) != len(self.fields):
            raise SchemaError(
                f"record {self.name!r} expects {len(self.fields)} values, "
                f"got {len(datum)}"
            )
        return list(datum)
