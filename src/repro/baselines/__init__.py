"""The comparison points of the paper's §4.7.

- :mod:`repro.baselines.jdbc_source` — Spark's JDBC Default Source: load
  parallelised over min/max ranges of a user-supplied integer column, all
  queries routed through one host node, no snapshot consistency; save via
  batches of INSERT statements without transactional coordination.
- :mod:`repro.baselines.hdfs_source` — Spark's native HDFS path: one task
  per 64 MB block for reads, parquet-like columnar files, 3× replicated
  writes.
- :mod:`repro.baselines.native_copy` — Vertica's own parallel COPY from
  node-local file splits (the §4.7.3 upper bound for S2V).
"""

from repro.baselines.jdbc_source import JdbcDefaultSource, JdbcRelation
from repro.baselines.hdfs_source import HdfsSource, SimHdfsCluster
from repro.baselines.native_copy import parallel_copy

__all__ = [
    "HdfsSource",
    "JdbcDefaultSource",
    "JdbcRelation",
    "SimHdfsCluster",
    "parallel_copy",
]
