"""Spark's native HDFS read/write path (the §4.7.2 baseline).

``SimHdfsCluster`` pairs an :class:`~repro.hdfs.HdfsCluster` with
simulated datanode machines (their own 4-node cluster in Figure 12's
setup, *not* co-located with Spark).  The registered ``hdfs`` source
reads one task per block — "it will default to one partition per HDFS
block", which is why the paper's 140 GB file became 2240 partitions —
and writes parquet-like columnar files with 3× replication.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.avrolite.schema import Schema
from repro.hdfs import HdfsCluster
from repro.hdfs.columnar import read_columnar, write_columnar
from repro.sim import Environment
from repro.sim.cluster import GBE_BYTES_PER_SEC, SimCluster, SimNode
from repro.spark.datasource import (
    BaseRelation,
    CreatableRelationProvider,
    Filter,
    RelationProvider,
    apply_filters,
    register_source,
)
from repro.spark.errors import AnalysisError
from repro.spark.rdd import RDD
from repro.spark.row import StructField, StructType


class SimHdfsCluster:
    """An HDFS cluster plus the simulated machines serving its blocks."""

    def __init__(
        self,
        env: Environment,
        sim_cluster: SimCluster,
        num_nodes: int = 4,
        block_size: int = 64 * 1024 * 1024,
        replication: int = 3,
        bandwidth: float = GBE_BYTES_PER_SEC,
        node_prefix: str = "hdfs",
        decode_cpu_per_byte: float = 0.0,
        encode_cpu_per_byte: float = 0.0,
        disk_bandwidth: float = 0.0,
    ):
        self.env = env
        self.sim_cluster = sim_cluster
        names = [f"{node_prefix}{i}" for i in range(num_nodes)]
        self.fs = HdfsCluster(names, block_size=block_size, replication=replication)
        # Like the Vertica nodes, datanodes have two 1 GbE interfaces:
        # client traffic on "default", replication pipeline on "internal".
        self.sim_nodes: Dict[str, SimNode] = {
            name: sim_cluster.add_node(
                name, nics={"default": bandwidth, "internal": bandwidth}
            )
            for name in names
        }
        self.decode_cpu_per_byte = decode_cpu_per_byte
        self.encode_cpu_per_byte = encode_cpu_per_byte
        #: per-datanode data disk (0 = unmodelled); block reads and writes
        #: stream through it, like the paper's single data HDD per machine
        from repro.sim.network import Link

        self.disks: Dict[str, Any] = {}
        if disk_bandwidth > 0:
            self.disks = {
                name: Link(env, f"{name}.disk", disk_bandwidth) for name in names
            }

    def read_route(self, source: SimNode, dest: SimNode):
        route = []
        if self.disks:
            route.append(self.disks[source.name])
        route.append(source.nics["default"].tx)
        route.append(dest.nics["default"].rx)
        return route

    def write_route(self, source: SimNode, dest: SimNode):
        route = [source.nics["default"].tx, dest.nics["default"].rx]
        if self.disks:
            route.append(self.disks[dest.name])
        return route


class HdfsRelation(BaseRelation):
    """A directory of columnar part files, one scan task per block."""

    def __init__(self, spark, options: Dict[str, Any]):
        self.spark = spark
        try:
            self.hdfs: SimHdfsCluster = options["fs"]
            self.path = options["path"]
        except KeyError as exc:
            raise AnalysisError(f"hdfs source requires option {exc}") from None
        self.scale_factor = float(options.get("scale_factor", 1.0))
        self._parts = self.hdfs.fs.list(self.path + "/part-")
        if not self._parts:
            raise AnalysisError(f"no part files under {self.path!r}")
        schema_bytes = self.hdfs.fs.read(self.path + "/_schema")
        avro = Schema.loads(schema_bytes.decode())
        fields = []
        for name, field_schema in avro.fields:
            kind = field_schema.kind
            data_type = {"long": "long", "double": "double", "boolean": "boolean"}.get(
                kind, "string"
            )
            fields.append(StructField(name, data_type))
        self._schema = StructType(fields)

    @property
    def schema(self) -> StructType:
        return self._schema

    def build_scan(
        self,
        required_columns: Optional[Sequence[str]] = None,
        filters: Sequence[Filter] = (),
    ) -> RDD:
        blocks = []
        for part in self._parts:
            blocks.extend(self.hdfs.fs.block_locations(part))
        return HdfsScanRDD(self, blocks, required_columns, filters)


class HdfsScanRDD(RDD):
    """One partition per HDFS block (Spark's default for file sources)."""

    def __init__(self, relation: HdfsRelation, blocks, required_columns, filters):
        super().__init__(relation.spark, max(1, len(blocks)))
        self.relation = relation
        self.blocks = blocks
        self.required_columns = list(required_columns) if required_columns else None
        self.filters = tuple(filters)
        #: cache: part path -> decoded rows (a block maps back to its file)
        self._file_rows: Dict[str, List[Tuple[Any, ...]]] = {}

    def _rows_of(self, path: str) -> List[Tuple[Any, ...]]:
        if path not in self._file_rows:
            __, rows = read_columnar(self.relation.hdfs.fs.read(path))
            self._file_rows[path] = rows
        return self._file_rows[path]

    def compute(self, split: int, ctx) -> Generator:
        relation = self.relation
        hdfs = relation.hdfs
        if not self.blocks:
            return []
        block = self.blocks[split]
        source_node = hdfs.sim_nodes[block.replicas[0]]
        nbytes = block.size * relation.scale_factor
        yield hdfs.sim_cluster.network.transfer(
            hdfs.read_route(source_node, ctx.node),
            nbytes,
            name=f"hdfs-read:{block.block_id}",
        )
        if hdfs.decode_cpu_per_byte:
            yield from ctx.node.compute(nbytes * hdfs.decode_cpu_per_byte)
        # The block's share of its file's rows (blocks split files by bytes;
        # rows are apportioned evenly across the file's blocks).
        all_blocks = [b for b in self.blocks if b.path == block.path]
        index = next(i for i, b in enumerate(all_blocks) if b.block_id == block.block_id)
        rows = self._rows_of(block.path)
        count = len(all_blocks)
        lo = (len(rows) * index) // count
        hi = (len(rows) * (index + 1)) // count
        chunk = rows[lo:hi]
        if self.filters:
            chunk = apply_filters(list(self.filters), relation.schema, chunk)
        if self.required_columns:
            indices = [relation.schema.index_of(c) for c in self.required_columns]
            chunk = [tuple(r[i] for i in indices) for r in chunk]
        return chunk


class HdfsSource(RelationProvider, CreatableRelationProvider):
    """Registered as ``hdfs``: Spark's native file read/write."""

    def create_relation(self, spark, options: Dict[str, Any]) -> HdfsRelation:
        return HdfsRelation(spark, options)

    def save(self, spark, mode: str, options: Dict[str, Any], dataframe) -> None:
        hdfs: SimHdfsCluster = options["fs"]
        path = options["path"]
        scale = float(options.get("scale_factor", 1.0))
        if hdfs.fs.list(path + "/"):
            if mode == "errorifexists":
                raise AnalysisError(f"path {path!r} already exists")
            if mode == "ignore":
                return
            if mode == "overwrite":
                for existing in hdfs.fs.list(path + "/"):
                    hdfs.fs.delete(existing)
        schema = dataframe.schema
        avro = schema.to_avro("hdfs_row")
        rdd = dataframe.rdd()
        # File headers (magic + schema JSON) are paid once per real part,
        # not once per virtual row — scale only the data bytes.
        header_bytes = len(write_columnar(avro, []))

        def make_task(split: int):
            def thunk(ctx) -> Generator:
                body = rdd.compute(split, ctx)
                rows = (yield from body) if hasattr(body, "__next__") else body
                payload = write_columnar(avro, list(rows))
                data_bytes = max(0, len(payload) - header_bytes)
                nbytes = header_bytes + data_bytes * scale
                if hdfs.encode_cpu_per_byte:
                    yield from ctx.node.compute(nbytes * hdfs.encode_cpu_per_byte)
                # Write pipeline: executor -> first replica, then the
                # replica chain forwards block copies datanode-to-datanode.
                part_path = f"{path}/part-{split:05d}"
                blocks = hdfs.fs.write(part_path, payload, overwrite=True)
                first = hdfs.sim_nodes[blocks[0].replicas[0]]
                yield hdfs.sim_cluster.network.transfer(
                    hdfs.write_route(ctx.node, first),
                    nbytes,
                    name=f"hdfs-write:{part_path}",
                )
                # Replication to the remaining replicas proceeds in the
                # background over the datanodes' internal network (the
                # client is acked once the pipeline's first copy lands).
                replicas = blocks[0].replicas
                for src_name, dst_name in zip(replicas, replicas[1:]):
                    src = hdfs.sim_nodes[src_name]
                    dst = hdfs.sim_nodes[dst_name]
                    hdfs.sim_cluster.network.transfer(
                        [src.nics["internal"].tx, dst.nics["internal"].rx],
                        nbytes,
                        name=f"hdfs-replicate:{part_path}",
                    )
                return len(rows)

            return thunk

        thunks = [make_task(i) for i in range(rdd.num_partitions)]
        spark.run_thunks(thunks, name=f"hdfs-save:{path}")
        hdfs.fs.write(path + "/_schema", avro.dumps().encode(), overwrite=True)


register_source("hdfs", HdfsSource)
