"""Spark's JDBC Default Source (the §4.7.1 baseline), faithfully limited.

Compared with the connector, this source reproduces the baseline's
documented shortcomings:

- **Load** parallelism requires the source table to have an integer
  column whose name, ``lowerbound`` and ``upperbound`` the user supplies;
  without them it falls back to a single partition.  Range queries are
  *value* ranges, not hash ranges, so the rows a task asks for are
  scattered across all Vertica nodes — every query induces intra-Vertica
  shuffle traffic.  And every connection goes through the single ``host``
  node ("it does not distribute the queries evenly across all nodes").
  There is no epoch pinning: tasks running at different times can see
  different versions of the table.
- **Save** issues batches of INSERT statements per partition.  Each
  partition commits independently — a failed/restarted task can leave the
  target partially loaded or duplicated, which
  ``tests/test_baseline_jdbc.py`` demonstrates.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.spark.datasource import (
    BaseRelation,
    CreatableRelationProvider,
    Filter,
    RelationProvider,
    filters_to_sql,
    register_source,
)
from repro.spark.errors import AnalysisError
from repro.spark.rdd import RDD
from repro.spark.row import StructType
from repro.vertica.types import parse_type

#: rows per INSERT round trip.  Spark 1.x's JDBC writer issued one
#: executeUpdate per row (batching arrived in 2.x), which is what makes
#: the paper's 1M-row save take ">3 hours".
INSERT_BATCH_ROWS = 1


class JdbcRelation(BaseRelation):
    """A JDBC table scan partitioned over an integer column's value range."""

    def __init__(self, spark, options: Dict[str, Any]):
        self.spark = spark
        try:
            self.cluster = options["db"]
            self.table = options["table"].upper()
        except KeyError as exc:
            raise AnalysisError(f"jdbc source requires option {exc}") from None
        self.host = options.get("host") or self.cluster.node_names[0]
        self.partition_column = options.get("partitioncolumn", "").upper()
        self.lower_bound = options.get("lowerbound")
        self.upper_bound = options.get("upperbound")
        self.num_partitions = int(options.get("numpartitions", 1))
        self.scale_factor = float(options.get("scale_factor", 1.0))
        if self.partition_column and (
            self.lower_bound is None or self.upper_bound is None
        ):
            raise AnalysisError(
                "jdbc partitioning requires partitioncolumn, lowerbound "
                "and upperbound together"
            )
        self._schema = self._discover_schema()

    def _discover_schema(self) -> StructType:
        with self.cluster.db.connect(self.host) as session:
            rows = session.execute(
                "SELECT column_name, data_type FROM v_catalog.columns "
                f"WHERE table_name = '{self.table}' ORDER BY ordinal_position"
            ).rows
            return StructType.from_sql_types(
                [(name, parse_type(type_name)) for name, type_name in rows]
            )

    @property
    def schema(self) -> StructType:
        return self._schema

    def unhandled_filters(self, filters: Sequence[Filter]) -> List[Filter]:
        return []

    def _bounds(self) -> List[Tuple[Optional[int], Optional[int]]]:
        """Value-range bounds per partition (None = unbounded side)."""
        if not self.partition_column or self.num_partitions <= 1:
            return [(None, None)]
        lo = int(self.lower_bound)
        hi = int(self.upper_bound)
        span = max(1, hi - lo)
        step = span / self.num_partitions
        bounds: List[Tuple[Optional[int], Optional[int]]] = []
        for index in range(self.num_partitions):
            lower = None if index == 0 else lo + round(step * index)
            upper = (
                None
                if index == self.num_partitions - 1
                else lo + round(step * (index + 1))
            )
            bounds.append((lower, upper))
        return bounds

    def build_scan(
        self,
        required_columns: Optional[Sequence[str]] = None,
        filters: Sequence[Filter] = (),
    ) -> RDD:
        return JdbcScanRDD(self, self._bounds(), required_columns, filters)

    def task_sql(
        self,
        lower: Optional[int],
        upper: Optional[int],
        required_columns: Optional[Sequence[str]],
        filters: Sequence[Filter],
    ) -> str:
        columns = ", ".join(required_columns) if required_columns else "*"
        predicates = []
        if lower is not None:
            predicates.append(f"{self.partition_column} >= {lower}")
        if upper is not None:
            predicates.append(f"{self.partition_column} < {upper}")
        pushed = filters_to_sql(filters)
        if pushed:
            predicates.append(pushed)
        where = f" WHERE {' AND '.join(predicates)}" if predicates else ""
        return f"SELECT {columns} FROM {self.table}{where}"


class JdbcScanRDD(RDD):
    def __init__(self, relation, bounds, required_columns, filters):
        super().__init__(relation.spark, len(bounds))
        self.relation = relation
        self.bounds = bounds
        self.required_columns = (
            list(required_columns) if required_columns else None
        )
        self.filters = tuple(filters)

    def compute(self, split: int, ctx) -> Generator:
        relation = self.relation
        lower, upper = self.bounds[split]
        # Every connection goes through the single configured host node.
        with relation.cluster.connect(
            relation.host, client_node=ctx.node
        ) as connection:
            sql = relation.task_sql(lower, upper, self.required_columns, self.filters)
            result = yield from connection.execute(
                sql, weight=relation.scale_factor
            )
            return result.rows


class JdbcDefaultSource(RelationProvider, CreatableRelationProvider):
    """Registered as ``jdbc`` — load and save without exactly-once."""

    def create_relation(self, spark, options: Dict[str, Any]) -> JdbcRelation:
        return JdbcRelation(spark, options)

    def save(self, spark, mode: str, options: Dict[str, Any], dataframe) -> None:
        cluster = options["db"]
        table = options["table"].upper()
        host = options.get("host") or cluster.node_names[0]
        scale = float(options.get("scale_factor", 1.0))
        batch_rows = int(options.get("batchsize", INSERT_BATCH_ROWS))
        num_partitions = int(
            options.get("numpartitions", dataframe.num_partitions)
        )
        schema = dataframe.schema

        # Create the target up front (overwrite drops, append requires it),
        # with none of S2V's staging machinery.
        with cluster.db.connect(host) as session:
            exists = cluster.db.catalog.has_table(table)
            if mode == "overwrite" and exists:
                session.execute(f"DROP TABLE {table}")
                exists = False
            if mode == "errorifexists" and exists:
                raise AnalysisError(f"table {table!r} already exists")
            if not exists:
                session.execute(
                    schema.create_table_sql(table, segmented_by=[schema.fields[0].name])
                )

        rdd = dataframe.rdd()
        if rdd.num_partitions != num_partitions:
            rdd = rdd.coalesce(num_partitions) if num_partitions < rdd.num_partitions else rdd.repartition(num_partitions)

        def make_task(split: int):
            def thunk(ctx) -> Generator:
                body = rdd.compute(split, ctx)
                rows = (yield from body) if hasattr(body, "__next__") else body
                with cluster.connect(host, client_node=ctx.node) as connection:
                    total = 0
                    for start in range(0, len(rows), batch_rows):
                        chunk = rows[start : start + batch_rows]
                        values = ", ".join(
                            "(" + ", ".join(_literal(v) for v in row) + ")"
                            for row in chunk
                        )
                        ctx.probe("jdbc:before_insert_batch")
                        result = yield from connection.execute(
                            f"INSERT INTO {table} VALUES {values}", weight=scale
                        )
                        # Each batch is a separate round trip; at virtual
                        # scale every real row stands for `scale` statements'
                        # worth of latency.
                        model = cluster.cost_model
                        extra = model.query_latency * (scale - 1.0)
                        if extra > 0:
                            yield cluster.env.timeout(
                                extra * (len(chunk) / batch_rows)
                            )
                        total += result.rowcount
                    # Independent per-partition commit (autocommit already
                    # applied per statement) — no global coordination.
                    return total

            return thunk

        thunks = [make_task(i) for i in range(rdd.num_partitions)]
        spark.run_thunks(thunks, name=f"jdbc-save:{table}")


def _literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


register_source("jdbc", JdbcDefaultSource)
