"""Vertica's native parallel COPY from local file splits (§4.7.3).

The paper's procedure: split the CSV file into N parts, distribute them
evenly onto the Vertica nodes' local data disks, then issue a COPY on
every part in parallel and take the total wall time.  Loading is bounded
by local disk read bandwidth, parse CPU, and the intra-cluster
redistribution of rows to their segment owners — no client network is
involved, which is why COPY is the lower bound S2V is measured against.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence

from repro.sim.network import Link

#: one dedicated data HDD per machine in the paper's testbed
DEFAULT_DISK_BYTES_PER_SEC = 160e6


def parallel_copy(
    cluster: "SimVerticaCluster",  # noqa: F821
    table: str,
    csv_splits: Sequence[str],
    scale_factor: float = 1.0,
    disk_bandwidth: float = DEFAULT_DISK_BYTES_PER_SEC,
    reject_max: Optional[int] = None,
) -> float:
    """Load CSV splits with one parallel COPY per split; returns elapsed
    simulated seconds.

    Splits are dealt round-robin onto the nodes (mimicking the even file
    distribution of §4.7.3); each split is read from its node's local
    disk, parsed there, and rows are shipped to their segment owners over
    the internal network.
    """
    env = cluster.env
    model = cluster.cost_model
    nodes = cluster.node_names
    disks: Dict[str, Link] = {
        name: Link(env, f"{name}.disk", disk_bandwidth) for name in nodes
    }
    start = env.now

    def load_split(node_name: str, text: str) -> Generator:
        node = cluster.sim_nodes[node_name]
        nbytes = len(text.encode("utf-8")) * scale_factor
        session = cluster.db.connect(node_name)
        try:
            reject = f" REJECTMAX {reject_max}" if reject_max is not None else ""
            result = session.execute(
                f"COPY {table} FROM STDIN{reject} DIRECT", copy_data=text
            )
        finally:
            session.close()
        cost = result.cost
        # COPY streams: the local disk read, the parse CPU and the
        # redistribution of rows to their segment owners all pipeline.
        pending = [
            cluster.sim_cluster.network.transfer(
                [disks[node_name]], nbytes, name=f"disk-read:{node_name}"
            )
        ]
        parse_seconds = (
            scale_factor * cost.rows_written * model.load_cpu_per_row
            + nbytes * model.load_cpu_per_byte
        )
        if parse_seconds > 0:
            pending.append(env.process(node.compute(parse_seconds)))
        total_rows = cost.rows_written or 1
        for owner_name, rows in cost.node_rows_written.items():
            if owner_name == node_name:
                continue
            share = nbytes * (rows / total_rows)
            if share > 0:
                pending.append(
                    cluster.sim_cluster.transfer(
                        node,
                        cluster.sim_nodes[owner_name],
                        share,
                        nic=model.internal_nic,
                        name=f"segment:{node_name}->{owner_name}",
                    )
                )
        yield env.all_of(pending)

    def driver() -> Generator:
        loads = [
            env.process(load_split(nodes[index % len(nodes)], text))
            for index, text in enumerate(csv_splits)
        ]
        yield env.all_of(loads)

    env.run(env.process(driver(), name=f"parallel-copy:{table}"))
    return env.now - start


def split_csv(text: str, parts: int) -> List[str]:
    """Split CSV text into ``parts`` pieces on line boundaries."""
    lines = text.splitlines(keepends=True)
    count = len(lines)
    out = []
    for index in range(parts):
        lo = (count * index) // parts
        hi = (count * (index + 1)) // parts
        out.append("".join(lines[lo:hi]))
    return out
