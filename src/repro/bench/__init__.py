"""The benchmark harness regenerating every table and figure of §4."""

from repro.bench.fabric import Fabric
from repro.bench.report import ExperimentReport

__all__ = ["ExperimentReport", "Fabric"]
