"""The benchmark harness regenerating every table and figure of §4."""

from repro.bench.fabric import Fabric
from repro.bench.report import ExperimentReport

__all__ = [
    "AREAS",
    "BenchArea",
    "ExperimentReport",
    "Fabric",
    "GridRunner",
    "ParameterGrid",
    "ResultsStore",
    "compare_artifacts",
]

_GRID_EXPORTS = (
    "AREAS", "BenchArea", "GridRunner", "ParameterGrid",
    "ResultsStore", "compare_artifacts",
)


def __getattr__(name):
    # Lazy so that `python -m repro.bench.grid` does not import the grid
    # module twice (runpy would warn about the stale sys.modules entry).
    if name in _GRID_EXPORTS:
        from repro.bench import grid

        return getattr(grid, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
