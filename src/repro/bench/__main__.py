"""Command-line entry point for the experiment harness.

Run every experiment (or a selection) without pytest::

    python -m repro.bench                # everything
    python -m repro.bench fig06 tab04    # by prefix
    python -m repro.bench --list         # show what exists

Each experiment prints its paper-vs-measured table and shape checks, and
saves the report under ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import experiments


def _registry():
    out = {}
    for name in dir(experiments):
        if name.startswith("run_"):
            out[name[len("run_"):]] = getattr(experiments, name)
    return out


def main(argv=None) -> int:
    registry = _registry()
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment name prefixes (default: all)",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--results-dir",
        default="benchmarks/results",
        help="where to save report files",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, fn in sorted(registry.items()):
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:24s} {doc}")
        return 0

    if args.experiments:
        selected = {
            name: fn
            for name, fn in registry.items()
            if any(name.startswith(prefix) for prefix in args.experiments)
        }
        if not selected:
            print(f"no experiments match {args.experiments}; "
                  f"known: {sorted(registry)}", file=sys.stderr)
            return 2
    else:
        selected = registry

    failed = []
    for name in sorted(selected):
        start = time.time()
        report = selected[name]()
        report.show(args.results_dir)
        print(f"({time.time() - start:.1f}s wall)")
        if not report.all_checks_pass:
            failed.append((name, report.failed_checks()))
    if failed:
        print("\nSHAPE CHECK FAILURES:", file=sys.stderr)
        for name, checks in failed:
            print(f"  {name}: {checks}", file=sys.stderr)
        return 1
    print(f"\nall {len(selected)} experiments passed their shape checks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
