"""Command-line entry point for the experiment harness.

Run every experiment (or a selection) without pytest::

    python -m repro.bench                # everything
    python -m repro.bench fig06 tab04    # by prefix
    python -m repro.bench --list         # show what exists

Each experiment prints its paper-vs-measured table and shape checks, and
saves the report (plus its machine-readable ``.json`` sidecar) under
``benchmarks/results/``.  Every run also appends one record per
experiment — wall seconds, simulated seconds, config fingerprint, check
outcomes — to ``benchmarks/results/trajectory.jsonl``, so repeated runs
accumulate a perf history instead of overwriting it.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.bench import experiments
from repro.bench.report import append_jsonl, config_fingerprint

TRAJECTORY_FILE = "trajectory.jsonl"


def _registry():
    out = {}
    for name in dir(experiments):
        if name.startswith("run_"):
            out[name[len("run_"):]] = getattr(experiments, name)
    return out


def main(argv=None) -> int:
    registry = _registry()
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment name prefixes (default: all)",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--results-dir",
        default="benchmarks/results",
        help="where to save report files",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, fn in sorted(registry.items()):
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:24s} {doc}")
        return 0

    if args.experiments:
        selected = {
            name: fn
            for name, fn in registry.items()
            if any(name.startswith(prefix) for prefix in args.experiments)
        }
        if not selected:
            print(f"no experiments match {args.experiments}; "
                  f"known: {sorted(registry)}", file=sys.stderr)
            return 2
    else:
        selected = registry

    trajectory = os.path.join(args.results_dir, TRAJECTORY_FILE)
    failed = []
    for name in sorted(selected):
        start = time.time()
        report = selected[name]()
        wall = time.time() - start
        report.timing(wall_seconds=wall)
        report.show(args.results_dir)
        sim = "-" if report.sim_seconds is None else f"{report.sim_seconds:.1f}"
        print(f"({wall:.1f}s wall, {sim}s sim)")
        append_jsonl(trajectory, {
            "kind": "experiment",
            "exp_id": report.exp_id,
            "experiment": name,
            "wall_seconds": round(wall, 3),
            "sim_seconds": report.sim_seconds,
            "config_fingerprint": config_fingerprint(report.config),
            "checks_passed": report.all_checks_pass,
            "failed_checks": report.failed_checks(),
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        })
        if not report.all_checks_pass:
            failed.append((name, report.failed_checks()))
    if failed:
        print("\nSHAPE CHECK FAILURES:", file=sys.stderr)
        for name, checks in failed:
            print(f"  {name}: {checks}", file=sys.stderr)
        return 1
    print(f"\nall {len(selected)} experiments passed their shape checks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
