"""Chaos soak harness: many seeded fault schedules, one invariant bar.

Each *trial* builds a fresh fabric, derives a :class:`~repro.chaos.
ChaosSchedule` from one integer seed, runs a full connector workload
(S2V save in overwrite/append × speculation on/off, or a V2S scan)
under that schedule, and audits the database with the
:class:`~repro.chaos.InvariantChecker`.  A trial passes when every
invariant holds — whether the workload succeeded or failed cleanly.

Reproducibility is the contract: a failing trial is replayed from its
printed seed alone::

    PYTHONPATH=src python -m repro.bench.chaos_soak --replay-seed 41 \\
        --workload s2v --mode append --speculation

Run the full soak (the CI chaos job does this with ``--seeds 25``)::

    PYTHONPATH=src python -m repro.bench.chaos_soak --seeds 50
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional, Sequence

from repro import telemetry
from repro.bench.fabric import Fabric
from repro.chaos import (
    ALL_FAMILIES,
    ChaosSchedule,
    InvariantChecker,
    InvariantReport,
)
from repro.connector.costmodel import VerticaCostModel
from repro.connector.s2v import FINAL_STATUS_TABLE, S2VWriter
from repro.spark.row import StructField, StructType
from repro.vertica.errors import VerticaError

#: small-but-nonzero latencies: enough clock movement for rich fault
#: interleavings (crashes mid-COPY, storms overlapping phase 5) while a
#: 100-trial soak stays in seconds of wall time
SOAK_COST_MODEL = VerticaCostModel(
    connect_latency=0.02,
    query_latency=0.004,
    ddl_latency=0.01,
    query_plan_cpu=0.002,
    scan_cpu_per_row=2e-6,
    agg_cpu_per_row=2e-6,
    output_cpu_per_row=4e-6,
    load_cpu_per_row=6e-6,
    encode_cpu_per_row=3e-6,
    per_connection_rate_cap=3e4,
    copy_rate_cap=2e4,
)

SCHEMA = StructType([StructField("id", "long"), StructField("v", "double")])
ROWS = [(i, float((i * 7) % 31)) for i in range(240)]
PRIOR_ROWS = [(1000 + i, -1.0) for i in range(8)]
NUM_TASKS = 6
TARGET = "chaos_tgt"
SOURCE = "chaos_src"
#: virtual scale factor: stretches transfers so task phases span seconds
#: and timed faults land *inside* COPY streams and phase-5 commits
SCALE = 60.0
#: timed chaos events draw fire times from (0.05, HORIZON) — sized to the
#: fault-free run length so faults overlap setup, tasks and finalisation
HORIZON = 4.0


class TrialResult:
    """One trial's outcome: config, schedule, workload result, audit."""

    def __init__(self, workload: str, seed: int, mode: str, speculation: bool,
                 raised: Optional[BaseException], report: InvariantReport,
                 injections: int, cleanup_failures: int = 0):
        self.workload = workload
        self.seed = seed
        self.mode = mode
        self.speculation = speculation
        self.raised = raised
        self.report = report
        self.injections = injections
        #: teardown errors _safe_cleanup swallowed during this trial
        self.cleanup_failures = cleanup_failures

    @property
    def ok(self) -> bool:
        return self.report.ok

    @property
    def succeeded(self) -> bool:
        """The workload itself completed (as opposed to failing cleanly)."""
        return self.raised is None

    def replay_command(self) -> str:
        spec = " --speculation" if self.speculation else ""
        mode = (f" --mode {self.mode}"
                if self.workload in ("s2v", "staged-s2v") else "")
        return (
            f"python -m repro.bench.chaos_soak --replay-seed {self.seed} "
            f"--workload {self.workload}{mode}{spec}"
        )

    def describe(self) -> str:
        outcome = "succeeded" if self.succeeded else f"failed ({self.raised!r})"
        verdict = "OK" if self.ok else "INVARIANT VIOLATION"
        head = (
            f"[{verdict}] {self.workload} seed={self.seed} mode={self.mode} "
            f"speculation={self.speculation} injections={self.injections} "
            f"workload {outcome}"
        )
        if self.cleanup_failures:
            head += f" cleanup_failures={self.cleanup_failures}"
        if self.ok:
            return head
        return head + "\n" + self.report.describe() + \
            f"\nreplay: {self.replay_command()}"


def _fabric(speculation: bool, wlm: bool = False,
            session_pool_size: int = 0, with_hdfs: bool = False) -> Fabric:
    return Fabric(
        num_vertica=3,
        num_spark=4,
        cost_model=SOAK_COST_MODEL,
        speculation=speculation,
        telemetry=True,
        failover_connect=True,
        wlm=wlm,
        session_pool_size=session_pool_size,
        with_hdfs=with_hdfs,
        hdfs_nodes=3,
    )


def _cleanup_failures() -> int:
    """How many teardown errors S2V swallowed during the current fabric."""
    return int(telemetry.counter("s2v.cleanup_failures").value)


def _drain(fabric: Fabric, report: InvariantReport) -> None:
    """Run the clock to exhaustion (zombies, heals, restarts)."""
    try:
        fabric.env.run()
        report.passed("clean-drain")
    except BaseException as exc:  # noqa: BLE001 - audited, not swallowed
        report.violated("clean-drain", f"draining the run raised {exc!r}")


def run_s2v_trial(seed: int, mode: str = "overwrite",
                  speculation: bool = False, verbose: bool = False) -> TrialResult:
    """One seeded S2V save under chaos, audited."""
    fabric = _fabric(speculation)
    checker = InvariantChecker(fabric.vertica)
    prior: List = []
    if mode == "append":
        prior = list(PRIOR_ROWS)
        session = fabric.vertica.db.connect()
        session.execute(f"CREATE TABLE {TARGET} (id INTEGER, v FLOAT)")
        values = ", ".join(f"({i}, {v})" for i, v in prior)
        session.execute(f"INSERT INTO {TARGET} VALUES {values}")
        session.close()
    schedule = ChaosSchedule.random(
        seed,
        spark_nodes=[worker.name for worker in fabric.spark.workers],
        vertica_nodes=fabric.vertica.node_names,
        link_names=sorted(fabric.all_links()),
        tables=(FINAL_STATUS_TABLE, TARGET.upper()),
        horizon=HORIZON,
        events=4,
    )
    controller = fabric.attach_chaos(schedule)
    if verbose:
        print("\n".join(schedule.describe()))
    df = fabric.spark.create_dataframe(ROWS, SCHEMA, num_partitions=NUM_TASKS)
    writer = S2VWriter(
        fabric.spark, mode,
        {"db": fabric.vertica, "table": TARGET, "numpartitions": NUM_TASKS,
         "scale_factor": SCALE},
        df,
    )
    raised: Optional[BaseException] = None
    try:
        writer.save()
    except Exception as exc:  # noqa: BLE001 - the audit decides if this is fine
        raised = exc
    report = InvariantReport(f"s2v seed={seed}")
    _drain(fabric, report)
    report.merge(checker.check_s2v_save(
        writer.job_name, TARGET, ROWS,
        mode=mode, prior_rows=prior, raised=raised,
    ))
    report.merge(checker.check_cleanup_failures())
    if verbose:
        for record in controller.injections:
            print(record)
        print(report.describe())
    return TrialResult(
        "s2v", seed, mode, speculation, raised, report,
        len(controller.injections), cleanup_failures=_cleanup_failures(),
    )


def run_v2s_trial(seed: int, speculation: bool = False,
                  verbose: bool = False) -> TrialResult:
    """One seeded V2S scan under chaos, audited against its pinned epoch."""
    from repro.connector.v2s import VerticaRelation

    fabric = _fabric(speculation)
    session = fabric.vertica.db.connect()
    session.execute(
        f"CREATE TABLE {SOURCE} (id INTEGER, v FLOAT) SEGMENTED BY HASH(id)"
    )
    values = ", ".join(f"({i}, {v})" for i, v in ROWS)
    session.execute(f"INSERT INTO {SOURCE} VALUES {values}")
    session.close()
    checker = InvariantChecker(fabric.vertica)
    schedule = ChaosSchedule.random(
        seed,
        spark_nodes=[worker.name for worker in fabric.spark.workers],
        vertica_nodes=fabric.vertica.node_names,
        link_names=sorted(fabric.all_links()),
        horizon=HORIZON,
        events=4,
        families=("executor_crash", "link_degrade", "vertica_restart",
                  "connection_sever", "task_kill"),
        sever_keywords=("AT",),
    )
    controller = fabric.attach_chaos(schedule)
    if verbose:
        print("\n".join(schedule.describe()))
    relation = VerticaRelation(fabric.spark, {
        "db": fabric.vertica, "table": SOURCE, "numpartitions": NUM_TASKS,
        "scale_factor": SCALE,
    })
    rdd = relation.build_scan()
    raised: Optional[BaseException] = None
    rows: List = []
    try:
        for partition in fabric.spark.run_job(rdd, name=f"chaos_v2s_{seed}"):
            rows.extend(partition)
    except Exception as exc:  # noqa: BLE001 - the audit decides if this is fine
        raised = exc
    report = InvariantReport(f"v2s seed={seed}")
    _drain(fabric, report)
    if raised is None:
        report.merge(checker.check_v2s_scan(SOURCE, rdd.epoch, rows))
    else:
        report.merge(checker.check_no_leaks())
    if verbose:
        for record in controller.injections:
            print(record)
        print(report.describe())
    return TrialResult(
        "v2s", seed, "-", speculation, raised, report,
        len(controller.injections),
    )


def run_staged_s2v_trial(seed: int, mode: str = "overwrite",
                         speculation: bool = False,
                         verbose: bool = False) -> TrialResult:
    """One seeded *staging-transport* S2V save under chaos, audited.

    Tasks write attempt-named columnar files to the staging FS before
    claiming their status rows, the winner writes the ``_MANIFEST``, and
    the driver bulk-loads the manifested files — so the chaos probes at
    ``s2v:staged_before_file_write`` / ``after_file_write`` and
    ``staged_before_manifest`` / ``after_manifest`` exercise crashes
    mid-write and severs on either side of the commit record.  Beyond the
    usual exactly-once audit, the staging FS itself must be empty after
    the run: loser attempts, partial files and manifests are all swept.
    """
    fabric = _fabric(speculation, with_hdfs=True)
    checker = InvariantChecker(fabric.vertica)
    prior: List = []
    if mode == "append":
        prior = list(PRIOR_ROWS)
        session = fabric.vertica.db.connect()
        session.execute(f"CREATE TABLE {TARGET} (id INTEGER, v FLOAT)")
        values = ", ".join(f"({i}, {v})" for i, v in prior)
        session.execute(f"INSERT INTO {TARGET} VALUES {values}")
        session.close()
    schedule = ChaosSchedule.random(
        seed,
        spark_nodes=[worker.name for worker in fabric.spark.workers],
        vertica_nodes=fabric.vertica.node_names,
        link_names=sorted(fabric.all_links()),
        tables=(FINAL_STATUS_TABLE, TARGET.upper()),
        horizon=HORIZON,
        events=4,
    )
    controller = fabric.attach_chaos(schedule)
    if verbose:
        print("\n".join(schedule.describe()))
    df = fabric.spark.create_dataframe(ROWS, SCHEMA, num_partitions=NUM_TASKS)
    writer = S2VWriter(
        fabric.spark, mode,
        {"db": fabric.vertica, "table": TARGET, "numpartitions": NUM_TASKS,
         "scale_factor": SCALE, "transport": "staging",
         "staging_fs": fabric.hdfs, "staging_root": "/staging"},
        df,
    )
    raised: Optional[BaseException] = None
    try:
        writer.save()
    except Exception as exc:  # noqa: BLE001 - the audit decides if this is fine
        raised = exc
    report = InvariantReport(f"staged-s2v seed={seed}")
    _drain(fabric, report)
    report.merge(checker.check_s2v_save(
        writer.job_name, TARGET, ROWS,
        mode=mode, prior_rows=prior, raised=raised,
    ))
    report.merge(checker.check_no_orphaned_staging(fabric.hdfs))
    report.merge(checker.check_cleanup_failures())
    if verbose:
        for record in controller.injections:
            print(record)
        print(report.describe())
    return TrialResult(
        "staged-s2v", seed, mode, speculation, raised, report,
        len(controller.injections), cleanup_failures=_cleanup_failures(),
    )


def run_staged_v2s_trial(seed: int, speculation: bool = False,
                         verbose: bool = False) -> TrialResult:
    """One seeded staging-transport V2S scan under chaos, audited.

    The relation exports segment-local columnar files to the staging FS
    at a pinned epoch, then scan tasks read them block-locally.  Whatever
    the chaos does, a successful scan must equal the ``AT EPOCH``
    snapshot, and after ``cleanup_staging()`` the staging FS must hold
    nothing — including when the export itself died part-way.
    """
    from repro.connector.v2s import VerticaRelation

    fabric = _fabric(speculation, with_hdfs=True)
    session = fabric.vertica.db.connect()
    session.execute(
        f"CREATE TABLE {SOURCE} (id INTEGER, v FLOAT) SEGMENTED BY HASH(id)"
    )
    values = ", ".join(f"({i}, {v})" for i, v in ROWS)
    session.execute(f"INSERT INTO {SOURCE} VALUES {values}")
    session.close()
    checker = InvariantChecker(fabric.vertica)
    schedule = ChaosSchedule.random(
        seed,
        spark_nodes=[worker.name for worker in fabric.spark.workers],
        vertica_nodes=fabric.vertica.node_names,
        link_names=sorted(fabric.all_links()),
        horizon=HORIZON,
        events=4,
        families=("executor_crash", "link_degrade", "vertica_restart",
                  "connection_sever", "task_kill"),
        sever_keywords=("AT",),
    )
    controller = fabric.attach_chaos(schedule)
    if verbose:
        print("\n".join(schedule.describe()))
    relation = VerticaRelation(fabric.spark, {
        "db": fabric.vertica, "table": SOURCE, "numpartitions": NUM_TASKS,
        "scale_factor": SCALE, "transport": "staging",
        "staging_fs": fabric.hdfs, "staging_root": "/staging",
    })
    raised: Optional[BaseException] = None
    rows: List = []
    epoch: Optional[int] = None
    try:
        rdd = relation.build_scan()
        epoch = rdd.epoch
        for partition in fabric.spark.run_job(
                rdd, name=f"chaos_staged_v2s_{seed}"):
            rows.extend(partition)
    except Exception as exc:  # noqa: BLE001 - the audit decides if this is fine
        raised = exc
    report = InvariantReport(f"staged-v2s seed={seed}")
    _drain(fabric, report)
    relation.cleanup_staging()
    if raised is None and epoch is not None:
        report.merge(checker.check_v2s_scan(SOURCE, epoch, rows))
    else:
        report.merge(checker.check_no_leaks())
    report.merge(checker.check_no_orphaned_staging(fabric.hdfs))
    if verbose:
        for record in controller.injections:
            print(record)
        print(report.describe())
    return TrialResult(
        "staged-v2s", seed, "-", speculation, raised, report,
        len(controller.injections),
    )


#: the aggregates the agg-scan trial pushes down (id is NULL-free, so the
#: expected values are computable exactly from ROWS)
AGG_SPECS = (("*", "count"), ("id", "sum"), ("id", "min"), ("id", "max"),
             ("id", "avg"))


def _expected_aggregates() -> List[Tuple]:
    groups: dict = {}
    for i, v in ROWS:
        groups.setdefault(v, []).append(i)
    return [
        (v, len(ids), sum(ids), min(ids), max(ids), sum(ids) / len(ids))
        for v, ids in groups.items()
    ]


def run_agg_trial(seed: int, speculation: bool = False,
                  verbose: bool = False) -> TrialResult:
    """One seeded pushed-down aggregate scan under chaos, audited.

    The scan compiles ``group_by("v").agg(...)`` into per-hash-range
    partial GROUP BY queries at one pinned epoch; whatever the chaos
    does to tasks and connections, a successful job must produce exactly
    the aggregates of the static source rows.
    """
    fabric = _fabric(speculation)
    session = fabric.vertica.db.connect()
    session.execute(
        f"CREATE TABLE {SOURCE} (id INTEGER, v FLOAT) SEGMENTED BY HASH(id)"
    )
    values = ", ".join(f"({i}, {v})" for i, v in ROWS)
    session.execute(f"INSERT INTO {SOURCE} VALUES {values}")
    session.close()
    checker = InvariantChecker(fabric.vertica)
    schedule = ChaosSchedule.random(
        seed,
        spark_nodes=[worker.name for worker in fabric.spark.workers],
        vertica_nodes=fabric.vertica.node_names,
        link_names=sorted(fabric.all_links()),
        horizon=HORIZON,
        events=4,
        families=("executor_crash", "link_degrade", "vertica_restart",
                  "connection_sever", "task_kill"),
        sever_keywords=("AT",),
    )
    controller = fabric.attach_chaos(schedule)
    if verbose:
        print("\n".join(schedule.describe()))
    df = fabric.spark.read.format("vertica").options(
        db=fabric.vertica, table=SOURCE, numpartitions=NUM_TASKS,
        scale_factor=SCALE,
    ).load()
    raised: Optional[BaseException] = None
    rows: List = []
    try:
        rows = df.group_by("v").agg(*AGG_SPECS).collect()
    except Exception as exc:  # noqa: BLE001 - the audit decides if this is fine
        raised = exc
    report = InvariantReport(f"agg seed={seed}")
    _drain(fabric, report)
    if raised is None:
        expected = sorted(map(repr, _expected_aggregates()))
        actual = sorted(map(repr, rows))
        if actual == expected:
            report.passed("agg-exactly-once")
        else:
            report.violated(
                "agg-exactly-once",
                f"pushed aggregation produced {len(rows)} group rows that "
                f"do not match the {len(expected)} expected groups",
            )
    report.merge(checker.check_no_leaks())
    if verbose:
        for record in controller.injections:
            print(record)
        print(report.describe())
    return TrialResult(
        "agg", seed, "-", speculation, raised, report,
        len(controller.injections),
    )


#: the WLM trial's deliberately starved ingest pool
INGEST_POOL = "SOAK_INGEST"


def run_wlm_trial(seed: int, speculation: bool = False,
                  verbose: bool = False) -> TrialResult:
    """One seeded S2V save through starved WLM pools, under pool storms.

    The save is admitted through a two-slot ingest pool (cascading to an
    equally tight GENERAL) while seeded ``pool_storm`` noisy neighbours
    claim the same slots, alongside the regular fault families.  Whether
    the save lands or times out queueing, exactly-once must hold and no
    admission slot, memory grant or pooled session may leak.
    """
    from repro.wlm import GENERAL, ResourcePool

    fabric = _fabric(speculation, wlm=True, session_pool_size=2)
    db = fabric.vertica.db
    db.create_resource_pool(
        ResourcePool(GENERAL, memory_mb=2048, planned_concurrency=2,
                     max_concurrency=2, queue_timeout=0.8),
        or_replace=True,
    )
    db.create_resource_pool(
        ResourcePool(INGEST_POOL, memory_mb=2048, planned_concurrency=2,
                     max_concurrency=2, queue_timeout=0.6, cascade=GENERAL)
    )
    checker = InvariantChecker(fabric.vertica)
    schedule = ChaosSchedule.random(
        seed,
        spark_nodes=[worker.name for worker in fabric.spark.workers],
        vertica_nodes=fabric.vertica.node_names,
        link_names=sorted(fabric.all_links()),
        tables=(FINAL_STATUS_TABLE, TARGET.upper()),
        horizon=HORIZON,
        events=5,
        families=ALL_FAMILIES,
        pools=(INGEST_POOL, GENERAL),
    )
    controller = fabric.attach_chaos(schedule)
    if verbose:
        print("\n".join(schedule.describe()))
    df = fabric.spark.create_dataframe(ROWS, SCHEMA, num_partitions=NUM_TASKS)
    writer = S2VWriter(
        fabric.spark, "overwrite",
        {"db": fabric.vertica, "table": TARGET, "numpartitions": NUM_TASKS,
         "scale_factor": SCALE, "resource_pool": INGEST_POOL},
        df,
    )
    raised: Optional[BaseException] = None
    try:
        writer.save()
    except Exception as exc:  # noqa: BLE001 - the audit decides if this is fine
        raised = exc
    report = InvariantReport(f"wlm seed={seed}")
    _drain(fabric, report)
    if fabric.vertica.session_pool is not None:
        fabric.vertica.session_pool.close_all()
    report.merge(checker.check_s2v_save(
        writer.job_name, TARGET, ROWS, mode="overwrite", raised=raised,
    ))
    report.merge(checker.check_cleanup_failures())
    if verbose:
        for record in controller.injections:
            print(record)
        print(report.describe())
    return TrialResult(
        "wlm", seed, "overwrite", speculation, raised, report,
        len(controller.injections), cleanup_failures=_cleanup_failures(),
    )


#: the profile trial's query: a grouped aggregation whose exact answer is
#: computable from the static ROWS (id is NULL-free, v has 31 groups)
PROFILE_SELECT = (
    f"SELECT v, COUNT(*), SUM(id) FROM {SOURCE} GROUP BY v ORDER BY v"
)


def _expected_profile_groups() -> List[tuple]:
    groups: dict = {}
    for i, v in ROWS:
        groups.setdefault(v, []).append(i)
    return [
        (v, len(ids), sum(ids)) for v, ids in sorted(groups.items())
    ]


def run_profile_trial(seed: int, speculation: bool = False,
                      verbose: bool = False) -> TrialResult:
    """One seeded EXPLAIN + PROFILE of a grouped query under chaos.

    The statements run over a data-plane connection (client node set, so
    statement severs apply) while restarts and link faults fire.  When
    the profiled query completes it must return exactly the aggregates
    of the static source rows, its per-operator stats must reconcile
    with the statement's CostReport, and — success or clean failure —
    no session or lock may leak.
    """
    fabric = _fabric(speculation)
    session = fabric.vertica.db.connect()
    session.execute(
        f"CREATE TABLE {SOURCE} (id INTEGER, v FLOAT) SEGMENTED BY HASH(id)"
    )
    values = ", ".join(f"({i}, {v})" for i, v in ROWS)
    session.execute(f"INSERT INTO {SOURCE} VALUES {values}")
    session.close()
    checker = InvariantChecker(fabric.vertica)
    schedule = ChaosSchedule.random(
        seed,
        spark_nodes=[worker.name for worker in fabric.spark.workers],
        vertica_nodes=fabric.vertica.node_names,
        link_names=sorted(fabric.all_links()),
        horizon=HORIZON,
        events=4,
        families=("link_degrade", "vertica_restart", "connection_sever"),
        sever_keywords=("PROFILE", "EXPLAIN"),
    )
    controller = fabric.attach_chaos(schedule)
    if verbose:
        print("\n".join(schedule.describe()))
    outcome: dict = {}

    def workload():
        with fabric.vertica.connect(
            client_node=fabric.spark.workers[0]
        ) as connection:
            plan = yield from connection.execute(
                "EXPLAIN " + PROFILE_SELECT, weight=SCALE
            )
            outcome["plan"] = [row[0] for row in plan.rows]
            outcome["profile"] = yield from connection.execute(
                "PROFILE " + PROFILE_SELECT, weight=SCALE
            )

    raised: Optional[BaseException] = None
    try:
        fabric.vertica.run(workload(), name=f"chaos_profile_{seed}")
    except Exception as exc:  # noqa: BLE001 - the audit decides if this is fine
        raised = exc
    report = InvariantReport(f"profile seed={seed}")
    _drain(fabric, report)
    if raised is None:
        profiled = outcome["profile"]
        expected = _expected_profile_groups()
        actual = list(profiled.query_result.rows)
        if actual == expected:
            report.passed("profile-exact-answer")
        else:
            report.violated(
                "profile-exact-answer",
                f"profiled query produced {len(actual)} group rows that do "
                f"not match the {len(expected)} expected groups",
            )
        stats = {
            kind: (rows_in, rows_out)
            for kind, rows_in, rows_out in profiled.profile.operator_rows()
        }
        if (stats.get("scan", (0, 0))[1] == profiled.cost.rows_scanned
                == len(ROWS)
                and stats.get("aggregate", (0, 0))[1] == len(expected)):
            report.passed("profile-cost-reconciles")
        else:
            report.violated(
                "profile-cost-reconciles",
                f"operator stats {stats} disagree with cost "
                f"rows_scanned={profiled.cost.rows_scanned}",
            )
        plan = outcome.get("plan", [])
        if any("SCAN" in line for line in plan) and \
                any("GROUP BY" in line.upper() for line in plan):
            report.passed("explain-renders")
        else:
            report.violated(
                "explain-renders",
                f"EXPLAIN output is missing its scan/aggregate nodes: {plan}",
            )
    report.merge(checker.check_no_leaks())
    if verbose:
        for record in controller.injections:
            print(record)
        print(report.describe())
    return TrialResult(
        "profile", seed, "-", speculation, raised, report,
        len(controller.injections),
    )


#: the cache-coherence trial's serving table and mix
CACHE_SOURCE = "chaos_cache_src"
CACHE_GROUPS = 8
CACHE_READERS = 3
CACHE_READS = 12
CACHE_WRITES = 12


def run_cache_trial(seed: int, speculation: bool = False,
                    verbose: bool = False) -> TrialResult:
    """One seeded result-cache coherence trial under chaos, audited.

    Readers hammer point queries over a result-cached table while a
    writer advances the epoch with INSERTs and faults sever connections
    and restart nodes.  Every answer a reader accepted — hit or miss —
    is recorded with its pinned snapshot epoch, and the audit replays
    each one ``AT EPOCH`` with the cache forced off: a single divergent
    row is a stale read, the violation the (digest, epoch, catalog
    version) key exists to prevent.
    """
    fabric = _fabric(speculation)
    db = fabric.vertica.db
    session = db.connect()
    session.execute(
        f"CREATE TABLE {CACHE_SOURCE} (id INTEGER, grp INTEGER, v FLOAT) "
        f"SEGMENTED BY HASH(id)"
    )
    values = ", ".join(
        f"({i}, {i % CACHE_GROUPS}, {float((i * 7) % 31)})"
        for i in range(200)
    )
    session.execute(f"INSERT INTO {CACHE_SOURCE} VALUES {values}")
    session.close()
    db.result_cache_default = True
    checker = InvariantChecker(fabric.vertica)
    schedule = ChaosSchedule.random(
        seed,
        spark_nodes=[worker.name for worker in fabric.spark.workers],
        vertica_nodes=fabric.vertica.node_names,
        link_names=sorted(fabric.all_links()),
        horizon=HORIZON,
        events=4,
        families=("link_degrade", "vertica_restart", "connection_sever"),
        sever_keywords=("SELECT", "INSERT"),
    )
    controller = fabric.attach_chaos(schedule)
    if verbose:
        print("\n".join(schedule.describe()))
    observations: List[tuple] = []
    hits = [0]

    def reader(reader_id: int):
        rng = random.Random(seed * 7919 + reader_id)
        node_names = fabric.vertica.node_names
        for __ in range(CACHE_READS):
            yield fabric.env.timeout(0.05 + 0.25 * rng.random())
            grp = rng.randrange(CACHE_GROUPS)
            sql = (f"SELECT COUNT(*), SUM(v) FROM {CACHE_SOURCE} "
                   f"WHERE grp = {grp}")
            try:
                with fabric.vertica.connect(
                    node_names[reader_id % len(node_names)]
                ) as conn:
                    result = yield from conn.execute(sql, weight=SCALE)
            except VerticaError:
                continue  # severed / node down: the read never answered
            observations.append(
                (sql, result.snapshot_epoch, list(result.rows))
            )
            if getattr(result.cost, "cache_hit", False):
                hits[0] += 1

    def writer():
        rng = random.Random(seed * 104729 + 1)
        for index in range(CACHE_WRITES):
            yield fabric.env.timeout(0.1 + 0.2 * rng.random())
            try:
                with fabric.vertica.connect() as conn:
                    yield from conn.execute(
                        f"INSERT INTO {CACHE_SOURCE} VALUES "
                        f"({10_000 + index}, {rng.randrange(CACHE_GROUPS)}, "
                        f"{float(index)})"
                    )
            except VerticaError:
                continue  # a failed write is fine; staleness is not

    for reader_id in range(CACHE_READERS):
        fabric.env.process(reader(reader_id), name=f"cache_reader{reader_id}")
    fabric.env.process(writer(), name="cache_writer")
    report = InvariantReport(f"cache seed={seed}")
    _drain(fabric, report)
    if observations:
        report.passed("progress")
    else:
        report.violated("progress", "no reader recorded a single answer")
    report.merge(checker.check_no_stale_reads(observations))
    report.merge(checker.check_no_leaks())
    if verbose:
        for record in controller.injections:
            print(record)
        print(f"observations={len(observations)} cache_hits={hits[0]}")
        print(report.describe())
    return TrialResult(
        "cache", seed, "-", speculation, None, report,
        len(controller.injections),
    )


#: the adaptive-join trial's star schema: fact stats are deliberately
#: stale (ANALYZEd at ADAPTIVE_ANALYZED rows, then grown 15x), so the
#: reordered plan mis-builds and must replan mid-query
ADAPTIVE_FACT = "chaos_adaptive_fact"
ADAPTIVE_DIM_A = "chaos_adaptive_da"
ADAPTIVE_DIM_B = "chaos_adaptive_db"
ADAPTIVE_FACT_ROWS = 360
ADAPTIVE_ANALYZED = 24
#: sized above the stale intermediate estimate (~15 rows) but below its
#: observed size (~225 rows): the planner builds the second join on the
#: intermediate, which balloons, forcing a swap-build replan
ADAPTIVE_A_KEYS = 60
ADAPTIVE_B_KEYS = 8
ADAPTIVE_B_CUTOFF = 10  # b_val < 10 keeps b_id 0..4 (5 of 8 keys)

ADAPTIVE_SELECT = (
    f"SELECT a_val, COUNT(*), SUM(fv) FROM {ADAPTIVE_FACT} "
    f"JOIN {ADAPTIVE_DIM_A} ON fk1 = a_id "
    f"JOIN {ADAPTIVE_DIM_B} ON fk2 = b_id "
    f"WHERE b_val < {ADAPTIVE_B_CUTOFF} GROUP BY a_val ORDER BY a_val"
)


def _expected_adaptive_groups() -> List[tuple]:
    groups: dict = {}
    for i in range(ADAPTIVE_FACT_ROWS):
        if (i % ADAPTIVE_B_KEYS) * 2 >= ADAPTIVE_B_CUTOFF:
            continue
        groups.setdefault((i % ADAPTIVE_A_KEYS) * 2, []).append(float(i))
    return [(a_val, len(vals), sum(vals))
            for a_val, vals in sorted(groups.items())]


def run_adaptive_join_trial(seed: int, speculation: bool = False,
                            verbose: bool = False) -> TrialResult:
    """One seeded adaptive multi-way join under chaos, audited exactly.

    A 3-way star join runs with ``JOIN_REORDER`` and
    ``ADAPTIVE_EXECUTION`` on while restarts and link faults fire.  The
    fact table's statistics are deliberately stale (ANALYZEd at 1/15th
    of its final size), so the reordered plan builds on a side that
    balloons at runtime and the join operators must replan mid-query.
    If the query completes it must return exactly the aggregates of the
    static rows — reordering, build-side swaps and the feedback loop may
    never change an answer — EXPLAIN must show the reordered join order,
    PROFILE must record at least one replan, and no session or lock may
    leak either way.
    """
    fabric = _fabric(speculation)
    session = fabric.vertica.db.connect()
    session.execute(
        f"CREATE TABLE {ADAPTIVE_FACT} (fk1 INTEGER, fk2 INTEGER, fv FLOAT) "
        f"SEGMENTED BY HASH(fk1)"
    )
    session.execute(
        f"CREATE TABLE {ADAPTIVE_DIM_A} (a_id INTEGER, a_val INTEGER) "
        f"SEGMENTED BY HASH(a_id)"
    )
    session.execute(
        f"CREATE TABLE {ADAPTIVE_DIM_B} (b_id INTEGER, b_val INTEGER) "
        f"UNSEGMENTED ALL NODES"
    )
    session.execute(f"INSERT INTO {ADAPTIVE_DIM_A} VALUES " + ", ".join(
        f"({i}, {i * 2})" for i in range(ADAPTIVE_A_KEYS)
    ))
    session.execute(f"INSERT INTO {ADAPTIVE_DIM_B} VALUES " + ", ".join(
        f"({i}, {i * 2})" for i in range(ADAPTIVE_B_KEYS)
    ))

    def fact_values(start, stop):
        return ", ".join(
            f"({i % ADAPTIVE_A_KEYS}, {i % ADAPTIVE_B_KEYS}, {float(i)})"
            for i in range(start, stop)
        )

    session.execute(f"INSERT INTO {ADAPTIVE_FACT} VALUES "
                    + fact_values(0, ADAPTIVE_ANALYZED))
    for table in (ADAPTIVE_FACT, ADAPTIVE_DIM_A, ADAPTIVE_DIM_B):
        session.execute(f"ANALYZE {table}")
    session.execute(f"INSERT INTO {ADAPTIVE_FACT} VALUES "
                    + fact_values(ADAPTIVE_ANALYZED, ADAPTIVE_FACT_ROWS))
    session.execute("SET JOIN_REORDER on")
    session.execute("SET ADAPTIVE_EXECUTION on")
    session.close()
    checker = InvariantChecker(fabric.vertica)
    schedule = ChaosSchedule.random(
        seed,
        spark_nodes=[worker.name for worker in fabric.spark.workers],
        vertica_nodes=fabric.vertica.node_names,
        link_names=sorted(fabric.all_links()),
        horizon=HORIZON,
        events=4,
        families=("link_degrade", "vertica_restart", "connection_sever"),
        sever_keywords=("PROFILE", "SELECT"),
    )
    controller = fabric.attach_chaos(schedule)
    if verbose:
        print("\n".join(schedule.describe()))
    outcome: dict = {}

    def workload():
        with fabric.vertica.connect(
            client_node=fabric.spark.workers[0]
        ) as connection:
            plan = yield from connection.execute(
                "EXPLAIN " + ADAPTIVE_SELECT, weight=SCALE
            )
            outcome["plan"] = [row[0] for row in plan.rows]
            outcome["profile"] = yield from connection.execute(
                "PROFILE " + ADAPTIVE_SELECT, weight=SCALE
            )

    raised: Optional[BaseException] = None
    try:
        fabric.vertica.run(workload(), name=f"chaos_adaptive_{seed}")
    except Exception as exc:  # noqa: BLE001 - the audit decides if this is fine
        raised = exc
    report = InvariantReport(f"adaptive seed={seed}")
    _drain(fabric, report)
    if raised is None:
        profiled = outcome["profile"]
        expected = _expected_adaptive_groups()
        actual = list(profiled.query_result.rows)
        if actual == expected:
            report.passed("adaptive-exact-answer")
        else:
            report.violated(
                "adaptive-exact-answer",
                f"adaptive join produced {len(actual)} group rows that do "
                f"not match the {len(expected)} expected groups",
            )
        if any("JOIN ORDER:" in line for line in outcome.get("plan", [])):
            report.passed("explain-join-order")
        else:
            report.violated(
                "explain-join-order",
                "EXPLAIN did not render the reordered join order",
            )
        if profiled.profile.replans:
            report.passed("replan-recorded")
        else:
            report.violated(
                "replan-recorded",
                "stale fact statistics produced no recorded replan",
            )
    report.merge(checker.check_no_leaks())
    if verbose:
        for record in controller.injections:
            print(record)
        print(report.describe())
    return TrialResult(
        "adaptive", seed, "-", speculation, raised, report,
        len(controller.injections),
    )


#: the S2V configuration rotation: both commit paths × speculation
S2V_CONFIGS = (
    ("overwrite", False),
    ("overwrite", True),
    ("append", False),
    ("append", True),
)


def run_soak(num_seeds: int = 25, base_seed: int = 0,
             verbose: bool = False) -> List[TrialResult]:
    """Run ``num_seeds`` S2V trials (rotating configs) plus V2S scan,
    pushed-aggregate, WLM-admission, EXPLAIN/PROFILE, staging-transport
    (S2V and V2S over the distributed FS), result-cache-coherence and
    adaptive-join trials."""
    trials: List[TrialResult] = []
    for index in range(num_seeds):
        seed = base_seed + index
        mode, speculation = S2V_CONFIGS[index % len(S2V_CONFIGS)]
        trials.append(run_s2v_trial(seed, mode, speculation))
        if verbose:
            print(trials[-1].describe())
        trials.append(run_v2s_trial(seed + 7919, speculation=speculation))
        if verbose:
            print(trials[-1].describe())
        trials.append(run_agg_trial(seed + 104729, speculation=speculation))
        if verbose:
            print(trials[-1].describe())
        trials.append(run_wlm_trial(seed + 1299709, speculation=speculation))
        if verbose:
            print(trials[-1].describe())
        trials.append(
            run_profile_trial(seed + 15485863, speculation=speculation)
        )
        if verbose:
            print(trials[-1].describe())
        trials.append(
            run_staged_s2v_trial(seed + 32452843, mode, speculation)
        )
        if verbose:
            print(trials[-1].describe())
        trials.append(
            run_staged_v2s_trial(seed + 49979687, speculation=speculation)
        )
        if verbose:
            print(trials[-1].describe())
        trials.append(
            run_cache_trial(seed + 86028121, speculation=speculation)
        )
        if verbose:
            print(trials[-1].describe())
        trials.append(
            run_adaptive_join_trial(seed + 179424673,
                                    speculation=speculation)
        )
        if verbose:
            print(trials[-1].describe())
    return trials


def summarize(trials: Sequence[TrialResult]) -> str:
    failures = [t for t in trials if not t.ok]
    succeeded = sum(1 for t in trials if t.succeeded)
    injections = sum(t.injections for t in trials)
    cleanup_failures = sum(t.cleanup_failures for t in trials)
    lines = [
        f"chaos soak: {len(trials)} trials, {len(failures)} invariant "
        f"violations, {succeeded} workloads succeeded, "
        f"{len(trials) - succeeded} failed cleanly, "
        f"{injections} faults injected, "
        f"{cleanup_failures} cleanup errors swallowed",
    ]
    for trial in sorted(
            (t for t in trials if t.cleanup_failures),
            key=lambda t: -t.cleanup_failures):
        lines.append(
            f"  cleanup_failures={trial.cleanup_failures}: "
            f"{trial.workload} seed={trial.seed} "
            f"(replay: {trial.replay_command()})"
        )
    for trial in failures:
        lines.append(trial.describe())
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=25,
                        help="number of soak seeds (9 trials per seed)")
    parser.add_argument("--base-seed", type=int, default=0)
    parser.add_argument("--replay-seed", type=int, default=None,
                        help="replay one trial with full fault/audit output")
    parser.add_argument("--workload",
                        choices=("s2v", "v2s", "agg", "wlm", "profile",
                                 "staged-s2v", "staged-v2s", "cache",
                                 "adaptive"),
                        default="s2v")
    parser.add_argument("--mode", choices=("overwrite", "append"),
                        default="overwrite")
    parser.add_argument("--speculation", action="store_true")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.replay_seed is not None:
        if args.workload == "s2v":
            trial = run_s2v_trial(args.replay_seed, args.mode,
                                  args.speculation, verbose=True)
        elif args.workload == "agg":
            trial = run_agg_trial(args.replay_seed, args.speculation,
                                  verbose=True)
        elif args.workload == "wlm":
            trial = run_wlm_trial(args.replay_seed, args.speculation,
                                  verbose=True)
        elif args.workload == "profile":
            trial = run_profile_trial(args.replay_seed, args.speculation,
                                      verbose=True)
        elif args.workload == "staged-s2v":
            trial = run_staged_s2v_trial(args.replay_seed, args.mode,
                                         args.speculation, verbose=True)
        elif args.workload == "staged-v2s":
            trial = run_staged_v2s_trial(args.replay_seed, args.speculation,
                                         verbose=True)
        elif args.workload == "cache":
            trial = run_cache_trial(args.replay_seed, args.speculation,
                                    verbose=True)
        elif args.workload == "adaptive":
            trial = run_adaptive_join_trial(args.replay_seed,
                                            args.speculation, verbose=True)
        else:
            trial = run_v2s_trial(args.replay_seed, args.speculation,
                                  verbose=True)
        print(trial.describe())
        return 0 if trial.ok else 1

    trials = run_soak(args.seeds, args.base_seed, verbose=args.verbose)
    print(summarize(trials))
    failures = [t for t in trials if not t.ok]
    if failures:
        return 1
    if not any(t.injections for t in trials):
        print("soak was vacuous: no faults were injected", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
