"""Multi-tenant concurrent serving benchmark for the WLM subsystem.

N tenants share one fabric and concurrently run a mixed workload — V2S
scans, S2V saves and in-database model scoring (MD) — while every
statement passes through :mod:`repro.wlm` admission control and a
client-side session pool.  The driver reports per-tenant p50/p95
latency, throughput, queue time and rejections, then audits the fabric
with the :class:`~repro.chaos.InvariantChecker`: whatever the admission
queueing did, no slot, memory grant or session may leak.

The headline experiment is isolation: the same tenant mix runs twice,
once with everyone crammed into a deliberately congested GENERAL pool
and once with tenant 0 moved to a dedicated high-priority PREMIUM pool.
Tenant 0's p95 must drop — that is workload management doing its job::

    PYTHONPATH=src python -m repro.bench.concurrent_serve
    PYTHONPATH=src python -m repro.bench.concurrent_serve \\
        --tenants 6 --ops 8 --mode pools

The second experiment is the caching tiers (:mod:`repro.cache`): a
Zipf-skewed, read-mostly point-query workload (``--mode zipf``) runs the
same client mix twice, result cache off then on, and reports per-tier
hit rates next to read p50/p95.  Writes advance the epoch and therefore
invalidate every cached answer, so the hit rate is earned against real
churn, not a static table::

    PYTHONPATH=src python -m repro.bench.concurrent_serve --mode zipf \\
        --skew 1.2 --read-fraction 0.9
"""

from __future__ import annotations

import argparse
import bisect
import itertools
import random
import sys
from typing import Dict, Generator, List, Optional, Sequence

from repro.bench.fabric import Fabric
from repro.chaos import InvariantChecker, InvariantReport
from repro.connector.costmodel import VerticaCostModel
from repro.connector.md import deploy_pmml_model, install_pmml_udx
from repro.connector.s2v import S2VWriter
from repro.connector.v2s import VerticaRelation
from repro.spark.errors import SparkError
from repro.spark.mllib import LabeledPoint, train_linear_regression
from repro.spark.row import StructField, StructType
from repro.vertica.errors import AdmissionTimeout, VerticaError
from repro.wlm import GENERAL, ResourcePool

#: light-but-nonzero latencies: ops overlap enough to contend for
#: admission slots while a full comparison run stays in seconds
SERVE_COST_MODEL = VerticaCostModel(
    connect_latency=0.02,
    query_latency=0.004,
    ddl_latency=0.01,
    query_plan_cpu=0.002,
    scan_cpu_per_row=2e-6,
    agg_cpu_per_row=2e-6,
    output_cpu_per_row=4e-6,
    load_cpu_per_row=6e-6,
    encode_cpu_per_row=3e-6,
    per_connection_rate_cap=3e4,
    copy_rate_cap=2e4,
)

SCHEMA = StructType([StructField("id", "long"), StructField("v", "double")])
ROWS = [(i, float((i * 13) % 17)) for i in range(120)]
SOURCE = "serve_src"
MODEL_NAME = "serve_model"
PREMIUM = "PREMIUM"
#: per-op task parallelism (each task is one admitted statement stream)
NUM_TASKS = 3
#: virtual scale factor: stretches each op so tenants genuinely overlap
SCALE = 25.0
#: deterministic per-tenant operation rotation
OP_MIX = ("v2s", "s2v", "md")
#: the congested shared pool: every concurrent statement fights for
#: these four slots, so queueing is the norm, not the exception
GENERAL_CONFIG = dict(
    memory_mb=4096, planned_concurrency=4, max_concurrency=4,
    queue_timeout=60.0,
)


def _percentile(values: Sequence[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


class TenantStats:
    """One tenant's outcomes: latencies, queue time, rejections, failures."""

    def __init__(self, tenant: int, pool: str):
        self.tenant = tenant
        self.pool = pool
        self.latencies: List[float] = []
        self.queue_wait = 0.0
        self.rejections = 0
        self.failures = 0

    @property
    def completed(self) -> int:
        return len(self.latencies)

    @property
    def p50(self) -> float:
        return _percentile(self.latencies, 0.50)

    @property
    def p95(self) -> float:
        return _percentile(self.latencies, 0.95)

    def describe(self, elapsed: float) -> str:
        rate = self.completed / elapsed if elapsed > 0 else 0.0
        return (
            f"tenant {self.tenant} [{self.pool}]: {self.completed} ops, "
            f"p50={self.p50:.3f}s p95={self.p95:.3f}s "
            f"{rate:.2f} ops/s queue_wait={self.queue_wait:.3f}s "
            f"rejected={self.rejections} failed={self.failures}"
        )


class ServeReport:
    """One serving run: per-tenant stats, pool telemetry, audit."""

    def __init__(self, mode: str, tenants: List[TenantStats], elapsed: float,
                 report: InvariantReport, snapshot):
        self.mode = mode
        self.tenants = tenants
        self.elapsed = elapsed
        self.report = report
        self.snapshot = snapshot

    @property
    def ok(self) -> bool:
        return self.report.ok

    def tenant(self, index: int) -> TenantStats:
        return self.tenants[index]

    def describe(self) -> str:
        counters = self.snapshot.counters
        gauges = self.snapshot.gauges
        lines = [
            f"concurrent serve [{self.mode}]: {len(self.tenants)} tenants, "
            f"{self.elapsed:.3f}s simulated",
        ]
        for stats in self.tenants:
            lines.append("  " + stats.describe(self.elapsed))
        waits = self.snapshot.histograms.get("wlm.queue_wait_seconds")
        lines.append(
            "  wlm: "
            f"admissions={counters.get('wlm.admissions', 0):.0f} "
            f"rejections={counters.get('wlm.rejections', 0):.0f} "
            f"cascades={counters.get('wlm.cascades', 0):.0f} "
            f"sessions_reused={counters.get('wlm.sessions.reused', 0):.0f}"
        )
        if waits and waits["count"]:
            lines.append(
                f"  queue wait: n={waits['count']:.0f} "
                f"mean={waits['mean']:.4f}s max={waits['max']:.4f}s"
            )
        for name in sorted(gauges):
            if name.endswith(".queue_depth") and name.startswith("wlm.pool."):
                final, peak = gauges[name]
                lines.append(f"  {name}: peak={peak:.0f}")
            elif name.startswith("db.sessions.active."):
                final, peak = gauges[name]
                lines.append(f"  {name}: peak={peak:.0f} final={final:.0f}")
        lines.append("  " + self.report.describe().replace("\n", "\n  "))
        return "\n".join(lines)


def _rdd_thunks(rdd) -> List:
    def make(split: int):
        def thunk(ctx) -> Generator:
            rows = yield from rdd.compute(split, ctx)
            return rows

        return thunk

    return [make(i) for i in range(rdd.num_partitions)]


def _tenant(fabric: Fabric, stats: TenantStats, ops: int) -> Generator:
    """One tenant's serving loop: a deterministic rotation of op kinds."""
    cluster = fabric.vertica
    spark = fabric.spark
    relation = VerticaRelation(spark, {
        "db": cluster, "table": SOURCE, "numpartitions": NUM_TASKS,
        "scale_factor": SCALE, "resource_pool": stats.pool,
    })
    dataframe = fabric.spark.create_dataframe(
        ROWS, SCHEMA, num_partitions=NUM_TASKS
    )
    for index in range(ops):
        op = OP_MIX[(stats.tenant + index) % len(OP_MIX)]
        start = fabric.env.now
        try:
            if op == "v2s":
                rdd = relation.build_scan()
                job = spark.scheduler.submit(
                    _rdd_thunks(rdd),
                    name=f"serve_t{stats.tenant}_op{index}_v2s",
                )
                yield job.done
            elif op == "s2v":
                writer = S2VWriter(
                    spark, "overwrite",
                    {"db": cluster, "table": f"serve_out_t{stats.tenant}",
                     "numpartitions": NUM_TASKS, "scale_factor": SCALE,
                     "resource_pool": stats.pool},
                    dataframe,
                )
                yield from writer.save_process()
            else:
                node = cluster.node_names[
                    (stats.tenant + index) % len(cluster.node_names)
                ]
                with cluster.connect(node, resource_pool=stats.pool) as conn:
                    result = yield from conn.execute(
                        f"SELECT PMMLPredict(v USING PARAMETERS "
                        f"model_name='{MODEL_NAME}') FROM {SOURCE}",
                        weight=SCALE, output_weight=1.0,
                    )
                    stats.queue_wait += result.cost.queue_wait_seconds
        except AdmissionTimeout:
            stats.rejections += 1
        except (VerticaError, SparkError):
            stats.failures += 1
        else:
            stats.latencies.append(fabric.env.now - start)


def _build_fabric(session_pool_size: int) -> Fabric:
    return Fabric(
        num_vertica=3,
        num_spark=4,
        cost_model=SERVE_COST_MODEL,
        telemetry=True,
        failover_connect=True,
        wlm=True,
        session_pool_size=session_pool_size,
    )


def _prepare(fabric: Fabric, premium: bool) -> None:
    db = fabric.vertica.db
    with db.connect() as session:
        session.execute(
            f"CREATE TABLE {SOURCE} (id INTEGER, v FLOAT) SEGMENTED BY HASH(id)"
        )
        values = ", ".join(f"({i}, {v})" for i, v in ROWS)
        session.execute(f"INSERT INTO {SOURCE} VALUES {values}")
    model = train_linear_regression(
        [LabeledPoint(2.0 * x + 1.0, [float(x)]) for x in range(8)]
    )
    deploy_pmml_model(db, MODEL_NAME, model.to_pmml(MODEL_NAME))
    install_pmml_udx(db)
    # Shrink GENERAL so the tenant mix genuinely contends for admission.
    db.create_resource_pool(
        ResourcePool(GENERAL, **GENERAL_CONFIG), or_replace=True
    )
    if premium:
        db.create_resource_pool(ResourcePool(
            PREMIUM, priority=10, cascade=GENERAL, **GENERAL_CONFIG
        ))


def run_serve(tenants: int = 4, ops: int = 6, premium: bool = False,
              session_pool_size: int = 4) -> ServeReport:
    """Run one multi-tenant serving round; returns the audited report.

    With ``premium=True`` tenant 0 runs in a dedicated high-priority
    PREMIUM pool (cascading to GENERAL on queue timeout); everyone else
    stays in the congested GENERAL pool.
    """
    fabric = _build_fabric(session_pool_size)
    _prepare(fabric, premium)
    checker = InvariantChecker(fabric.vertica)
    mode = "pools" if premium else "shared"
    stats = [
        TenantStats(t, PREMIUM if premium and t == 0 else GENERAL)
        for t in range(tenants)
    ]
    for tenant_stats in stats:
        fabric.env.process(
            _tenant(fabric, tenant_stats, ops),
            name=f"tenant{tenant_stats.tenant}",
        )
    report = InvariantReport(f"serve:{mode}")
    try:
        fabric.env.run()
        report.passed("clean-drain")
    except BaseException as exc:  # noqa: BLE001 - audited, not swallowed
        report.violated("clean-drain", f"serving run raised {exc!r}")
    elapsed = fabric.env.now
    if fabric.vertica.session_pool is not None:
        fabric.vertica.session_pool.close_all()
    report.merge(checker.check_no_leaks())
    completed = sum(s.completed for s in stats)
    if completed == 0:
        report.violated("progress", "no tenant completed a single op")
    else:
        report.passed("progress")
    return ServeReport(mode, stats, elapsed, report, fabric.metrics_snapshot())


# ---------------------------------------------------- Zipf serving (caching)
ZIPF_TABLE = "zipf_src"
ZIPF_GROUPS = 40
ZIPF_ROWS = 600
#: stretches each point read so a cold scan costs ~0.25 s simulated —
#: the gap the result cache is supposed to close on the hot keys
ZIPF_READ_WEIGHT = 200.0


def zipf_cdf(groups: int, skew: float) -> List[float]:
    """Cumulative Zipf(``skew``) distribution over group ranks 0..G-1."""
    weights = [(rank + 1) ** -skew for rank in range(groups)]
    total = sum(weights)
    cdf: List[float] = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cdf.append(acc)
    return cdf


class ZipfClientStats:
    """One serving client's outcomes, reads and writes kept apart."""

    def __init__(self, client: int):
        self.client = client
        self.read_latencies: List[float] = []
        self.write_latencies: List[float] = []
        self.rejections = 0
        self.failures = 0


class ZipfServeReport:
    """One Zipf serving run: latency percentiles plus per-tier hit rates."""

    def __init__(self, skew: float, read_fraction: float, result_cache: bool,
                 clients: List[ZipfClientStats], elapsed: float,
                 report: InvariantReport, snapshot):
        self.skew = skew
        self.read_fraction = read_fraction
        self.result_cache = result_cache
        self.clients = clients
        self.elapsed = elapsed
        self.report = report
        self.snapshot = snapshot

    @property
    def ok(self) -> bool:
        return self.report.ok

    @property
    def read_latencies(self) -> List[float]:
        return [lat for stats in self.clients for lat in stats.read_latencies]

    @property
    def read_p50(self) -> float:
        return _percentile(self.read_latencies, 0.50)

    @property
    def read_p95(self) -> float:
        return _percentile(self.read_latencies, 0.95)

    @property
    def write_p50(self) -> float:
        writes = [w for s in self.clients for w in s.write_latencies]
        return _percentile(writes, 0.50)

    def _hit_rate(self, prefix: str, hit: str, miss: str) -> float:
        counters = self.snapshot.counters
        hits = counters.get(f"{prefix}.{hit}", 0.0)
        misses = counters.get(f"{prefix}.{miss}", 0.0)
        return hits / (hits + misses) if hits + misses else 0.0

    @property
    def result_hit_rate(self) -> float:
        return self._hit_rate("vertica.cache.result", "hits", "misses")

    @property
    def plan_hit_rate(self) -> float:
        return self._hit_rate("vertica.cache.plan", "hits", "misses")

    @property
    def parse_hit_rate(self) -> float:
        return self._hit_rate("vertica.cache.plan", "parse_hits",
                              "parse_misses")

    def describe(self) -> str:
        counters = self.snapshot.counters
        reads = len(self.read_latencies)
        writes = sum(len(s.write_latencies) for s in self.clients)
        rejected = sum(s.rejections for s in self.clients)
        failed = sum(s.failures for s in self.clients)
        lines = [
            f"zipf serve [{'warm' if self.result_cache else 'cold'}]: "
            f"{len(self.clients)} clients, skew={self.skew:g} "
            f"read_fraction={self.read_fraction:g}, "
            f"{self.elapsed:.3f}s simulated",
            f"  reads: {reads} p50={self.read_p50:.4f}s "
            f"p95={self.read_p95:.4f}s; writes: {writes} "
            f"p50={self.write_p50:.4f}s rejected={rejected} failed={failed}",
            f"  result cache: hit_rate={self.result_hit_rate:.2f} "
            f"stores={counters.get('vertica.cache.result.stores', 0):.0f} "
            f"evictions={counters.get('vertica.cache.result.evictions', 0):.0f}",
            f"  plan cache: hit_rate={self.plan_hit_rate:.2f} "
            f"parse_hit_rate={self.parse_hit_rate:.2f}",
            "  " + self.report.describe().replace("\n", "\n  "),
        ]
        return "\n".join(lines)


def _zipf_client(fabric: Fabric, stats: ZipfClientStats, ops: int,
                 cdf: List[float], read_fraction: float,
                 rng: random.Random, id_counter) -> Generator:
    """One serving client: Zipf-ranked point reads, occasional inserts."""
    cluster = fabric.vertica
    node = cluster.node_names[stats.client % len(cluster.node_names)]
    with cluster.connect(node) as conn:
        for __ in range(ops):
            start = fabric.env.now
            try:
                if rng.random() < read_fraction:
                    grp = bisect.bisect_left(cdf, rng.random())
                    yield from conn.execute(
                        f"SELECT COUNT(*), SUM(v) FROM {ZIPF_TABLE} "
                        f"WHERE grp = {grp}",
                        weight=ZIPF_READ_WEIGHT, output_weight=1.0,
                    )
                    stats.read_latencies.append(fabric.env.now - start)
                else:
                    row_id = next(id_counter)
                    grp = bisect.bisect_left(cdf, rng.random())
                    yield from conn.execute(
                        f"INSERT INTO {ZIPF_TABLE} VALUES "
                        f"({row_id}, {grp}, {float(row_id % 23)})"
                    )
                    stats.write_latencies.append(fabric.env.now - start)
            except AdmissionTimeout:
                stats.rejections += 1
            except (VerticaError, SparkError):
                stats.failures += 1


def run_zipf_serve(clients: int = 6, ops: int = 60, skew: float = 1.2,
                   read_fraction: float = 0.95, result_cache: bool = True,
                   seed: int = 11) -> ZipfServeReport:
    """Run one Zipf-skewed read-mostly serving round; audited.

    ``skew`` is the Zipf exponent over :data:`ZIPF_GROUPS` group ranks
    (0 = uniform); ``read_fraction`` is each op's probability of being a
    point read rather than an epoch-advancing INSERT.  With
    ``result_cache`` the database enables ``SET RESULT_CACHE`` for every
    session, and cached bytes are charged into the GENERAL pool's WLM
    memory ledger.
    """
    fabric = Fabric(num_vertica=3, num_spark=2, cost_model=SERVE_COST_MODEL,
                    telemetry=True, wlm=True)
    db = fabric.vertica.db
    with db.connect() as session:
        session.execute(
            f"CREATE TABLE {ZIPF_TABLE} (id INTEGER, grp INTEGER, v FLOAT) "
            f"SEGMENTED BY HASH(id) ALL NODES"
        )
        values = ", ".join(
            f"({i}, {i % ZIPF_GROUPS}, {float((i * 7) % 23)})"
            for i in range(ZIPF_ROWS)
        )
        session.execute(f"INSERT INTO {ZIPF_TABLE} VALUES {values}")
        session.execute(f"ANALYZE {ZIPF_TABLE}")
    db.result_cache_default = result_cache
    checker = InvariantChecker(fabric.vertica)
    cdf = zipf_cdf(ZIPF_GROUPS, skew)
    id_counter = itertools.count(ZIPF_ROWS)
    stats = [ZipfClientStats(c) for c in range(clients)]
    for client_stats in stats:
        rng = random.Random(seed * 10_007 + client_stats.client)
        fabric.env.process(
            _zipf_client(fabric, client_stats, ops, cdf, read_fraction,
                         rng, id_counter),
            name=f"client{client_stats.client}",
        )
    report = InvariantReport(
        f"serve:zipf:{'warm' if result_cache else 'cold'}"
    )
    try:
        fabric.env.run()
        report.passed("clean-drain")
    except BaseException as exc:  # noqa: BLE001 - audited, not swallowed
        report.violated("clean-drain", f"zipf serving run raised {exc!r}")
    elapsed = fabric.env.now
    report.merge(checker.check_no_leaks())
    if sum(len(s.read_latencies) for s in stats) == 0:
        report.violated("progress", "no client completed a single read")
    else:
        report.passed("progress")
    return ZipfServeReport(skew, read_fraction, result_cache, stats,
                           elapsed, report, fabric.metrics_snapshot())


def run_zipf_comparison(clients: int = 6, ops: int = 60, skew: float = 1.2,
                        read_fraction: float = 0.95,
                        seed: int = 11) -> Dict[str, ZipfServeReport]:
    """The caching experiment: same Zipf mix, result cache off vs on."""
    return {
        "cold": run_zipf_serve(clients, ops, skew, read_fraction,
                               result_cache=False, seed=seed),
        "warm": run_zipf_serve(clients, ops, skew, read_fraction,
                               result_cache=True, seed=seed),
    }


def run_comparison(tenants: int = 4, ops: int = 6,
                   session_pool_size: int = 4) -> Dict[str, ServeReport]:
    """The isolation experiment: same mix, shared GENERAL vs PREMIUM."""
    return {
        "shared": run_serve(tenants, ops, premium=False,
                            session_pool_size=session_pool_size),
        "pools": run_serve(tenants, ops, premium=True,
                           session_pool_size=session_pool_size),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--ops", type=int, default=6,
                        help="operations per tenant")
    parser.add_argument("--session-pool", type=int, default=4,
                        help="max idle pooled sessions per node (0 disables)")
    parser.add_argument("--mode",
                        choices=("shared", "pools", "compare", "zipf"),
                        default="compare")
    parser.add_argument("--clients", type=int, default=6,
                        help="concurrent clients (zipf mode)")
    parser.add_argument("--skew", type=float, default=1.2,
                        help="Zipf exponent over group ranks (zipf mode)")
    parser.add_argument("--read-fraction", type=float, default=0.95,
                        help="probability an op is a read (zipf mode)")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)

    if args.mode == "zipf":
        ops = args.ops if args.ops != 6 else 60  # zipf default is longer
        reports = run_zipf_comparison(args.clients, ops, args.skew,
                                      args.read_fraction, args.seed)
        failed = False
        for report in reports.values():
            print(report.describe())
            failed = failed or not report.ok
        cold_p50 = reports["cold"].read_p50
        warm_p50 = reports["warm"].read_p50
        speedup = cold_p50 / warm_p50 if warm_p50 > 0 else float("inf")
        print(f"read p50: cold={cold_p50:.4f}s warm={warm_p50:.4f}s "
              f"({speedup:.1f}x)")
        if args.skew >= 1.0 and warm_p50 * 5.0 > cold_p50:
            print("warm p50 did not beat cold by >=5x at this skew",
                  file=sys.stderr)
            failed = True
        return 1 if failed else 0

    if args.mode != "compare":
        report = run_serve(args.tenants, args.ops,
                           premium=args.mode == "pools",
                           session_pool_size=args.session_pool)
        print(report.describe())
        return 0 if report.ok else 1

    reports = run_comparison(args.tenants, args.ops, args.session_pool)
    failed = False
    for report in reports.values():
        print(report.describe())
        failed = failed or not report.ok
    shared_p95 = reports["shared"].tenant(0).p95
    premium_p95 = reports["pools"].tenant(0).p95
    print(
        f"tenant 0 p95: shared={shared_p95:.3f}s premium={premium_p95:.3f}s "
        f"({'isolated' if premium_p95 < shared_p95 else 'NOT ISOLATED'})"
    )
    if premium_p95 >= shared_p95:
        print("premium pool failed to improve tenant 0 latency",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
