"""Multi-tenant concurrent serving benchmark for the WLM subsystem.

N tenants share one fabric and concurrently run a mixed workload — V2S
scans, S2V saves and in-database model scoring (MD) — while every
statement passes through :mod:`repro.wlm` admission control and a
client-side session pool.  The driver reports per-tenant p50/p95
latency, throughput, queue time and rejections, then audits the fabric
with the :class:`~repro.chaos.InvariantChecker`: whatever the admission
queueing did, no slot, memory grant or session may leak.

The headline experiment is isolation: the same tenant mix runs twice,
once with everyone crammed into a deliberately congested GENERAL pool
and once with tenant 0 moved to a dedicated high-priority PREMIUM pool.
Tenant 0's p95 must drop — that is workload management doing its job::

    PYTHONPATH=src python -m repro.bench.concurrent_serve
    PYTHONPATH=src python -m repro.bench.concurrent_serve \\
        --tenants 6 --ops 8 --mode pools
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Generator, List, Optional, Sequence

from repro.bench.fabric import Fabric
from repro.chaos import InvariantChecker, InvariantReport
from repro.connector.costmodel import VerticaCostModel
from repro.connector.md import deploy_pmml_model, install_pmml_udx
from repro.connector.s2v import S2VWriter
from repro.connector.v2s import VerticaRelation
from repro.spark.errors import SparkError
from repro.spark.mllib import LabeledPoint, train_linear_regression
from repro.spark.row import StructField, StructType
from repro.vertica.errors import AdmissionTimeout, VerticaError
from repro.wlm import GENERAL, ResourcePool

#: light-but-nonzero latencies: ops overlap enough to contend for
#: admission slots while a full comparison run stays in seconds
SERVE_COST_MODEL = VerticaCostModel(
    connect_latency=0.02,
    query_latency=0.004,
    ddl_latency=0.01,
    query_plan_cpu=0.002,
    scan_cpu_per_row=2e-6,
    agg_cpu_per_row=2e-6,
    output_cpu_per_row=4e-6,
    load_cpu_per_row=6e-6,
    encode_cpu_per_row=3e-6,
    per_connection_rate_cap=3e4,
    copy_rate_cap=2e4,
)

SCHEMA = StructType([StructField("id", "long"), StructField("v", "double")])
ROWS = [(i, float((i * 13) % 17)) for i in range(120)]
SOURCE = "serve_src"
MODEL_NAME = "serve_model"
PREMIUM = "PREMIUM"
#: per-op task parallelism (each task is one admitted statement stream)
NUM_TASKS = 3
#: virtual scale factor: stretches each op so tenants genuinely overlap
SCALE = 25.0
#: deterministic per-tenant operation rotation
OP_MIX = ("v2s", "s2v", "md")
#: the congested shared pool: every concurrent statement fights for
#: these four slots, so queueing is the norm, not the exception
GENERAL_CONFIG = dict(
    memory_mb=4096, planned_concurrency=4, max_concurrency=4,
    queue_timeout=60.0,
)


def _percentile(values: Sequence[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


class TenantStats:
    """One tenant's outcomes: latencies, queue time, rejections, failures."""

    def __init__(self, tenant: int, pool: str):
        self.tenant = tenant
        self.pool = pool
        self.latencies: List[float] = []
        self.queue_wait = 0.0
        self.rejections = 0
        self.failures = 0

    @property
    def completed(self) -> int:
        return len(self.latencies)

    @property
    def p50(self) -> float:
        return _percentile(self.latencies, 0.50)

    @property
    def p95(self) -> float:
        return _percentile(self.latencies, 0.95)

    def describe(self, elapsed: float) -> str:
        rate = self.completed / elapsed if elapsed > 0 else 0.0
        return (
            f"tenant {self.tenant} [{self.pool}]: {self.completed} ops, "
            f"p50={self.p50:.3f}s p95={self.p95:.3f}s "
            f"{rate:.2f} ops/s queue_wait={self.queue_wait:.3f}s "
            f"rejected={self.rejections} failed={self.failures}"
        )


class ServeReport:
    """One serving run: per-tenant stats, pool telemetry, audit."""

    def __init__(self, mode: str, tenants: List[TenantStats], elapsed: float,
                 report: InvariantReport, snapshot):
        self.mode = mode
        self.tenants = tenants
        self.elapsed = elapsed
        self.report = report
        self.snapshot = snapshot

    @property
    def ok(self) -> bool:
        return self.report.ok

    def tenant(self, index: int) -> TenantStats:
        return self.tenants[index]

    def describe(self) -> str:
        counters = self.snapshot.counters
        gauges = self.snapshot.gauges
        lines = [
            f"concurrent serve [{self.mode}]: {len(self.tenants)} tenants, "
            f"{self.elapsed:.3f}s simulated",
        ]
        for stats in self.tenants:
            lines.append("  " + stats.describe(self.elapsed))
        waits = self.snapshot.histograms.get("wlm.queue_wait_seconds")
        lines.append(
            "  wlm: "
            f"admissions={counters.get('wlm.admissions', 0):.0f} "
            f"rejections={counters.get('wlm.rejections', 0):.0f} "
            f"cascades={counters.get('wlm.cascades', 0):.0f} "
            f"sessions_reused={counters.get('wlm.sessions.reused', 0):.0f}"
        )
        if waits and waits["count"]:
            lines.append(
                f"  queue wait: n={waits['count']:.0f} "
                f"mean={waits['mean']:.4f}s max={waits['max']:.4f}s"
            )
        for name in sorted(gauges):
            if name.endswith(".queue_depth") and name.startswith("wlm.pool."):
                final, peak = gauges[name]
                lines.append(f"  {name}: peak={peak:.0f}")
            elif name.startswith("db.sessions.active."):
                final, peak = gauges[name]
                lines.append(f"  {name}: peak={peak:.0f} final={final:.0f}")
        lines.append("  " + self.report.describe().replace("\n", "\n  "))
        return "\n".join(lines)


def _rdd_thunks(rdd) -> List:
    def make(split: int):
        def thunk(ctx) -> Generator:
            rows = yield from rdd.compute(split, ctx)
            return rows

        return thunk

    return [make(i) for i in range(rdd.num_partitions)]


def _tenant(fabric: Fabric, stats: TenantStats, ops: int) -> Generator:
    """One tenant's serving loop: a deterministic rotation of op kinds."""
    cluster = fabric.vertica
    spark = fabric.spark
    relation = VerticaRelation(spark, {
        "db": cluster, "table": SOURCE, "numpartitions": NUM_TASKS,
        "scale_factor": SCALE, "resource_pool": stats.pool,
    })
    dataframe = fabric.spark.create_dataframe(
        ROWS, SCHEMA, num_partitions=NUM_TASKS
    )
    for index in range(ops):
        op = OP_MIX[(stats.tenant + index) % len(OP_MIX)]
        start = fabric.env.now
        try:
            if op == "v2s":
                rdd = relation.build_scan()
                job = spark.scheduler.submit(
                    _rdd_thunks(rdd),
                    name=f"serve_t{stats.tenant}_op{index}_v2s",
                )
                yield job.done
            elif op == "s2v":
                writer = S2VWriter(
                    spark, "overwrite",
                    {"db": cluster, "table": f"serve_out_t{stats.tenant}",
                     "numpartitions": NUM_TASKS, "scale_factor": SCALE,
                     "resource_pool": stats.pool},
                    dataframe,
                )
                yield from writer.save_process()
            else:
                node = cluster.node_names[
                    (stats.tenant + index) % len(cluster.node_names)
                ]
                with cluster.connect(node, resource_pool=stats.pool) as conn:
                    result = yield from conn.execute(
                        f"SELECT PMMLPredict(v USING PARAMETERS "
                        f"model_name='{MODEL_NAME}') FROM {SOURCE}",
                        weight=SCALE, output_weight=1.0,
                    )
                    stats.queue_wait += result.cost.queue_wait_seconds
        except AdmissionTimeout:
            stats.rejections += 1
        except (VerticaError, SparkError):
            stats.failures += 1
        else:
            stats.latencies.append(fabric.env.now - start)


def _build_fabric(session_pool_size: int) -> Fabric:
    return Fabric(
        num_vertica=3,
        num_spark=4,
        cost_model=SERVE_COST_MODEL,
        telemetry=True,
        failover_connect=True,
        wlm=True,
        session_pool_size=session_pool_size,
    )


def _prepare(fabric: Fabric, premium: bool) -> None:
    db = fabric.vertica.db
    with db.connect() as session:
        session.execute(
            f"CREATE TABLE {SOURCE} (id INTEGER, v FLOAT) SEGMENTED BY HASH(id)"
        )
        values = ", ".join(f"({i}, {v})" for i, v in ROWS)
        session.execute(f"INSERT INTO {SOURCE} VALUES {values}")
    model = train_linear_regression(
        [LabeledPoint(2.0 * x + 1.0, [float(x)]) for x in range(8)]
    )
    deploy_pmml_model(db, MODEL_NAME, model.to_pmml(MODEL_NAME))
    install_pmml_udx(db)
    # Shrink GENERAL so the tenant mix genuinely contends for admission.
    db.create_resource_pool(
        ResourcePool(GENERAL, **GENERAL_CONFIG), or_replace=True
    )
    if premium:
        db.create_resource_pool(ResourcePool(
            PREMIUM, priority=10, cascade=GENERAL, **GENERAL_CONFIG
        ))


def run_serve(tenants: int = 4, ops: int = 6, premium: bool = False,
              session_pool_size: int = 4) -> ServeReport:
    """Run one multi-tenant serving round; returns the audited report.

    With ``premium=True`` tenant 0 runs in a dedicated high-priority
    PREMIUM pool (cascading to GENERAL on queue timeout); everyone else
    stays in the congested GENERAL pool.
    """
    fabric = _build_fabric(session_pool_size)
    _prepare(fabric, premium)
    checker = InvariantChecker(fabric.vertica)
    mode = "pools" if premium else "shared"
    stats = [
        TenantStats(t, PREMIUM if premium and t == 0 else GENERAL)
        for t in range(tenants)
    ]
    for tenant_stats in stats:
        fabric.env.process(
            _tenant(fabric, tenant_stats, ops),
            name=f"tenant{tenant_stats.tenant}",
        )
    report = InvariantReport(f"serve:{mode}")
    try:
        fabric.env.run()
        report.passed("clean-drain")
    except BaseException as exc:  # noqa: BLE001 - audited, not swallowed
        report.violated("clean-drain", f"serving run raised {exc!r}")
    elapsed = fabric.env.now
    if fabric.vertica.session_pool is not None:
        fabric.vertica.session_pool.close_all()
    report.merge(checker.check_no_leaks())
    completed = sum(s.completed for s in stats)
    if completed == 0:
        report.violated("progress", "no tenant completed a single op")
    else:
        report.passed("progress")
    return ServeReport(mode, stats, elapsed, report, fabric.metrics_snapshot())


def run_comparison(tenants: int = 4, ops: int = 6,
                   session_pool_size: int = 4) -> Dict[str, ServeReport]:
    """The isolation experiment: same mix, shared GENERAL vs PREMIUM."""
    return {
        "shared": run_serve(tenants, ops, premium=False,
                            session_pool_size=session_pool_size),
        "pools": run_serve(tenants, ops, premium=True,
                           session_pool_size=session_pool_size),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--ops", type=int, default=6,
                        help="operations per tenant")
    parser.add_argument("--session-pool", type=int, default=4,
                        help="max idle pooled sessions per node (0 disables)")
    parser.add_argument("--mode", choices=("shared", "pools", "compare"),
                        default="compare")
    args = parser.parse_args(argv)

    if args.mode != "compare":
        report = run_serve(args.tenants, args.ops,
                           premium=args.mode == "pools",
                           session_pool_size=args.session_pool)
        print(report.describe())
        return 0 if report.ok else 1

    reports = run_comparison(args.tenants, args.ops, args.session_pool)
    failed = False
    for report in reports.values():
        print(report.describe())
        failed = failed or not report.ok
    shared_p95 = reports["shared"].tenant(0).p95
    premium_p95 = reports["pools"].tenant(0).p95
    print(
        f"tenant 0 p95: shared={shared_p95:.3f}s premium={premium_p95:.3f}s "
        f"({'isolated' if premium_p95 < shared_p95 else 'NOT ISOLATED'})"
    )
    if premium_p95 >= shared_p95:
        print("premium pool failed to improve tenant 0 latency",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
