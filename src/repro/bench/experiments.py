"""Experiment definitions: one function per table/figure of the paper.

Each function builds fresh fabrics, runs the experiment at laptop scale
(real rows standing for the paper's virtual volumes), and returns an
:class:`~repro.bench.report.ExperimentReport` carrying paper-vs-measured
rows plus explicit *shape checks* — the who-wins / monotonicity /
rough-factor claims the reproduction must preserve.

Paper values quoted as plain numbers are stated in the paper's text;
values marked ``~`` are read off its figures and approximate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bench.fabric import Fabric
from repro.bench.report import ExperimentReport
from repro.baselines.native_copy import parallel_copy, split_csv
from repro.sim.trace import UsageTrace
from repro.spark.datasource import GreaterThanOrEqual, LessThan
from repro.workloads import make_d1, make_d1_reshaped, make_d1_with_int_column, make_d2

#: default real row counts (virtual volumes come from the datasets)
D1_REAL_ROWS = 2000
D2_REAL_ROWS = 4000

#: build experiment fabrics with telemetry on, so every saved result file
#: carries a telemetry section; flip off to measure the zero-overhead path
TELEMETRY_ENABLED = True


class FabricFactory:
    """Builds fabrics and collects each one's telemetry snapshot.

    A fresh :class:`Fabric` installs a fresh global registry, so the
    previous fabric's metrics must be frozen before the next is built —
    the factory does that on every call, then merges all snapshots into
    the experiment report at :meth:`attach`.
    """

    def __init__(self, telemetry: Optional[bool] = None):
        self.telemetry = TELEMETRY_ENABLED if telemetry is None else telemetry
        self._last: Optional[Fabric] = None
        self.snapshots: List = []
        #: simulated seconds summed over every fabric this factory built
        self.sim_seconds = 0.0

    def __call__(self, **kwargs) -> Fabric:
        self.collect()
        kwargs.setdefault("telemetry", self.telemetry)
        self._last = Fabric(**kwargs)
        return self._last

    def collect(self) -> None:
        if self._last is not None:
            if self.telemetry:
                self.snapshots.append(self._last.metrics_snapshot())
            self.sim_seconds += self._last.env.now
            self._last = None

    def attach(self, report: ExperimentReport) -> None:
        self.collect()
        for snapshot in self.snapshots:
            report.attach_telemetry(snapshot)
        report.timing(sim_seconds=self.sim_seconds)

FIG6_PARTITIONS = (4, 8, 16, 32, 64, 128, 256)

#: paper values for Figure 6; exact where stated in the text, otherwise
#: read from the figure (approximate, marked in the report)
FIG6_PAPER_V2S = {32: 497.0, 128: 475.0}
FIG6_PAPER_S2V = {128: 252.0}


def _d1(real_rows: int = D1_REAL_ROWS, virtual_rows: Optional[int] = None):
    dataset = make_d1(real_rows=real_rows)
    if virtual_rows is not None:
        dataset = dataset.with_virtual_rows(virtual_rows)
    return dataset


# --------------------------------------------------------------------- Fig 6
def run_fig6(partitions: Tuple[int, ...] = FIG6_PARTITIONS) -> ExperimentReport:
    """Figure 6: execution time vs number of partitions (the bowl)."""
    report = ExperimentReport(
        "fig06_parallelism", "Varying the number of partitions (D1, 100M rows)"
    )
    report.set_columns(
        ["partitions", "V2S paper (s)", "V2S sim (s)", "S2V paper (s)", "S2V sim (s)"]
    )
    fabrics = FabricFactory()
    v2s: Dict[int, float] = {}
    s2v: Dict[int, float] = {}
    for count in partitions:
        fabric = fabrics()
        dataset = _d1()
        fabric.populate(dataset, "d1")
        v2s[count], __ = fabric.v2s_load("d1", count, dataset.scale)
        fabric = fabrics()
        s2v[count] = fabric.s2v_save(_d1(), "d1_out", count)
        report.add(
            count,
            FIG6_PAPER_V2S.get(count),
            v2s[count],
            FIG6_PAPER_S2V.get(count),
            s2v[count],
        )
    report.note(
        "paper states V2S 497 s @32 / 475 s @128 and S2V best 252 s @128; "
        "other paper points are unlabeled in the figure"
    )
    best_v2s = min(v2s.values())
    best_s2v = min(s2v.values())
    report.check("bowl: V2S @4 partitions is >2x its best", v2s[4] > 2 * best_v2s)
    report.check("bowl: S2V @4 partitions is >2x its best", s2v[4] > 2 * best_s2v)
    report.check(
        "V2S best occurs in the middle ranges (32..256)",
        min(v2s, key=v2s.get) >= 32,
    )
    report.check(
        "S2V best occurs at high parallelism (>=64)", min(s2v, key=s2v.get) >= 64
    )
    report.check("S2V best is faster than V2S best", best_s2v < best_v2s)
    report.check(
        "V2S @32 within 25% of paper's 497 s",
        abs(v2s[32] - 497.0) / 497.0 < 0.25,
    )
    report.measured = {"v2s": v2s, "s2v": s2v}
    fabrics.attach(report)
    return report


# --------------------------------------------------------------------- Tab 2
def run_tab2() -> ExperimentReport:
    """Table 2: per-node resource usage during V2S, 4 vs 32 partitions."""
    report = ExperimentReport(
        "tab02_resources",
        "Vertica node CPU / outbound network during the first 300 s of V2S",
    )
    report.set_columns(
        ["partitions", "metric", "paper steady-state", "sim steady-state", "sparkline (0-300s)"]
    )
    fabrics = FabricFactory()
    measured = {}
    for count, paper_net, paper_cpu in ((4, 38.0, 5.0), (32, 120.0, 20.0)):
        fabric = fabrics()
        dataset = _d1()
        fabric.populate(dataset, "d1")
        fabric.v2s_load("d1", count, dataset.scale)
        node = fabric.vertica.sim_nodes["node0001"]
        nic = node.nics[fabric.vertica.cost_model.external_nic].tx
        net = UsageTrace.from_log("net", nic.rate_log, 0, 300, 5)
        net_mbps = UsageTrace("net", net.times, [v / 1e6 for v in net.values])
        cpu_log = [(t, 100.0 * used / node.streams.capacity)
                   for t, used in node.streams.usage_log]
        cpu = UsageTrace.from_log("cpu", cpu_log, 0, 300, 5)
        report.add(count, "network MB/s", paper_net, net_mbps.steady_state(),
                   net_mbps.sparkline(40, peak=125))
        report.add(count, "CPU %", paper_cpu, cpu.steady_state(),
                   cpu.sparkline(40, peak=100))
        measured[count] = {
            "net_steady": net_mbps.steady_state(),
            "cpu_steady": cpu.steady_state(),
        }
    report.note(
        "CPU%% measured as producer-pipeline core occupancy; network is the "
        "external NIC outbound rate of one Vertica node"
    )
    report.check(
        "4 partitions: network unsaturated near the per-connection cap "
        "(~38 MB/s)",
        25.0 <= measured[4]["net_steady"] <= 45.0,
    )
    report.check(
        "32 partitions: network saturated (~120 MB/s)",
        105.0 <= measured[32]["net_steady"] <= 126.0,
    )
    report.check(
        "CPU rises with parallelism but stays modest (<40%)",
        measured[4]["cpu_steady"] < measured[32]["cpu_steady"] < 40.0,
    )
    report.measured = measured
    fabrics.attach(report)
    return report


# --------------------------------------------------------------------- Fig 7
FIG7_ROWS = (1_000_000, 10_000_000, 100_000_000, 1_000_000_000)


def run_fig7() -> ExperimentReport:
    """Figure 7: data scalability, 1M to 1000M rows (log-log linear)."""
    report = ExperimentReport(
        "fig07_data_scaling", "Varying the data size (D1), V2S @32 / S2V @128"
    )
    report.set_columns(
        ["rows", "V2S paper (s)", "V2S sim (s)", "S2V paper (s)", "S2V sim (s)"]
    )
    fabrics = FabricFactory()
    paper = {1_000_000: (None, 19.0), 100_000_000: (497.0, 252.0)}
    v2s: Dict[int, float] = {}
    s2v: Dict[int, float] = {}
    for rows in FIG7_ROWS:
        fabric = fabrics()
        dataset = _d1(virtual_rows=rows)
        fabric.populate(dataset, "d1")
        v2s[rows], __ = fabric.v2s_load("d1", 32, dataset.scale)
        fabric = fabrics()
        s2v[rows] = fabric.s2v_save(_d1(virtual_rows=rows), "d1_out", 128)
        paper_v2s, paper_s2v = paper.get(rows, (None, None))
        report.add(rows, paper_v2s, v2s[rows], paper_s2v, s2v[rows])
    # Linearity: time ratio between successive decades approaches 10.
    big_ratio_v2s = v2s[FIG7_ROWS[-1]] / v2s[FIG7_ROWS[-2]]
    big_ratio_s2v = s2v[FIG7_ROWS[-1]] / s2v[FIG7_ROWS[-2]]
    report.check("V2S scales ~linearly at large sizes (x10 rows -> x7..12 time)",
                 7.0 < big_ratio_v2s < 12.0)
    report.check("S2V scales ~linearly at large sizes (x10 rows -> x7..12 time)",
                 7.0 < big_ratio_s2v < 12.0)
    report.check("S2V slower than V2S at 1M rows (fixed overheads)",
                 s2v[1_000_000] > v2s[1_000_000])
    report.check("S2V faster than V2S at 1000M rows (crossover)",
                 s2v[1_000_000_000] < v2s[1_000_000_000])
    report.measured = {"v2s": v2s, "s2v": s2v}
    fabrics.attach(report)
    return report


# --------------------------------------------------------------------- Fig 8
FIG8_CLUSTERS = ((2, 4, 100_000_000, 16, 64), (4, 8, 200_000_000, 32, 128),
                 (8, 16, 400_000_000, 64, 256))


def run_fig8() -> ExperimentReport:
    """Figure 8: cluster scalability at fixed per-node data volume."""
    report = ExperimentReport(
        "fig08_cluster_scaling",
        "Scaling the cluster 2:4 -> 4:8 -> 8:16 with data doubled alongside",
    )
    report.set_columns(
        ["cluster", "rows", "V2S sim (s)", "S2V sim (s)"]
    )
    fabrics = FabricFactory()
    v2s: List[float] = []
    s2v: List[float] = []
    for vertica_nodes, spark_nodes, rows, v2s_parts, s2v_parts in FIG8_CLUSTERS:
        fabric = fabrics(num_vertica=vertica_nodes, num_spark=spark_nodes)
        dataset = _d1(virtual_rows=rows)
        fabric.populate(dataset, "d1")
        elapsed, __ = fabric.v2s_load("d1", v2s_parts, dataset.scale)
        v2s.append(elapsed)
        fabric = fabrics(num_vertica=vertica_nodes, num_spark=spark_nodes)
        s2v.append(fabric.s2v_save(_d1(virtual_rows=rows), "d1_out", s2v_parts))
        report.add(f"{vertica_nodes}:{spark_nodes}", rows, elapsed, s2v[-1])
    report.note("paper: slight (<10%) degradation per doubling")
    for index in (1, 2):
        report.check(
            f"V2S degradation step {index} below 15%",
            v2s[index] < v2s[index - 1] * 1.15,
        )
        report.check(
            f"S2V degradation step {index} below 15%",
            s2v[index] < s2v[index - 1] * 1.15,
        )
    report.measured = {"v2s": v2s, "s2v": s2v}
    fabrics.attach(report)
    return report


# --------------------------------------------------------------------- Fig 9
def run_fig9() -> ExperimentReport:
    """Figure 9: same cell count, different shape (100x100M vs 1x10000M)."""
    report = ExperimentReport(
        "fig09_dimensionality",
        "Varying data dimensionality at a fixed 10,000M-cell volume",
    )
    report.set_columns(["shape", "V2S sim (s)", "S2V sim (s)"])
    fabrics = FabricFactory()
    wide = _d1()
    tall = make_d1_reshaped(real_rows=D1_REAL_ROWS)
    times = {}
    for label, dataset in (("100 cols x 100M rows", wide),
                           ("1 col x 10000M rows", tall)):
        fabric = fabrics()
        fabric.populate(dataset, "d1")
        v2s, __ = fabric.v2s_load("d1", 32, dataset.scale)
        fabric = fabrics()
        s2v = fabric.s2v_save(dataset, "d1_out", 128)
        times[label] = (v2s, s2v)
        report.add(label, v2s, s2v)
    report.note(
        "paper: the 1-column variant is significantly slower — a fixed "
        "per-row overhead dominates when rows are 100x more numerous"
    )
    wide_v2s, wide_s2v = times["100 cols x 100M rows"]
    tall_v2s, tall_s2v = times["1 col x 10000M rows"]
    report.check("V2S: 1-col variant at least 1.5x slower", tall_v2s > 1.5 * wide_v2s)
    report.check("S2V: 1-col variant at least 1.5x slower", tall_s2v > 1.5 * wide_s2v)
    report.measured = times
    fabrics.attach(report)
    return report


# --------------------------------------------------------------------- Tab 3
def run_tab3() -> ExperimentReport:
    """Table 3: dataset D2 (1.46B rows of tweets, same 140 GB)."""
    report = ExperimentReport(
        "tab03_dataset_d2", "Performance with dataset D2 (V2S @32, S2V @128)"
    )
    report.set_columns(["direction", "paper D2 (s)", "sim D2 (s)",
                        "paper D1 (s)", "sim D1 (s)"])
    fabrics = FabricFactory()
    d2 = make_d2(real_rows=D2_REAL_ROWS)
    fabric = fabrics()
    fabric.populate(d2, "d2")
    v2s_d2, __ = fabric.v2s_load("d2", 32, d2.scale)
    fabric = fabrics()
    s2v_d2 = fabric.s2v_save(make_d2(real_rows=D2_REAL_ROWS), "d2_out", 128)
    fabric = fabrics()
    d1 = _d1()
    fabric.populate(d1, "d1")
    v2s_d1, __ = fabric.v2s_load("d1", 32, d1.scale)
    fabric = fabrics()
    s2v_d1 = fabric.s2v_save(_d1(), "d1_out", 128)
    report.add("V2S", 378.0, v2s_d2, 490.0, v2s_d1)
    report.add("S2V", 386.0, s2v_d2, 252.0, s2v_d1)
    report.check("V2S loads D2 faster than D1", v2s_d2 < v2s_d1)
    report.check("S2V saves D2 slower than D1", s2v_d2 > s2v_d1)
    report.measured = {"v2s_d2": v2s_d2, "s2v_d2": s2v_d2,
                       "v2s_d1": v2s_d1, "s2v_d1": s2v_d1}
    fabrics.attach(report)
    return report


# -------------------------------------------------------------------- Fig 10
def run_fig10() -> ExperimentReport:
    """Figure 10: load — V2S vs JDBC Default Source, with/without pushdown."""
    report = ExperimentReport(
        "fig10_jdbc_load",
        "Load: V2S vs JDBC DefaultSource, 5% selectivity pushdown",
    )
    report.set_columns(["case", "paper", "V2S sim (s)", "JDBC sim (s)"])
    fabrics = FabricFactory()
    dataset = make_d1_with_int_column(real_rows=D1_REAL_ROWS)
    selective = [GreaterThanOrEqual("ikey", 0), LessThan("ikey", 5)]

    def fresh():
        fabric = fabrics()
        fabric.populate(dataset, "d1int")
        return fabric

    v2s_full, __ = fresh().v2s_load("d1int", 32, dataset.scale)
    jdbc_full, __ = fresh().jdbc_load(
        "d1int", 32, dataset.scale, partition_column="ikey", lower=0, upper=100
    )
    v2s_push, __ = fresh().v2s_load("d1int", 32, dataset.scale, filters=selective)
    jdbc_push, __ = fresh().jdbc_load(
        "d1int", 32, dataset.scale, partition_column="ikey", lower=0, upper=100,
        filters=selective,
    )
    report.add("no pushdown", "V2S ~4x faster", v2s_full, jdbc_full)
    report.add("pushdown, 5% selectivity", "similar", v2s_push, jdbc_push)
    ratio = jdbc_full / v2s_full
    report.check("without pushdown V2S is 3-6x faster (paper: ~4x)",
                 3.0 < ratio < 6.0)
    report.check("pushdown shrinks both by >5x",
                 v2s_push < v2s_full / 5 and jdbc_push < jdbc_full / 5)
    report.check("with pushdown the gap narrows (JDBC within ~4x of V2S)",
                 jdbc_push / v2s_push < ratio)
    report.measured = {"v2s_full": v2s_full, "jdbc_full": jdbc_full,
                       "v2s_push": v2s_push, "jdbc_push": jdbc_push}
    fabrics.attach(report)
    return report


# -------------------------------------------------------------------- Fig 11
FIG11_ROWS = (1, 1000, 10_000, 1_000_000)


def run_fig11() -> ExperimentReport:
    """Figure 11: save — S2V vs JDBC Default Source at small sizes."""
    report = ExperimentReport(
        "fig11_jdbc_save", "Save: S2V vs JDBC DefaultSource (D1 subsets)"
    )
    report.set_columns(["rows", "paper S2V (s)", "sim S2V (s)",
                        "paper JDBC (s)", "sim JDBC (s)"])
    fabrics = FabricFactory()
    paper = {1: (5.0, 3.0), 1_000_000: (19.0, 10800.0)}
    s2v: Dict[int, float] = {}
    jdbc: Dict[int, float] = {}
    for rows in FIG11_ROWS:
        real = min(rows, D1_REAL_ROWS)
        dataset = make_d1(real_rows=real).with_virtual_rows(rows)
        partitions = 4 if rows <= 10_000 else 128
        fabric = fabrics()
        s2v[rows] = fabric.s2v_save(dataset, "dest", partitions)
        fabric = fabrics()
        jdbc[rows] = fabric.jdbc_save(dataset, "dest", 4)
        paper_s2v, paper_jdbc = paper.get(rows, (None, None))
        report.add(rows, paper_s2v, s2v[rows], paper_jdbc, jdbc[rows])
    report.note("paper stopped the JDBC 1M-row run after 3 hours (10800 s)")
    report.check("1 row: JDBC cheaper than S2V (S2V pays exactly-once setup)",
                 jdbc[1] < s2v[1])
    report.check("1 row: S2V overhead is a few seconds (2..12 s)",
                 2.0 < s2v[1] < 12.0)
    report.check("1K rows: JDBC's advantage is gone (within 1.5x of S2V)",
                 s2v[1000] < 1.5 * jdbc[1000])
    report.check("10K rows: S2V faster", s2v[10_000] < jdbc[10_000])
    report.check("1M rows: S2V faster by >100x", jdbc[1_000_000] > 100 * s2v[1_000_000])
    report.check("1M rows: JDBC takes hours (>3600 s)", jdbc[1_000_000] > 3600)
    report.measured = {"s2v": s2v, "jdbc": jdbc}
    fabrics.attach(report)
    return report


# -------------------------------------------------------------------- Fig 12
def run_fig12() -> ExperimentReport:
    """Figure 12: V2S/S2V vs Spark's native HDFS read/write."""
    report = ExperimentReport(
        "fig12_hdfs", "Read/write Vertica (4:8) vs read/write HDFS (4:8)"
    )
    report.set_columns(["operation", "paper", "Vertica sim (s)", "HDFS sim (s)"])
    dataset = _d1()
    # Size HDFS blocks so the stored file splits into ~2240 blocks, like
    # the paper's 140 GB at 64 MB per block (the warm file is written with
    # few partitions so per-part file headers stay negligible).
    from repro.hdfs.columnar import write_columnar

    real_file_bytes = len(write_columnar(dataset.schema.to_avro(), dataset.rows))
    target_virtual_bytes = 140e9
    block_size = max(1, -(-real_file_bytes // 2232))  # ceil
    fabrics = FabricFactory()

    fabric = fabrics(with_hdfs=True, hdfs_block_size=block_size)
    fabric.populate(dataset, "d1")
    v2s_read, __ = fabric.v2s_load("d1", 32, dataset.scale)
    fabric = fabrics(with_hdfs=True, hdfs_block_size=block_size)
    # write once (unmeasured) to have something to read; drain the
    # background replication flows so they do not contend with the read
    fabric.hdfs_write(dataset, "/warm", 8)
    fabric.env.run()
    parts = fabric.hdfs.fs.list("/warm/part-")
    blocks = sum(fabric.hdfs.fs.total_blocks(p) for p in parts)
    stored_bytes = sum(fabric.hdfs.fs.file_size(p) for p in parts)
    byte_scale = target_virtual_bytes / stored_bytes
    hdfs_read, __ = fabric.hdfs_read("/warm", byte_scale)

    fabric = fabrics(with_hdfs=True, hdfs_block_size=block_size)
    s2v_write = fabric.s2v_save(_d1(), "d1_out", 128)
    fabric = fabrics(with_hdfs=True, hdfs_block_size=block_size)
    hdfs_write = fabric.hdfs_write(_d1(), "/out", 128)

    report.add("read", "HDFS ~30% faster", v2s_read, hdfs_read)
    report.add("write", "about the same", s2v_write, hdfs_write)
    report.note(f"HDFS file split into {blocks} blocks -> {blocks} read tasks "
                "(paper: 2240)")
    report.check("HDFS read faster than V2S (paper: ~30% faster)",
                 hdfs_read < v2s_read)
    report.check("HDFS read not absurdly faster (within 4x)",
                 hdfs_read > v2s_read / 4)
    report.check("HDFS write within 50% of S2V (paper: about the same)",
                 abs(hdfs_write - s2v_write) / s2v_write < 0.5)
    report.check("read task count within 25% of the paper's 2240",
                 abs(blocks - 2240) / 2240 < 0.25)
    report.measured = {"v2s_read": v2s_read, "hdfs_read": hdfs_read,
                       "s2v_write": s2v_write, "hdfs_write": hdfs_write}
    fabrics.attach(report)
    return report


# -------------------------------------------------------------------- Tab 4
TAB4_SPLITS = (4, 8, 16, 32, 64, 128)


def run_tab4() -> ExperimentReport:
    """Table 4: S2V vs Vertica's native parallel COPY."""
    report = ExperimentReport(
        "tab04_native_copy", "Save with S2V vs native bulk-load COPY"
    )
    report.set_columns(["method", "paper best (s)", "sim best (s)", "at"])
    fabrics = FabricFactory()
    dataset = _d1()
    csv = dataset.csv_text()
    scale = dataset.virtual_csv_bytes() / len(csv.encode())
    copy_times: Dict[int, float] = {}
    for parts in TAB4_SPLITS:
        fabric = fabrics()
        session = fabric.vertica.db.connect()
        session.execute(dataset.create_table_sql("bulk"))
        session.close()
        copy_times[parts] = parallel_copy(
            fabric.vertica, "bulk", split_csv(csv, parts), scale_factor=scale
        )
    fabric = fabrics()
    s2v_best = fabric.s2v_save(_d1(), "bulk2", 128)
    best_split = min(copy_times, key=copy_times.get)
    copy_best = copy_times[best_split]
    report.add("S2V", 252.0, s2v_best, "128 partitions")
    report.add("COPY", 238.0, copy_best, f"{best_split} file parts")
    for parts in TAB4_SPLITS:
        report.add(f"  COPY {parts} parts", None, copy_times[parts], "")
    report.check("S2V within 25% of native COPY (paper: ~6% slower)",
                 abs(s2v_best - copy_best) / copy_best < 0.25)
    report.check("COPY benefits from multiple splits (4 parts > best)",
                 copy_times[4] >= copy_best)
    report.measured = {"s2v": s2v_best, "copy": copy_times}
    fabrics.attach(report)
    return report


# ----------------------------------------------------------------- ablations
def run_ablation_locality() -> ExperimentReport:
    """Ablation: locality-aware hash-ring queries vs single-host ranges."""
    report = ExperimentReport(
        "ablation_locality",
        "Intra-Vertica shuffle: hash-ring V2S vs JDBC value ranges",
    )
    report.set_columns(["method", "time (s)", "internal GB", "external GB"])
    fabrics = FabricFactory()
    dataset = make_d1_with_int_column(real_rows=D1_REAL_ROWS)
    fabric = fabrics()
    fabric.populate(dataset, "d1int")
    v2s_time, __ = fabric.v2s_load("d1int", 32, dataset.scale)
    v2s_internal = fabric.vertica.internal_bytes() / 1e9
    v2s_external = fabric.vertica.external_bytes() / 1e9
    report.add("V2S hash-ring", v2s_time, v2s_internal, v2s_external)
    fabric = fabrics()
    fabric.populate(dataset, "d1int")
    jdbc_time, __ = fabric.jdbc_load(
        "d1int", 32, dataset.scale, partition_column="ikey", lower=0, upper=100
    )
    jdbc_internal = fabric.vertica.internal_bytes() / 1e9
    jdbc_external = fabric.vertica.external_bytes() / 1e9
    report.add("JDBC value ranges", jdbc_time, jdbc_internal, jdbc_external)
    report.check("V2S induces zero intra-Vertica traffic", v2s_internal == 0.0)
    report.check("JDBC shuffles most of the table internally (>= 50% of data)",
                 jdbc_internal > 0.5 * v2s_external)
    report.measured = {"v2s": (v2s_time, v2s_internal),
                       "jdbc": (jdbc_time, jdbc_internal)}
    fabrics.attach(report)
    return report


def run_ablation_prehash() -> ExperimentReport:
    """Ablation: §5 future work — pre-hashed S2V partitioning."""
    report = ExperimentReport(
        "ablation_prehash", "S2V with and without pre-hashed partitioning"
    )
    report.set_columns(["mode", "time (s)", "internal GB"])
    fabrics = FabricFactory()
    fabric = fabrics()
    plain = fabric.s2v_save(_d1(), "dest", 128)
    plain_internal = fabric.vertica.internal_bytes() / 1e9
    report.add("default", plain, plain_internal)
    fabric = fabrics()
    prehashed = fabric.s2v_save(_d1(), "dest", 128, prehash_partitioning=True)
    prehash_internal = fabric.vertica.internal_bytes() / 1e9
    report.add("prehash_partitioning", prehashed, prehash_internal)
    report.check("prehash eliminates intra-Vertica traffic",
                 prehash_internal == 0.0 and plain_internal > 0.0)
    # At these sizes the benefit is the freed internal network, not
    # end-to-end time (small-sample bucket skew costs a few percent).
    report.check("prehash within 15% of default end-to-end",
                 prehashed <= plain * 1.15)
    report.measured = {"plain": (plain, plain_internal),
                       "prehash": (prehashed, prehash_internal)}
    fabrics.attach(report)
    return report


def run_ablation_aggpushdown() -> ExperimentReport:
    """Ablation: aggregate pushdown vs driver-side aggregation.

    The same ``group_by("ikey").agg(...)`` over D1+int, once compiled
    into per-hash-range partial GROUP BY queries inside Vertica and once
    forced down the driver-side fallback (collect all raw rows, then
    aggregate in Spark).  The wire carries one partial row per group per
    range instead of the whole table.
    """
    from repro import telemetry as _telemetry

    report = ExperimentReport(
        "ablation_aggpushdown",
        "group_by().agg(): per-range partial GROUP BY vs driver-side",
    )
    report.set_columns(["mode", "time (s)", "rows over wire", "external GB"])
    fabrics = FabricFactory()
    dataset = make_d1_with_int_column(real_rows=D1_REAL_ROWS)
    aggregates = [("*", "count"), ("c000", "sum"), ("c001", "avg"),
                  ("c002", "min"), ("c003", "max")]
    measured: Dict[str, Tuple[float, float, float]] = {}
    groups: Dict[str, int] = {}
    for label, enabled in (("pushdown", True), ("driver-side", False)):
        fabric = fabrics()
        fabric.populate(dataset, "d1int")
        elapsed, groups[label] = fabric.v2s_aggregate(
            "d1int", 32, dataset.scale, ["ikey"], aggregates,
            agg_pushdown=enabled,
        )
        wire_rows = _telemetry.counter(
            "v2s.agg_pushdown.partial_rows" if enabled else "v2s.rows_fetched"
        ).value
        external = fabric.vertica.external_bytes() / 1e9
        report.add(label, elapsed, int(wire_rows), external)
        measured[label] = (elapsed, wire_rows, external)
    push_time, push_rows, push_gb = measured["pushdown"]
    base_time, base_rows, base_gb = measured["driver-side"]
    report.note(
        "both modes compute identical group rows; pushdown ships partial "
        "aggregates per hash range and merges them driver-side"
    )
    report.check("both modes produce the same number of groups",
                 groups["pushdown"] == groups["driver-side"])
    report.check("pushdown ships fewer rows over the wire",
                 push_rows < base_rows)
    report.check("pushdown moves <1% of the baseline's external bytes",
                 push_gb < 0.01 * base_gb)
    report.check("pushdown is >5x faster end-to-end",
                 push_time * 5 < base_time)
    report.measured = {"pushdown": measured["pushdown"],
                       "driver_side": measured["driver-side"]}
    fabrics.attach(report)
    return report


def run_ablation_avro() -> ExperimentReport:
    """Ablation: Avro deflate vs uncompressed on compressible data (D2)."""
    report = ExperimentReport(
        "ablation_avro", "S2V Avro codec: deflate vs null (dataset D2)"
    )
    report.set_columns(["codec", "time (s)"])
    fabrics = FabricFactory()
    times = {}
    for codec in ("deflate", "null"):
        fabric = fabrics()
        times[codec] = fabric.s2v_save(
            make_d2(real_rows=D2_REAL_ROWS), "d2_out", 128, avro_codec=codec
        )
        report.add(codec, times[codec])
    report.check("deflate is faster on compressible text",
                 times["deflate"] < times["null"])
    report.measured = times
    fabrics.attach(report)
    return report


def run_ablation_twostage() -> ExperimentReport:
    """Ablation: single-stage S2V vs the §5 two-stage landing-zone design."""
    from repro.connector.twostage import save_two_stage

    report = ExperimentReport(
        "ablation_twostage", "S2V single-stage vs two-stage via a landing zone"
    )
    report.set_columns(["approach", "time (s)"])
    fabrics = FabricFactory()
    fabric = fabrics()
    single = fabric.s2v_save(_d1(), "dest", 128)
    report.add("single-stage S2V", single)
    fabric = fabrics(with_hdfs=True)
    dataset = _d1()
    df = fabric.dataframe_of(dataset, 128)
    start = fabric.env.now
    save_two_stage(
        fabric.spark, fabric.hdfs, df,
        {"db": fabric.vertica, "table": "dest", "numpartitions": 128,
         "scale_factor": dataset.scale},
    )
    two_stage = fabric.env.now - start
    report.add("two-stage (landing zone)", two_stage)
    report.note(
        "paper §5: the two-stage design requires an intermediate write of a "
        "full copy of the data and a third system, but decouples the two ends"
    )
    report.check("two-stage is slower (the extra full copy costs time)",
                 two_stage > single)
    report.check("two-stage is not catastrophically slower (< 6x)",
                 two_stage < 6 * single)
    report.measured = {"single": single, "two_stage": two_stage}
    fabrics.attach(report)
    return report
