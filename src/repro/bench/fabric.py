"""Experiment fabric: one fresh simulated testbed per measurement.

Reproduces the paper's §4.1 setup: a Vertica cluster and a Spark cluster
in a 1:2 node ratio (the default 4:8), 32-core machines, Spark given ~75%
of each machine's cores, two 1 GbE networks on the Vertica side, and the
:data:`~repro.connector.costmodel.PAPER_COST_MODEL` cost calibration.
Each measurement uses a fresh fabric so clocks and NIC byte counters
start at zero.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro import telemetry as _telemetry
from repro.baselines.hdfs_source import SimHdfsCluster
from repro.connector import PAPER_COST_MODEL, SimVerticaCluster
from repro.sim import Environment
from repro.sim.cluster import SimCluster
from repro.spark import SparkSession
from repro.workloads.datasets import Dataset, load_direct

#: Spark driver/JVM job submission latency (part of Fig 11's fixed costs)
JOB_LAUNCH_OVERHEAD = 1.2
#: per task-attempt scheduling latency
TASK_LAUNCH_OVERHEAD = 0.005


class Fabric:
    """A fresh Vertica + Spark (+ optional HDFS) testbed on one sim clock."""

    def __init__(
        self,
        num_vertica: int = 4,
        num_spark: int = 8,
        cost_model=PAPER_COST_MODEL,
        speculation: bool = False,
        with_hdfs: bool = False,
        hdfs_nodes: int = 4,
        hdfs_block_size: int = 64 * 1024 * 1024,
        hdfs_bandwidth: float = 125e6,
        hdfs_disk_bandwidth: float = 150e6,
        telemetry: bool = False,
        failover_connect: bool = False,
        rate_log_limit: Optional[int] = 65536,
        wlm: bool = False,
        session_pool_size: int = 0,
    ):
        self.env = Environment()
        # Each fabric owns the global registry for its lifetime: enabled
        # fabrics install a fresh registry bound to their clock; disabled
        # fabrics reset it so stale instruments never leak across runs.
        if telemetry:
            _telemetry.install(
                _telemetry.MetricsRegistry(enabled=True).bind(self.env)
            )
        else:
            _telemetry.reset()
        self.sim_cluster = SimCluster(self.env)
        self.vertica = SimVerticaCluster(
            env=self.env,
            sim_cluster=self.sim_cluster,
            num_nodes=num_vertica,
            cost_model=cost_model,
            failover_connect=failover_connect,
            wlm=wlm,
            session_pool_size=session_pool_size,
        )
        self.spark = SparkSession(
            env=self.env,
            cluster=self.sim_cluster,
            num_workers=num_spark,
            speculation=speculation,
            job_launch_overhead=JOB_LAUNCH_OVERHEAD,
            task_launch_overhead=TASK_LAUNCH_OVERHEAD,
        )
        self.hdfs: Optional[SimHdfsCluster] = None
        if with_hdfs:
            self.hdfs = SimHdfsCluster(
                self.env,
                self.sim_cluster,
                num_nodes=hdfs_nodes,
                block_size=hdfs_block_size,
                bandwidth=hdfs_bandwidth,
                disk_bandwidth=hdfs_disk_bandwidth,
            )
        # Bound every link's rate log when telemetry records it: long soak
        # runs otherwise grow the piecewise-rate history without limit.
        if telemetry and rate_log_limit:
            for link in self.all_links().values():
                link.rate_log_limit = rate_log_limit
        self.chaos = None

    # -- chaos ------------------------------------------------------------------
    def all_links(self) -> Dict[str, "Link"]:  # noqa: F821
        """Every fair-share link in the fabric, by unique name."""
        links = {}
        for node in self.sim_cluster.nodes.values():
            for nic in node.nics.values():
                links[nic.tx.name] = nic.tx
                links[nic.rx.name] = nic.rx
        for link in self.vertica.ingest_links.values():
            links[link.name] = link
        return links

    def attach_chaos(self, schedule) -> "ChaosController":  # noqa: F821
        """Install a chaos schedule over this fabric; returns the controller.

        Arms every timed action on the fabric's clock and hooks the task
        scheduler and the JDBC bridge.  Call before running the workload.
        """
        from repro.chaos import ChaosController

        controller = ChaosController(self.env, schedule)
        controller.install(
            scheduler=self.spark.scheduler,
            vertica=self.vertica,
            links=self.all_links(),
            network=self.sim_cluster.network,
        )
        self.chaos = controller
        return controller

    def metrics_snapshot(self, trace_buckets: int = 60):
        """Freeze the telemetry recorded on this fabric so far.

        Returns an empty snapshot when the fabric was built with
        ``telemetry=False``.  When enabled, each Vertica node's external
        NIC transmit rate-log is folded in as a bucketed
        :class:`~repro.sim.UsageTrace`, so counters and utilisation series
        share the snapshot's one reporting path.
        """
        registry = _telemetry.get_registry()
        snapshot = registry.snapshot()
        if registry.enabled and self.env.now > 0:
            from repro.sim.trace import UsageTrace

            nic_name = self.vertica.cost_model.external_nic
            step = self.env.now / trace_buckets
            for node_name, node in sorted(self.vertica.sim_nodes.items()):
                link = node.nics[nic_name].tx
                snapshot.traces.append(
                    UsageTrace.from_log(
                        f"{node_name}.{nic_name}.tx_bytes_per_sec",
                        link.rate_log,
                        0.0,
                        self.env.now,
                        step,
                    )
                )
        return snapshot

    # -- setup helpers (uncharged) ------------------------------------------------
    def populate(self, dataset: Dataset, table: str) -> None:
        load_direct(self.vertica, dataset, table)

    def dataframe_of(self, dataset: Dataset, num_partitions: int):
        return self.spark.create_dataframe(
            dataset.rows, dataset.schema, num_partitions=num_partitions
        )

    # -- measured operations ----------------------------------------------------
    def v2s_load(
        self,
        table: str,
        partitions: int,
        scale: float,
        filters: Sequence = (),
        columns: Optional[Sequence[str]] = None,
        **options,
    ) -> Tuple[float, int]:
        """Time a V2S load; returns (elapsed seconds, rows loaded)."""
        opts = {
            "db": self.vertica,
            "table": table,
            "numpartitions": partitions,
            "scale_factor": scale,
        }
        opts.update(options)
        df = self.spark.read.format("vertica").options(opts).load()
        for pushdown in filters:
            df = df.filter(pushdown)
        if columns:
            df = df.select(*columns)
        start = self.env.now
        rows = df.collect()
        return self.env.now - start, len(rows)

    def v2s_aggregate(
        self,
        table: str,
        partitions: int,
        scale: float,
        keys: Sequence[str],
        aggregates: Sequence[Tuple[str, str]],
        agg_pushdown: bool = True,
    ) -> Tuple[float, int]:
        """Time a V2S ``group_by().agg()``; returns (seconds, groups).

        With ``agg_pushdown=False`` the planner falls back to the
        driver-side path (collect every raw row, aggregate in Spark) —
        the ablation baseline.
        """
        df = self.spark.read.format("vertica").options(
            db=self.vertica,
            table=table,
            numpartitions=partitions,
            scale_factor=scale,
            agg_pushdown=agg_pushdown,
        ).load()
        start = self.env.now
        rows = df.group_by(*keys).agg(*aggregates).collect()
        return self.env.now - start, len(rows)

    def s2v_save(
        self,
        dataset: Dataset,
        table: str,
        partitions: int,
        mode: str = "overwrite",
        source_partitions: Optional[int] = None,
        **options,
    ) -> float:
        """Time an S2V save of a dataset's DataFrame; returns seconds."""
        df = self.dataframe_of(dataset, source_partitions or partitions)
        opts = {
            "db": self.vertica,
            "table": table,
            "numpartitions": partitions,
            "scale_factor": dataset.scale,
        }
        opts.update(options)
        start = self.env.now
        df.write.format("vertica").options(opts).mode(mode).save()
        return self.env.now - start

    def jdbc_load(
        self,
        table: str,
        partitions: int,
        scale: float,
        partition_column: str = "",
        lower: Optional[int] = None,
        upper: Optional[int] = None,
        filters: Sequence = (),
    ) -> Tuple[float, int]:
        options: Dict = {
            "db": self.vertica,
            "table": table,
            "numpartitions": partitions,
            "scale_factor": scale,
        }
        if partition_column:
            options.update(
                partitioncolumn=partition_column, lowerbound=lower, upperbound=upper
            )
        df = self.spark.read.format("jdbc").options(options).load()
        for pushdown in filters:
            df = df.filter(pushdown)
        start = self.env.now
        rows = df.collect()
        return self.env.now - start, len(rows)

    def jdbc_save(self, dataset: Dataset, table: str, partitions: int) -> float:
        df = self.dataframe_of(dataset, partitions)
        start = self.env.now
        df.write.format("jdbc").options(
            db=self.vertica,
            table=table,
            numpartitions=partitions,
            scale_factor=dataset.scale,
        ).mode("overwrite").save()
        return self.env.now - start

    def hdfs_write(self, dataset: Dataset, path: str, partitions: int) -> float:
        assert self.hdfs is not None, "fabric built without HDFS"
        df = self.dataframe_of(dataset, partitions)
        start = self.env.now
        df.write.format("hdfs").options(
            fs=self.hdfs, path=path, scale_factor=dataset.scale
        ).mode("overwrite").save()
        return self.env.now - start

    def hdfs_read(self, path: str, scale: float) -> Tuple[float, int]:
        assert self.hdfs is not None, "fabric built without HDFS"
        df = self.spark.read.format("hdfs").options(
            fs=self.hdfs, path=path, scale_factor=scale
        ).load()
        start = self.env.now
        rows = df.collect()
        return self.env.now - start, len(rows)
