"""Resumable experiment-grid harness with a persisted perf trajectory.

The paper's evidence is a parameter grid — Figures 6-12 sweep partitions
× cluster size × data scale × transport — so the harness makes grids a
first-class object instead of ad-hoc loops inside benchmark scripts:

- a :class:`ParameterGrid` declares the axes (cluster shape, partitions,
  transport, ...); its cross product is the set of *cells*;
- a :class:`ResultsStore` persists one record per cell with a status
  (``PENDING/RUNNING/DONE/FAILED``) into an append-only JSONL journal, so
  an interrupted sweep **resumes** instead of restarting — and publishes
  the finished trajectory into the repro's own Vertica tables
  (``bench_results``, written via the S2V connector, read back via V2S:
  the measurement store dogfoods the system under measurement);
- a :class:`GridRunner` executes the pending cells of a grid through one
  area's cell runner, journaling begin/done/fail around each;
- each area emits a schema-versioned ``BENCH_<area>.json`` artifact
  (routed through :class:`~repro.bench.report.ExperimentReport`'s JSON
  sidecar) carrying the cost-model fingerprint plus per-cell sim and
  wall seconds;
- :func:`compare_artifacts` is the CI perf gate: a fresh artifact is
  compared against the committed baseline with tolerance bands, and any
  regression (or stale grid/cost-model fingerprint) fails the job.

Command line::

    python -m repro.bench.grid                  # smoke grid, all areas
    python -m repro.bench.grid fig06 staging    # selected areas
    python -m repro.bench.grid --full           # the full (large) grids
    python -m repro.bench.grid --gate           # compare vs baselines
    python -m repro.bench.grid --list           # show areas and axes
    python -m repro.bench.grid --trajectory     # render the perf history

Interrupt a sweep at any point and re-run the same command: completed
cells are skipped, cells that were mid-flight are reconciled back to
PENDING and re-run.  ``--fresh`` discards the journal and restarts.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import telemetry
from repro.bench.fabric import Fabric
from repro.bench.report import (
    REPORT_SCHEMA_VERSION,
    ExperimentReport,
    append_jsonl,
    config_fingerprint,
)
from repro.connector.costmodel import NULL_COST_MODEL, PAPER_COST_MODEL
from repro.spark.row import StructField, StructType
from repro.vertica import VerticaDatabase
from repro.workloads.datasets import make_d1, make_d1_with_int_column

# ------------------------------------------------------------------ statuses
PENDING = "PENDING"
RUNNING = "RUNNING"
DONE = "DONE"
FAILED = "FAILED"

#: the Vertica table the results store publishes finished cells into
RESULTS_TABLE = "bench_results"
RESULTS_SCHEMA = StructType([
    StructField("area", "string"),
    StructField("cell_id", "string"),
    StructField("status", "string"),
    StructField("attempts", "long"),
    StructField("sim_seconds", "double"),
    StructField("wall_seconds", "double"),
])


class GridError(Exception):
    """Harness-level failure (mismatched journal, malformed artifact)."""


class GridCellError(Exception):
    """A cell's measurement produced an invalid result."""


def cost_model_fingerprint(cost_model=PAPER_COST_MODEL) -> str:
    """Digest of every cost-model knob; baselines are only comparable
    against runs calibrated identically."""
    return config_fingerprint(vars(cost_model))


# --------------------------------------------------------------------- grids
class ParameterGrid:
    """A named cross product of axes; iteration order is deterministic."""

    def __init__(self, area: str, axes: Mapping[str, Sequence[Any]]):
        if not axes:
            raise GridError(f"grid {area!r} declares no axes")
        self.area = area
        self.axes: Dict[str, Tuple[Any, ...]] = {
            name: tuple(values) for name, values in axes.items()
        }
        for name, values in self.axes.items():
            if not values:
                raise GridError(f"grid {area!r} axis {name!r} is empty")

    def cells(self) -> List[Dict[str, Any]]:
        """Every cell's parameters, in row-major axis order."""
        out: List[Dict[str, Any]] = [{}]
        for name, values in self.axes.items():
            out = [dict(cell, **{name: v}) for cell in out for v in values]
        return out

    def cell_id(self, params: Mapping[str, Any]) -> str:
        return ",".join(f"{name}={params[name]}" for name in self.axes)

    def fingerprint(self) -> str:
        return config_fingerprint({"area": self.area, "axes": self.axes})

    def __len__(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n


# ------------------------------------------------------------- results store
class ResultsStore:
    """One grid's per-cell records, journaled for resume.

    The journal is append-only JSONL: a ``grid`` header pins the axes
    fingerprint, then ``begin``/``done``/``fail`` events per cell.
    :meth:`load` folds the events into the latest state; cells left
    ``RUNNING`` by a killed process are reconciled back to ``PENDING``
    (their attempt count survives, so flaky cells are visible).
    """

    def __init__(self, path: str, grid: ParameterGrid):
        self.path = path
        self.grid = grid
        self._records: Dict[str, Dict[str, Any]] = {}
        #: cells found mid-flight on load and reset to PENDING
        self.reconciled: List[str] = []
        self.load()

    # -- journal replay ---------------------------------------------------------
    def load(self) -> None:
        self._records = {
            self.grid.cell_id(params): {
                "cell_id": self.grid.cell_id(params),
                "params": dict(params),
                "status": PENDING,
                "attempts": 0,
                "sim_seconds": None,
                "wall_seconds": None,
                "metrics": {},
                "error": None,
            }
            for params in self.grid.cells()
        }
        self.reconciled = []
        if not os.path.exists(self.path):
            return
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                self._apply(json.loads(line))
        for record in self._records.values():
            if record["status"] == RUNNING:
                record["status"] = PENDING
                self.reconciled.append(record["cell_id"])

    def _apply(self, event: Dict[str, Any]) -> None:
        kind = event.get("event")
        if kind == "grid":
            if event.get("fingerprint") != self.grid.fingerprint():
                raise GridError(
                    f"journal {self.path} was written for a different grid "
                    f"(fingerprint {event.get('fingerprint')!r} != "
                    f"{self.grid.fingerprint()!r}); re-run with --fresh"
                )
            return
        record = self._records.get(event.get("cell_id", ""))
        if record is None:  # a cell the current grid no longer declares
            return
        if kind == "begin":
            record["status"] = RUNNING
            record["attempts"] += 1
        elif kind == "done":
            record["status"] = DONE
            record["sim_seconds"] = event.get("sim_seconds")
            record["wall_seconds"] = event.get("wall_seconds")
            record["metrics"] = event.get("metrics", {})
            record["error"] = None
        elif kind == "fail":
            record["status"] = FAILED
            record["wall_seconds"] = event.get("wall_seconds")
            record["error"] = event.get("error")

    # -- event writers ------------------------------------------------------------
    def _append(self, event: Dict[str, Any]) -> None:
        if not os.path.exists(self.path):
            append_jsonl(self.path, {
                "event": "grid",
                "area": self.grid.area,
                "axes": self.grid.axes,
                "fingerprint": self.grid.fingerprint(),
            })
        append_jsonl(self.path, event)
        self._apply(event)

    def begin(self, cell_id: str) -> None:
        self._append({
            "event": "begin",
            "cell_id": cell_id,
            "params": self._records[cell_id]["params"],
            "at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        })

    def complete(self, cell_id: str, metrics: Dict[str, Any],
                 wall_seconds: float) -> None:
        metrics = dict(metrics)
        sim = metrics.pop("sim_seconds", None)
        self._append({
            "event": "done",
            "cell_id": cell_id,
            "sim_seconds": sim,
            "wall_seconds": round(wall_seconds, 4),
            "metrics": metrics,
        })

    def fail(self, cell_id: str, error: str, wall_seconds: float) -> None:
        self._append({
            "event": "fail",
            "cell_id": cell_id,
            "error": error,
            "wall_seconds": round(wall_seconds, 4),
        })

    # -- accessors ----------------------------------------------------------------
    def record(self, cell_id: str) -> Dict[str, Any]:
        return self._records[cell_id]

    def records(self) -> List[Dict[str, Any]]:
        """All cell records, in grid order."""
        return [self._records[self.grid.cell_id(p)] for p in self.grid.cells()]

    def counts(self) -> Dict[str, int]:
        out = {PENDING: 0, RUNNING: 0, DONE: 0, FAILED: 0}
        for record in self._records.values():
            out[record["status"]] += 1
        return out

    def discard(self) -> None:
        if os.path.exists(self.path):
            os.remove(self.path)
        self.load()


# -------------------------------------------------------- Vertica dogfooding
def publish_results(stores: Sequence[ResultsStore],
                    fabric: Optional[Fabric] = None) -> Tuple[Fabric, int]:
    """Persist every finished cell into the repro's own Vertica tables.

    Creates ``bench_results`` (one CREATE TABLE through the engine) and
    appends one row per DONE/FAILED cell **via the S2V connector** — the
    store's durable query surface is the system under measurement.
    Returns the fabric and the number of rows written.
    """
    fabric = fabric or Fabric(num_vertica=2, num_spark=2,
                              cost_model=NULL_COST_MODEL)
    session = fabric.vertica.db.connect()
    try:
        exists = session.execute(
            "SELECT COUNT(*) FROM v_catalog.tables "
            f"WHERE table_name = '{RESULTS_TABLE.upper()}'"
        ).scalar() > 0
        if not exists:
            session.execute(RESULTS_SCHEMA.create_table_sql(
                RESULTS_TABLE, segmented_by=["cell_id"], varchar_length=500,
            ))
    finally:
        session.close()
    rows = []
    for store in stores:
        for record in store.records():
            if record["status"] not in (DONE, FAILED):
                continue
            rows.append((
                store.grid.area,
                record["cell_id"],
                record["status"],
                record["attempts"],
                float(record["sim_seconds"] if record["sim_seconds"]
                      is not None else -1.0),
                float(record["wall_seconds"] if record["wall_seconds"]
                      is not None else -1.0),
            ))
    if not rows:
        return fabric, 0
    df = fabric.spark.create_dataframe(rows, RESULTS_SCHEMA, num_partitions=2)
    df.write.format("vertica").options(
        db=fabric.vertica, table=RESULTS_TABLE, numpartitions=2,
        scale_factor=1.0,
    ).mode("append").save()
    return fabric, len(rows)


def read_results(fabric: Fabric) -> List[Tuple]:
    """Read the published trajectory back through the V2S connector."""
    df = fabric.spark.read.format("vertica").options(
        db=fabric.vertica, table=RESULTS_TABLE, numpartitions=2,
        scale_factor=1.0,
    ).load()
    return df.collect()


# -------------------------------------------------------------------- runner
class GridRunner:
    """Executes a grid's pending cells through one cell runner."""

    def __init__(self, grid: ParameterGrid, runner: Callable[[Dict[str, Any]],
                 Dict[str, Any]], store: ResultsStore,
                 log: Callable[[str], None] = print):
        self.grid = grid
        self.runner = runner
        self.store = store
        self.log = log

    def run(self, resume: bool = True) -> Dict[str, int]:
        """Run every non-DONE cell; returns run/skipped/failed counts.

        With ``resume`` (the default) DONE cells are skipped and FAILED
        cells are retried; without it the journal is discarded first.
        """
        if not resume:
            self.store.discard()
        if self.store.reconciled:
            self.log(
                f"[{self.grid.area}] reconciled {len(self.store.reconciled)} "
                f"interrupted cell(s) back to PENDING"
            )
        summary = {"run": 0, "skipped": 0, "failed": 0,
                   "reconciled": len(self.store.reconciled)}
        for params in self.grid.cells():
            cell_id = self.grid.cell_id(params)
            record = self.store.record(cell_id)
            if record["status"] == DONE:
                summary["skipped"] += 1
                continue
            self.store.begin(cell_id)
            started = time.perf_counter()
            try:
                metrics = self.runner(dict(params))
            except KeyboardInterrupt:
                raise  # journal keeps the begin event; next run reconciles
            except Exception as exc:  # noqa: BLE001 - journaled, not hidden
                wall = time.perf_counter() - started
                self.store.fail(cell_id, repr(exc), wall)
                summary["failed"] += 1
                self.log(f"[{self.grid.area}] FAILED {cell_id}: {exc!r}")
                continue
            wall = time.perf_counter() - started
            self.store.complete(cell_id, metrics, wall)
            summary["run"] += 1
            sim = metrics.get("sim_seconds")
            shown = "-" if sim is None else f"{sim:.1f}s sim"
            self.log(f"[{self.grid.area}] DONE {cell_id} ({shown}, "
                     f"{wall:.2f}s wall)")
        return summary


# --------------------------------------------------------------------- areas
class BenchArea:
    """One benchmark area: a grid, a cell runner, checks and a gate policy."""

    def __init__(self, name: str, title: str,
                 axes: Mapping[str, Sequence[Any]],
                 smoke_axes: Mapping[str, Sequence[Any]],
                 runner: Callable[[Dict[str, Any], Dict[str, Any]],
                                  Dict[str, Any]],
                 config: Optional[Dict[str, Any]] = None,
                 checks: Optional[Callable[[List[Dict[str, Any]]],
                                           List[Tuple[str, bool]]]] = None,
                 gate: Optional[Dict[str, Any]] = None):
        self.name = name
        self.title = title
        self.full_axes = dict(axes)
        self.smoke_axes = dict(smoke_axes)
        self.runner = runner
        self.config = dict(config or {})
        self.checks = checks or (lambda cells: [])
        #: gate policy copied into the artifact; the CI gate reads it from
        #: the *baseline*, so loosening a band requires a baseline commit
        self.gate = dict(gate or {})

    def grid(self, smoke: bool = True) -> ParameterGrid:
        return ParameterGrid(self.name,
                             self.smoke_axes if smoke else self.full_axes)

    def run_cell(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return self.runner(params, self.config)


# -- fig06: the parallelism bowl ------------------------------------------------
def _run_fig06_cell(params: Dict[str, Any],
                    config: Dict[str, Any]) -> Dict[str, Any]:
    fabric = Fabric()
    dataset = make_d1(real_rows=config["real_rows"])
    if params["direction"] == "v2s":
        fabric.populate(dataset, "d1")
        elapsed, rows = fabric.v2s_load(
            "d1", params["partitions"], dataset.scale
        )
        if rows != config["real_rows"]:
            raise GridCellError(f"V2S returned {rows} rows, "
                                f"wanted {config['real_rows']}")
    else:
        elapsed = fabric.s2v_save(dataset, "d1_out", params["partitions"])
    return {"sim_seconds": round(elapsed, 3)}


def _fig06_checks(cells: List[Dict[str, Any]]) -> List[Tuple[str, bool]]:
    done = [c for c in cells if c["status"] == DONE]
    times = {(c["params"]["direction"], c["params"]["partitions"]):
             c["sim_seconds"] for c in done}
    v2s = {p: t for (d, p), t in times.items() if d == "v2s"}
    s2v = {p: t for (d, p), t in times.items() if d == "s2v"}
    checks: List[Tuple[str, bool]] = [
        ("all cells DONE", len(done) == len(cells)),
    ]
    if v2s and s2v:
        checks += [
            ("bowl: V2S @4 partitions slower than its best",
             4 in v2s and v2s[4] > min(v2s.values())),
            ("bowl: S2V @4 partitions slower than its best",
             4 in s2v and s2v[4] > min(s2v.values())),
            ("S2V best occurs at high parallelism (>= 64)",
             min(s2v, key=s2v.get) >= 64),
            ("S2V best is faster than V2S best",
             min(s2v.values()) < min(v2s.values())),
        ]
    return checks


# -- scan throughput: plan pipeline vs the legacy floor --------------------------
SCAN_QUERIES = {
    "full_scan": "SELECT id, grp, v, name FROM big",
    "filtered_scan": "SELECT id, v FROM big WHERE v > 50.0",
    "grouped_agg": (
        "SELECT grp, COUNT(*), SUM(v), MIN(v), MAX(v) FROM big GROUP BY grp"
    ),
}


def load_scan_table(session, rows: int, chunk: int = 2_000) -> None:
    """Create and populate the scan bench's ``big`` table."""
    session.execute(
        "CREATE TABLE big (id INTEGER, grp INTEGER, v FLOAT, "
        "name VARCHAR(20)) SEGMENTED BY HASH(id) ALL NODES"
    )
    for start in range(0, rows, chunk):
        values = ", ".join(
            f"({i}, {i % 37}, {float(i % 101)}, 'n{i % 50}')"
            for i in range(start, min(start + chunk, rows))
        )
        session.execute(f"INSERT INTO big VALUES {values}")


def _run_scan_cell(params: Dict[str, Any],
                   config: Dict[str, Any]) -> Dict[str, Any]:
    db = VerticaDatabase(num_nodes=config["num_nodes"])
    session = db.connect()
    load_scan_table(session, config["rows"])
    sql = SCAN_QUERIES[params["workload"]]
    best = float("inf")
    result = None
    for __ in range(config["repeats"]):
        started = time.perf_counter()
        result = session.execute(sql)
        best = min(best, time.perf_counter() - started)
    if result.cost.rows_scanned != config["rows"]:
        raise GridCellError(
            f"scanned {result.cost.rows_scanned} rows, wanted {config['rows']}"
        )
    # Wall-clock throughput is machine-dependent: recorded per cell, gated
    # only against the baseline's *floor*, never a tolerance band.
    return {"sim_seconds": None,
            "rows_per_sec": round(config["rows"] / best)}


def _scan_checks(cells: List[Dict[str, Any]]) -> List[Tuple[str, bool]]:
    done = [c for c in cells if c["status"] == DONE]
    checks: List[Tuple[str, bool]] = [
        ("all cells DONE", len(done) == len(cells)),
    ]
    for cell in done:
        rate = cell["metrics"].get("rows_per_sec", 0)
        checks.append((
            f"{cell['params']['workload']} above the 20k rows/s smoke floor",
            rate > 20_000,
        ))
    return checks


# -- staging transport vs direct JDBC --------------------------------------------
def _run_staging_cell(params: Dict[str, Any],
                      config: Dict[str, Any]) -> Dict[str, Any]:
    fabric = Fabric(with_hdfs=True)
    dataset = make_d1(config["real_rows"], config["virtual_rows"],
                      config["num_cols"], config["seed"])
    options: Dict[str, Any] = {}
    if params["transport"] == "staged":
        options = {"transport": "staging", "staging_root": "/staging",
                   "staging_fs": fabric.hdfs}
    if params["direction"] == "s2v":
        elapsed = fabric.s2v_save(dataset, "staging_bench",
                                  params["partitions"], **options)
    else:
        fabric.populate(dataset, "staging_bench")
        elapsed, rows = fabric.v2s_load(
            "staging_bench", params["partitions"], dataset.scale, **options
        )
        if rows != config["real_rows"]:
            raise GridCellError(f"V2S returned {rows} rows, "
                                f"wanted {config['real_rows']}")
    return {"sim_seconds": round(elapsed, 3)}


def _staging_checks(cells: List[Dict[str, Any]]) -> List[Tuple[str, bool]]:
    done = [c for c in cells if c["status"] == DONE]
    times = {(c["params"]["direction"], c["params"]["transport"],
              c["params"]["partitions"]): c["sim_seconds"] for c in done}
    checks: List[Tuple[str, bool]] = [
        ("all cells DONE", len(done) == len(cells)),
    ]
    gate_partitions = AREAS["staging"].config["gate_partitions"]
    for (direction, transport, partitions), staged in sorted(
            times.items(), key=lambda item: str(item[0])):
        if transport != "staged" or partitions < gate_partitions:
            continue
        direct = times.get((direction, "direct", partitions))
        if direct is None:
            continue
        checks.append((
            f"{direction} staged beats direct at {partitions} partitions",
            staged < direct,
        ))
    return checks


# -- join strategies: hash/merge vs the nested-loop floor ------------------------
def load_join_tables(session, probe_rows: int, build_rows: int,
                     colocated: bool, chunk: int = 2_000) -> None:
    """Create and populate the join bench's ``probe``/``build`` pair.

    Every probe key hits exactly one build row.  The co-located variant
    segments both tables on the join key; the other segments ``build`` on
    its payload column, so the same ring places matching rows on
    different nodes and the join must move build rows.
    """
    session.execute(
        "CREATE TABLE probe (k INTEGER, pv FLOAT) "
        "SEGMENTED BY HASH(k) ALL NODES"
    )
    seg = "k2" if colocated else "pay"
    session.execute(
        f"CREATE TABLE build (k2 INTEGER, pay INTEGER) "
        f"SEGMENTED BY HASH({seg}) ALL NODES"
    )
    for start in range(0, probe_rows, chunk):
        values = ", ".join(
            f"({i % build_rows}, {float(i % 97)})"
            for i in range(start, min(start + chunk, probe_rows))
        )
        session.execute(f"INSERT INTO probe VALUES {values}")
    for start in range(0, build_rows, chunk):
        values = ", ".join(
            f"({i}, {i + 7})"
            for i in range(start, min(start + chunk, build_rows))
        )
        session.execute(f"INSERT INTO build VALUES {values}")


def _run_join_cell(params: Dict[str, Any],
                   config: Dict[str, Any]) -> Dict[str, Any]:
    db = VerticaDatabase(num_nodes=config["num_nodes"])
    session = db.connect()
    load_join_tables(session, params["probe_rows"], params["build_rows"],
                     params["colocated"])
    session.execute("ANALYZE probe")
    session.execute("ANALYZE build")
    session.execute(f"SET JOIN_STRATEGY = '{params['strategy']}'")
    sql = "SELECT COUNT(*) FROM probe JOIN build ON k = k2"
    repeats = 1 if params["strategy"] == "nested-loop" else config["repeats"]
    best = float("inf")
    for __ in range(repeats):
        started = time.perf_counter()
        rows_out = session.execute(sql).scalar()
        best = min(best, time.perf_counter() - started)
    if rows_out != params["probe_rows"]:
        raise GridCellError(
            f"join returned {rows_out} rows, wanted {params['probe_rows']}"
        )
    profile = session.execute("PROFILE " + sql).profile
    shuffled = sum(op.stats.rows_shuffled for __, op in profile.operators())
    return {"sim_seconds": None,
            "join_seconds": round(best, 4),
            "rows_shuffled": shuffled,
            "rows_out": rows_out}


def _join_checks(cells: List[Dict[str, Any]]) -> List[Tuple[str, bool]]:
    done = [c for c in cells if c["status"] == DONE]
    checks: List[Tuple[str, bool]] = [
        ("all cells DONE", len(done) == len(cells)),
    ]
    times = {(c["params"]["strategy"], c["params"]["colocated"]):
             c["metrics"].get("join_seconds") for c in done}
    shuffles = {(c["params"]["strategy"], c["params"]["colocated"]):
                c["metrics"].get("rows_shuffled") for c in done}
    for colocated in (True, False):
        loop = times.get(("nested-loop", colocated))
        hashed = times.get(("hash", colocated))
        if loop is not None and hashed is not None:
            checks.append((
                f"hash join >=5x faster than nested loop "
                f"(colocated={colocated})",
                hashed * 5.0 <= loop,
            ))
    for strategy in ("hash", "merge"):
        if (strategy, True) in shuffles:
            checks.append((
                f"co-located {strategy} join moves 0 cross-node rows",
                shuffles[(strategy, True)] == 0,
            ))
        if (strategy, False) in shuffles:
            checks.append((
                f"non-co-located {strategy} join moves build rows",
                (shuffles[(strategy, False)] or 0) > 0,
            ))
    return checks


# -- agg: aggregate pushdown vs driver-side aggregation --------------------------
AGG_AGGREGATES = [("*", "count"), ("c000", "sum"), ("c001", "avg"),
                  ("c002", "min"), ("c003", "max")]


def _run_agg_cell(params: Dict[str, Any],
                  config: Dict[str, Any]) -> Dict[str, Any]:
    # A fresh telemetry-enabled fabric installs a fresh global registry,
    # so the wire-row counters below start at zero for this cell.
    fabric = Fabric(telemetry=True)
    dataset = make_d1_with_int_column(real_rows=config["real_rows"])
    fabric.populate(dataset, "d1int")
    pushdown = params["mode"] == "pushdown"
    elapsed, groups = fabric.v2s_aggregate(
        "d1int", config["partitions"], dataset.scale, ["ikey"],
        AGG_AGGREGATES, agg_pushdown=pushdown,
    )
    wire_rows = telemetry.counter(
        "v2s.agg_pushdown.partial_rows" if pushdown else "v2s.rows_fetched"
    ).value
    return {
        "sim_seconds": round(elapsed, 3),
        "groups": int(groups),
        "wire_rows": int(wire_rows),
        "external_gb": round(fabric.vertica.external_bytes() / 1e9, 6),
    }


def _agg_checks(cells: List[Dict[str, Any]]) -> List[Tuple[str, bool]]:
    done = [c for c in cells if c["status"] == DONE]
    checks: List[Tuple[str, bool]] = [
        ("all cells DONE", len(done) == len(cells)),
    ]
    by_mode = {c["params"]["mode"]: c for c in done}
    push = by_mode.get("pushdown")
    base = by_mode.get("driver")
    if push is None or base is None:
        return checks
    checks += [
        ("both modes produce the same number of groups",
         push["metrics"].get("groups") == base["metrics"].get("groups")),
        ("pushdown ships fewer rows over the wire",
         push["metrics"].get("wire_rows", 1 << 62)
         < base["metrics"].get("wire_rows", 0)),
        ("pushdown moves <1% of driver-side external bytes",
         push["metrics"].get("external_gb", 1e9)
         < 0.01 * base["metrics"].get("external_gb", 0.0)),
        ("pushdown is >5x faster end-to-end (sim)",
         push["sim_seconds"] * 5 < base["sim_seconds"]),
    ]
    return checks


# -- join_reorder: adaptive star joins vs the frozen binder order ----------------
STAR_WIDE_KEYS = ("ka", "kb", "kc")


def star_sizes(fact_rows: int) -> Dict[str, int]:
    """Derived star-schema sizes for one ``fact_rows`` scale.

    The fact is ANALYZEd at 1% of its final size, so its estimate is two
    orders of magnitude stale; the selective dim keeps 5% of fact rows;
    the wide dims are sized inside the swap window — larger than the
    (stale) intermediate estimate but smaller than its observed size —
    so the binder-order plan builds on the wrong side and the adaptive
    run records a swap.
    """
    return {
        "analyzed_rows": max(fact_rows // 100, 10),
        "wide_rows": max(fact_rows // 100, 10),
        "sel_rows": max(fact_rows // 10, 20),
        "sel_keep": max(fact_rows // 200, 1),
    }


def load_star_tables(session, fact_rows: int, relations: int,
                     chunk: int = 2_000) -> Dict[str, int]:
    """Create/populate the star bench's fact, wide dims and selective dim.

    Every fact row matches exactly one row in each wide dim (joins there
    never shrink the stream); the selective dim sits *last* in FROM
    order and its pushed-down predicate keeps ``sel_keep`` of
    ``sel_rows`` keys.  Only the fact's statistics are stale.
    """
    sizes = star_sizes(fact_rows)
    session.execute(
        "CREATE TABLE sfact (ka INTEGER, kb INTEGER, kc INTEGER, "
        "kd INTEGER, fv FLOAT) SEGMENTED BY HASH(ka) ALL NODES"
    )
    wide = sizes["wide_rows"]
    for idx in range(relations - 2):
        session.execute(
            f"CREATE TABLE dwide{idx} (w{idx}_id INTEGER, w{idx}_pay INTEGER) "
            f"SEGMENTED BY HASH(w{idx}_id) ALL NODES"
        )
        for start in range(0, wide, chunk):
            values = ", ".join(
                f"({i}, {i + idx})" for i in range(start, min(start + chunk, wide))
            )
            session.execute(f"INSERT INTO dwide{idx} VALUES {values}")
    sel = sizes["sel_rows"]
    session.execute(
        "CREATE TABLE dsel (sel_id INTEGER, sel_pay INTEGER) "
        "SEGMENTED BY HASH(sel_id) ALL NODES"
    )
    for start in range(0, sel, chunk):
        values = ", ".join(
            f"({i}, {i})" for i in range(start, min(start + chunk, sel))
        )
        session.execute(f"INSERT INTO dsel VALUES {values}")

    def fact_values(start, stop):
        return ", ".join(
            f"({i % wide}, {i % wide}, {i % wide}, {i % sel}, {float(i % 89)})"
            for i in range(start, stop)
        )

    analyzed = sizes["analyzed_rows"]
    for start in range(0, analyzed, chunk):
        session.execute("INSERT INTO sfact VALUES "
                        + fact_values(start, min(start + chunk, analyzed)))
    for idx in range(relations - 2):
        session.execute(f"ANALYZE dwide{idx}")
    session.execute("ANALYZE dsel")
    session.execute("ANALYZE sfact")  # deliberately before the bulk load
    for start in range(analyzed, fact_rows, chunk):
        session.execute("INSERT INTO sfact VALUES "
                        + fact_values(start, min(start + chunk, fact_rows)))
    return sizes


def star_join_sql(relations: int, sizes: Dict[str, int]) -> Tuple[str, int]:
    """The ``relations``-way star COUNT(*) and its expected value."""
    joins = [
        f"JOIN dwide{idx} ON {STAR_WIDE_KEYS[idx]} = w{idx}_id"
        for idx in range(relations - 2)
    ]
    joins.append("JOIN dsel ON kd = sel_id")
    sql = ("SELECT COUNT(*) FROM sfact " + " ".join(joins)
           + f" WHERE sel_pay < {sizes['sel_keep']}")
    return sql, sizes["expected_rows"]


def _run_join_reorder_cell(params: Dict[str, Any],
                           config: Dict[str, Any]) -> Dict[str, Any]:
    db = VerticaDatabase(num_nodes=config["num_nodes"])
    session = db.connect()
    fact_rows = params["fact_rows"]
    sizes = load_star_tables(session, fact_rows, params["relations"])
    sizes["expected_rows"] = sum(
        1 for i in range(fact_rows) if i % sizes["sel_rows"] < sizes["sel_keep"]
    )
    sql, expected = star_join_sql(params["relations"], sizes)
    if params["mode"] == "adaptive":
        session.execute("SET JOIN_REORDER on")
        session.execute("SET ADAPTIVE_EXECUTION on")
    # Cold PROFILE first: it captures the replans triggered by the stale
    # estimates before the feedback loop corrects them for the timed runs.
    report = session.execute("PROFILE " + sql)
    replans = len(report.profile.replans)
    shuffled = sum(
        op.stats.rows_shuffled for __, op in report.profile.operators()
    )
    best = float("inf")
    rows_out = None
    for __ in range(config["repeats"]):
        started = time.perf_counter()
        rows_out = session.execute(sql).scalar()
        best = min(best, time.perf_counter() - started)
    if rows_out != expected:
        raise GridCellError(
            f"star join returned {rows_out} rows, wanted {expected}"
        )
    return {"sim_seconds": None,
            "join_seconds": round(best, 4),
            "replans": replans,
            "rows_shuffled": shuffled,
            "rows_out": rows_out}


def _join_reorder_checks(cells: List[Dict[str, Any]]
                         ) -> List[Tuple[str, bool]]:
    done = [c for c in cells if c["status"] == DONE]
    checks: List[Tuple[str, bool]] = [
        ("all cells DONE", len(done) == len(cells)),
    ]
    times = {(c["params"]["relations"], c["params"]["mode"]):
             c["metrics"].get("join_seconds") for c in done}
    replans = {(c["params"]["relations"], c["params"]["mode"]):
               c["metrics"].get("replans") for c in done}
    for relations in sorted({r for r, __ in times}):
        binder = times.get((relations, "binder"))
        adaptive = times.get((relations, "adaptive"))
        if binder is None or adaptive is None:
            continue
        if relations >= 5:
            checks.append((
                f"adaptive >=3x faster than binder order ({relations}-way)",
                adaptive * 3.0 <= binder,
            ))
        else:
            checks.append((
                f"adaptive faster than binder order ({relations}-way)",
                adaptive < binder,
            ))
    for (relations, mode), count in sorted(replans.items()):
        if mode == "adaptive":
            checks.append((
                f"adaptive {relations}-way recorded >=1 replan",
                (count or 0) >= 1,
            ))
        else:
            checks.append((
                f"binder {relations}-way recorded no replans",
                (count or 0) == 0,
            ))
    return checks


# -- serving: caching tiers under a Zipf read-mostly mix -------------------------
def _run_serving_cell(params: Dict[str, Any],
                      config: Dict[str, Any]) -> Dict[str, Any]:
    from repro.bench.concurrent_serve import run_zipf_serve

    report = run_zipf_serve(
        clients=config["clients"],
        ops=config["ops"],
        skew=params["skew"],
        read_fraction=config["read_fraction"],
        result_cache=params["result_cache"],
        seed=config["seed"],
    )
    if not report.ok:
        raise GridCellError(
            f"serving invariants failed:\n{report.report.describe()}"
        )
    return {
        "sim_seconds": round(report.elapsed, 3),
        "read_p50": round(report.read_p50, 4),
        "read_p95": round(report.read_p95, 4),
        "result_hit_rate": round(report.result_hit_rate, 3),
        "plan_hit_rate": round(report.plan_hit_rate, 3),
    }


def _serving_checks(cells: List[Dict[str, Any]]) -> List[Tuple[str, bool]]:
    done = [c for c in cells if c["status"] == DONE]
    checks: List[Tuple[str, bool]] = [
        ("all cells DONE", len(done) == len(cells)),
    ]
    p50 = {(c["params"]["skew"], c["params"]["result_cache"]):
           c["metrics"].get("read_p50") for c in done}
    hits = {(c["params"]["skew"], c["params"]["result_cache"]):
            c["metrics"].get("result_hit_rate") for c in done}
    for skew in sorted({s for s, __ in p50}):
        if skew < 1.0:
            continue
        cold = p50.get((skew, False))
        warm = p50.get((skew, True))
        if cold is None or warm is None:
            continue
        checks.append((
            f"warm read p50 >=5x lower than cold at skew={skew:g}",
            warm * 5.0 <= cold,
        ))
        checks.append((
            f"warm result-cache hit rate > 0.5 at skew={skew:g}",
            (hits.get((skew, True)) or 0.0) > 0.5,
        ))
    return checks


AREAS: Dict[str, BenchArea] = {
    "fig06": BenchArea(
        "fig06",
        "Figure 6 parallelism bowl: V2S/S2V sim seconds vs partitions",
        axes={"direction": ("v2s", "s2v"),
              "partitions": (4, 8, 16, 32, 64, 128, 256)},
        smoke_axes={"direction": ("v2s", "s2v"),
                    "partitions": (4, 32, 128)},
        runner=_run_fig06_cell,
        config={"real_rows": 400},
        checks=_fig06_checks,
        gate={"sim_tolerance": 0.15},
    ),
    "scan_throughput": BenchArea(
        "scan_throughput",
        "Plan-pipeline scan throughput vs the legacy interpreter floor",
        axes={"workload": tuple(SCAN_QUERIES)},
        smoke_axes={"workload": tuple(SCAN_QUERIES)},
        runner=_run_scan_cell,
        config={"rows": 20_000, "num_nodes": 4, "repeats": 3},
        checks=_scan_checks,
        # wall-clock metrics are machine-dependent: gate on floors only
        gate={"floors": {"rows_per_sec": 20_000}},
    ),
    "agg": BenchArea(
        "agg",
        "Aggregate pushdown ablation: per-range partial GROUP BY vs driver",
        axes={"mode": ("pushdown", "driver")},
        smoke_axes={"mode": ("pushdown", "driver")},
        runner=_run_agg_cell,
        config={"real_rows": 2000, "partitions": 32},
        checks=_agg_checks,
        gate={"sim_tolerance": 0.15},
    ),
    "join": BenchArea(
        "join",
        "Join strategies: hash/merge vs nested loop, co-located vs shuffled",
        axes={"strategy": ("nested-loop", "hash", "merge"),
              "colocated": (True, False),
              "probe_rows": (100_000,),
              "build_rows": (1_000,)},
        smoke_axes={"strategy": ("nested-loop", "hash", "merge"),
                    "colocated": (True, False),
                    "probe_rows": (4_000,),
                    "build_rows": (200,)},
        runner=_run_join_cell,
        config={"num_nodes": 4, "repeats": 3},
        checks=_join_checks,
        # wall-clock ratios are checked per run; no sim time to band
        gate={},
    ),
    "join_reorder": BenchArea(
        "join_reorder",
        "Adaptive star joins: reorder + replanning vs the frozen binder order",
        axes={"relations": (3, 5),
              "mode": ("binder", "adaptive"),
              "fact_rows": (100_000,)},
        smoke_axes={"relations": (3, 5),
                    "mode": ("binder", "adaptive"),
                    "fact_rows": (4_000,)},
        runner=_run_join_reorder_cell,
        config={"num_nodes": 4, "repeats": 3},
        checks=_join_reorder_checks,
        # wall-clock ratios are checked per run; no sim time to band
        gate={},
    ),
    "serving": BenchArea(
        "serving",
        "Zipf read-mostly serving: caching tiers' hit rate vs read latency",
        axes={"skew": (0.0, 0.6, 1.2, 1.4),
              "result_cache": (False, True)},
        smoke_axes={"skew": (1.2,),
                    "result_cache": (False, True)},
        runner=_run_serving_cell,
        config={"clients": 6, "ops": 60, "read_fraction": 0.95, "seed": 11},
        checks=_serving_checks,
        gate={"sim_tolerance": 0.15},
    ),
    "staging": BenchArea(
        "staging",
        "Staged (distributed-FS) transport vs direct JDBC, both directions",
        axes={"direction": ("s2v", "v2s"),
              "transport": ("direct", "staged"),
              "partitions": (2, 4, 8, 16)},
        smoke_axes={"direction": ("s2v", "v2s"),
                    "transport": ("direct", "staged"),
                    "partitions": (4, 8, 16)},
        runner=_run_staging_cell,
        config={"real_rows": 400, "num_cols": 10, "seed": 7,
                "virtual_rows": 16_000_000, "gate_partitions": 8},
        checks=_staging_checks,
        gate={"sim_tolerance": 0.15},
    ),
}


# ------------------------------------------------------------------ artifacts
def build_area_report(area: BenchArea, store: ResultsStore,
                      smoke: bool) -> ExperimentReport:
    """Fold a store's cells into the area's ``BENCH_<area>`` report.

    The report's JSON sidecar *is* the artifact: per-cell records ride in
    the payload next to the grid and cost-model fingerprints the CI gate
    keys on.
    """
    cells = store.records()
    report = ExperimentReport(f"BENCH_{area.name}", area.title)
    axis_names = list(store.grid.axes)
    report.set_columns(axis_names + ["status", "sim (s)", "wall (s)", "metrics"])
    total_wall = 0.0
    total_sim = 0.0
    for record in cells:
        metrics = ", ".join(
            f"{k}={v}" for k, v in sorted(record["metrics"].items())
        )
        report.add(
            *[record["params"][a] for a in axis_names],
            record["status"],
            record["sim_seconds"],
            record["wall_seconds"],
            metrics or None,
        )
        total_wall += record["wall_seconds"] or 0.0
        total_sim += record["sim_seconds"] or 0.0
    for description, ok in area.checks(cells):
        report.check(description, ok)
    report.config = dict(area.config, area=area.name, smoke=smoke)
    report.timing(wall_seconds=round(total_wall, 3),
                  sim_seconds=round(total_sim, 3))
    report.payload = {
        "area": area.name,
        "grid": {"axes": {k: list(v) for k, v in store.grid.axes.items()},
                 "fingerprint": store.grid.fingerprint()},
        "cost_model_fingerprint": cost_model_fingerprint(),
        "gate": dict(area.gate),
        "cells": cells,
    }
    return report


def artifact_path(results_dir: str, area_name: str) -> str:
    return os.path.join(results_dir, f"BENCH_{area_name}.json")


def load_artifact(path: str) -> Dict[str, Any]:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


# ----------------------------------------------------------------------- gate
def compare_artifacts(fresh: Dict[str, Any],
                      baseline: Dict[str, Any]) -> List[str]:
    """The perf gate: why a fresh artifact regressed from its baseline.

    Returns a list of human-readable failures (empty = gate passes):

    - schema / grid / cost-model fingerprints must match (a stale
      baseline is a failure, not a silent skip);
    - every baseline cell must be DONE in the fresh run;
    - sim seconds may not exceed baseline × (1 + ``sim_tolerance``) —
      sim time is deterministic, so the band is tight;
    - wall-clock metrics listed in ``gate.floors`` must stay above their
      floor (never banded: CI machines vary);
    - every check recorded in the fresh artifact must have passed.
    """
    failures: List[str] = []
    area = baseline.get("area", "?")
    if fresh.get("schema_version") != baseline.get("schema_version"):
        failures.append(
            f"{area}: artifact schema_version {fresh.get('schema_version')} "
            f"!= baseline {baseline.get('schema_version')}"
        )
        return failures
    if (fresh.get("grid", {}).get("fingerprint")
            != baseline.get("grid", {}).get("fingerprint")):
        failures.append(
            f"{area}: grid fingerprint changed — the baseline no longer "
            f"describes this grid; regenerate and commit it"
        )
        return failures
    if (fresh.get("cost_model_fingerprint")
            != baseline.get("cost_model_fingerprint")):
        failures.append(
            f"{area}: cost-model fingerprint changed — recalibrate the "
            f"baseline alongside the cost model"
        )
        return failures
    gate = baseline.get("gate", {})
    tolerance = gate.get("sim_tolerance")
    floors = gate.get("floors", {})
    fresh_cells = {c["cell_id"]: c for c in fresh.get("cells", [])}
    for base in baseline.get("cells", []):
        cell_id = base["cell_id"]
        cell = fresh_cells.get(cell_id)
        if cell is None:
            failures.append(f"{area}: cell {cell_id} missing from fresh run")
            continue
        if cell.get("status") != DONE:
            failures.append(
                f"{area}: cell {cell_id} is {cell.get('status')}, not DONE"
                + (f" ({cell.get('error')})" if cell.get("error") else "")
            )
            continue
        base_sim = base.get("sim_seconds")
        fresh_sim = cell.get("sim_seconds")
        if tolerance is not None and base_sim and fresh_sim is not None:
            limit = base_sim * (1.0 + tolerance)
            if fresh_sim > limit:
                failures.append(
                    f"{area}: cell {cell_id} regressed: {fresh_sim:.3f}s sim "
                    f"vs baseline {base_sim:.3f}s "
                    f"(+{100 * (fresh_sim / base_sim - 1):.1f}%, band "
                    f"{100 * tolerance:.0f}%)"
                )
        for metric, floor in floors.items():
            value = cell.get("metrics", {}).get(metric)
            if value is None or value < floor:
                failures.append(
                    f"{area}: cell {cell_id} metric {metric}={value} under "
                    f"the floor {floor}"
                )
    for check in fresh.get("checks", []):
        if not check.get("passed"):
            failures.append(
                f"{area}: check failed: {check.get('description')}"
            )
    return failures


def gate_areas(area_names: Sequence[str], results_dir: str,
               baseline_dir: str,
               log: Callable[[str], None] = print) -> List[str]:
    """Compare every area's fresh artifact against its committed baseline."""
    failures: List[str] = []
    for name in area_names:
        fresh_path = artifact_path(results_dir, name)
        base_path = artifact_path(baseline_dir, name)
        if not os.path.exists(base_path):
            failures.append(f"{name}: no committed baseline at {base_path}")
            continue
        if not os.path.exists(fresh_path):
            failures.append(f"{name}: no fresh artifact at {fresh_path}; "
                            f"run the grid first")
            continue
        area_failures = compare_artifacts(
            load_artifact(fresh_path), load_artifact(base_path)
        )
        status = "PASS" if not area_failures else "FAIL"
        log(f"[gate] {name}: {status} "
            f"({fresh_path} vs {base_path})")
        failures.extend(area_failures)
    return failures


# ------------------------------------------------------------ trajectory view
SPARK_GLYPHS = "▁▂▃▄▅▆▇█"

#: the perf-history journal ``python -m repro.bench`` appends to
TRAJECTORY_BASENAME = "trajectory.jsonl"

#: sparklines show at most this many trailing runs per experiment
TRAJECTORY_WINDOW = 24


def sparkline(values: Sequence[Optional[float]]) -> str:
    """Render a series as unicode block glyphs (blank for missing points)."""
    present = [v for v in values if v is not None]
    if not present:
        return ""
    low, high = min(present), max(present)
    span = high - low
    glyphs = []
    for value in values:
        if value is None:
            glyphs.append(" ")
        elif span == 0:
            glyphs.append(SPARK_GLYPHS[0])
        else:
            index = int((value - low) / span * (len(SPARK_GLYPHS) - 1))
            glyphs.append(SPARK_GLYPHS[index])
    return "".join(glyphs)


def trajectory_lines(records: Sequence[Mapping[str, Any]],
                     source: str) -> List[str]:
    """Fold trajectory records into a markdown table with sparklines."""
    by_experiment: Dict[str, List[Mapping[str, Any]]] = {}
    for record in records:
        if record.get("kind") != "experiment":
            continue
        by_experiment.setdefault(str(record.get("experiment")), []).append(record)
    lines = [
        "# Performance trajectory",
        "",
        f"Rendered from `{source}`; one row per experiment, sparkline over "
        f"the last {TRAJECTORY_WINDOW} recorded wall times (low → high).",
        "",
        "| experiment | runs | last wall (s) | best wall (s) | last sim (s) "
        "| last checks | wall trend |",
        "|---|---:|---:|---:|---:|---|---|",
    ]
    for name in sorted(by_experiment):
        runs = by_experiment[name]
        walls = [r.get("wall_seconds") for r in runs]
        present = [w for w in walls if w is not None]
        latest = runs[-1]
        sim = latest.get("sim_seconds")
        lines.append(
            "| {name} | {count} | {last} | {best} | {sim} | {checks} "
            "| `{trend}` |".format(
                name=name,
                count=len(runs),
                last=f"{walls[-1]:.2f}" if walls[-1] is not None else "-",
                best=f"{min(present):.2f}" if present else "-",
                sim=f"{sim:.1f}" if sim is not None else "-",
                checks="pass" if latest.get("checks_passed") else "FAIL",
                trend=sparkline(walls[-TRAJECTORY_WINDOW:]),
            )
        )
    if not by_experiment:
        lines.append("| (no experiment records yet) | | | | | | |")
    return lines


def render_trajectory(results_dir: str,
                      log: Callable[[str], None] = print) -> int:
    """``--trajectory``: write and print ``TRAJECTORY.md`` from the journal."""
    path = os.path.join(results_dir, TRAJECTORY_BASENAME)
    if not os.path.exists(path):
        log(f"no trajectory journal at {path}; run `python -m repro.bench` "
            f"first to record one")
        return 1
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                continue  # a torn write never blocks the report
    lines = trajectory_lines(records, path)
    out_path = os.path.join(results_dir, "TRAJECTORY.md")
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    for line in lines:
        log(line)
    log(f"\nwrote {out_path}")
    return 0


# ------------------------------------------------------------------------ CLI
def journal_path(results_dir: str, area_name: str, smoke: bool) -> str:
    flavor = "smoke" if smoke else "full"
    return os.path.join(results_dir, f"grid_{area_name}.{flavor}.jsonl")


def run_area(area: BenchArea, results_dir: str, smoke: bool = True,
             resume: bool = True,
             log: Callable[[str], None] = print) -> Tuple[ResultsStore,
                                                          ExperimentReport]:
    """Run one area's grid (resuming), then emit its BENCH artifact."""
    grid = area.grid(smoke=smoke)
    store = ResultsStore(journal_path(results_dir, area.name, smoke), grid)
    runner = GridRunner(grid, area.run_cell, store, log=log)
    summary = runner.run(resume=resume)
    log(f"[{area.name}] {summary['run']} run, {summary['skipped']} resumed "
        f"(skipped), {summary['failed']} failed of {len(grid)} cells")
    report = build_area_report(area, store, smoke=smoke)
    report.save(results_dir)
    log(f"[{area.name}] wrote {artifact_path(results_dir, area.name)}")
    return store, report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.grid",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("areas", nargs="*",
                        help=f"areas to run (default: all of "
                             f"{sorted(AREAS)})")
    parser.add_argument("--list", action="store_true",
                        help="list areas, axes and cell counts")
    parser.add_argument("--full", action="store_true",
                        help="run the full grids instead of the smoke subset")
    parser.add_argument("--fresh", action="store_true",
                        help="discard journals and restart the sweep")
    parser.add_argument("--results-dir", default="benchmarks/results")
    parser.add_argument("--baseline-dir", default="benchmarks/baselines")
    parser.add_argument("--gate", action="store_true",
                        help="compare existing artifacts against committed "
                             "baselines instead of running")
    parser.add_argument("--update-baselines", action="store_true",
                        help="after running, copy fresh artifacts into the "
                             "baseline directory")
    parser.add_argument("--no-publish", action="store_true",
                        help="skip publishing the trajectory into the "
                             "dogfood Vertica results table")
    parser.add_argument("--trajectory", action="store_true",
                        help="render the perf-history journal "
                             "(trajectory.jsonl) into TRAJECTORY.md")
    args = parser.parse_args(argv)

    if args.trajectory:
        return render_trajectory(args.results_dir)

    if args.list:
        for name, area in sorted(AREAS.items()):
            smoke = area.grid(True)
            full = area.grid(False)
            print(f"{name:18s} {area.title}")
            print(f"{'':18s} axes: {full.axes} "
                  f"({len(smoke)} smoke / {len(full)} full cells)")
        return 0

    unknown = [a for a in args.areas if a not in AREAS]
    if unknown:
        print(f"unknown areas {unknown}; known: {sorted(AREAS)}",
              file=sys.stderr)
        return 2
    selected = args.areas or sorted(AREAS)

    if args.gate:
        failures = gate_areas(selected, args.results_dir, args.baseline_dir)
        if failures:
            print("\nPERF GATE FAILURES:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"perf gate passed for {len(selected)} area(s)")
        return 0

    smoke = not args.full
    stores: List[ResultsStore] = []
    bad = False
    for name in selected:
        store, report = run_area(AREAS[name], args.results_dir, smoke=smoke,
                                 resume=not args.fresh)
        stores.append(store)
        counts = store.counts()
        if counts[FAILED] or counts[PENDING] or not report.all_checks_pass:
            bad = True
        for description in report.failed_checks():
            print(f"[{name}] CHECK FAILED: {description}", file=sys.stderr)
        if args.update_baselines:
            report.save_json(artifact_path(args.baseline_dir, name))
            print(f"[{name}] baseline updated: "
                  f"{artifact_path(args.baseline_dir, name)}")

    if not args.no_publish:
        fabric, written = publish_results(stores)
        readback = read_results(fabric)
        print(f"published {written} cell row(s) into {RESULTS_TABLE} via "
              f"S2V; V2S reads back {len(readback)} row(s)")
        if written != len(readback):
            print("dogfood store round-trip mismatch", file=sys.stderr)
            bad = True

    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
