"""Experiment reports: paper-vs-measured tables.

Every benchmark produces an :class:`ExperimentReport` that prints (and
saves) the same rows/series the paper reports, side by side with the
reproduction's measured values.  Absolute numbers are not expected to
match (the substrate is a calibrated simulator); the *shape* — who wins,
by roughly what factor, where crossovers fall — is the reproduction
target, so each report may carry explicit shape checks.
"""

from __future__ import annotations

import os
from typing import Any, List, Optional, Sequence, Tuple


class ExperimentReport:
    """One experiment's paper-vs-measured comparison."""

    def __init__(self, exp_id: str, title: str):
        self.exp_id = exp_id
        self.title = title
        self.columns: List[str] = ["case", "paper", "measured"]
        self.rows: List[Tuple] = []
        self.notes: List[str] = []
        self.checks: List[Tuple[str, bool]] = []
        #: optional telemetry attached via :meth:`attach_telemetry`
        self.telemetry: Optional["MetricsSnapshot"] = None  # noqa: F821

    def attach_telemetry(self, snapshot) -> None:
        """Attach a :class:`~repro.telemetry.MetricsSnapshot` to render
        as the report's telemetry section (merged into prior snapshots'
        counters if called repeatedly)."""
        if self.telemetry is None:
            self.telemetry = snapshot
            return
        merged = self.telemetry
        for name, value in snapshot.counters.items():
            merged.counters[name] = merged.counters.get(name, 0) + value
        merged.gauges.update(snapshot.gauges)
        merged.histograms.update(snapshot.histograms)
        merged.spans.extend(snapshot.spans)
        merged.traces.extend(snapshot.traces)
        for name, value in snapshot.kernel.items():
            merged.kernel[name] = merged.kernel.get(name, 0) + value

    def set_columns(self, columns: Sequence[str]) -> None:
        self.columns = list(columns)

    def add(self, *values: Any) -> None:
        self.rows.append(tuple(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def check(self, description: str, passed: bool) -> None:
        """Record a shape assertion (who-wins / monotonicity / factor)."""
        self.checks.append((description, bool(passed)))

    @property
    def all_checks_pass(self) -> bool:
        return all(ok for __, ok in self.checks)

    def failed_checks(self) -> List[str]:
        return [desc for desc, ok in self.checks if not ok]

    # -- rendering ---------------------------------------------------------------
    def render(self) -> str:
        out = [f"== {self.exp_id}: {self.title} =="]
        widths = [len(c) for c in self.columns]
        formatted_rows = []
        for row in self.rows:
            cells = [_fmt(v) for v in row]
            cells += [""] * (len(self.columns) - len(cells))
            formatted_rows.append(cells)
            for index, cell in enumerate(cells[: len(widths)]):
                widths[index] = max(widths[index], len(cell))
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        out.append(header)
        out.append("-" * len(header))
        for cells in formatted_rows:
            out.append(
                "  ".join(
                    cell.ljust(widths[i]) if i < len(widths) else cell
                    for i, cell in enumerate(cells)
                )
            )
        for note in self.notes:
            out.append(f"note: {note}")
        for description, ok in self.checks:
            out.append(f"[{'PASS' if ok else 'FAIL'}] {description}")
        if self.telemetry is not None:
            out.append("")
            out.append(self.telemetry.render())
        return "\n".join(out)

    def save(self, directory: str = "benchmarks/results") -> str:
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.exp_id}.txt")
        with open(path, "w") as handle:
            handle.write(self.render() + "\n")
        return path

    def show(self, directory: Optional[str] = "benchmarks/results") -> None:
        print()
        print(self.render())
        if directory:
            self.save(directory)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)
