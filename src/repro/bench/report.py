"""Experiment reports: paper-vs-measured tables.

Every benchmark produces an :class:`ExperimentReport` that prints (and
saves) the same rows/series the paper reports, side by side with the
reproduction's measured values.  Absolute numbers are not expected to
match (the substrate is a calibrated simulator); the *shape* — who wins,
by roughly what factor, where crossovers fall — is the reproduction
target, so each report may carry explicit shape checks.

Saving a report emits two artifacts under ``benchmarks/results/``:

- ``<exp_id>.txt`` — the human table, exactly as printed;
- ``<exp_id>.json`` — a machine-readable sidecar carrying the raw rows,
  every check outcome, the experiment's config fingerprint and its wall/
  sim timings.  The grid harness (:mod:`repro.bench.grid`) routes its
  ``BENCH_<area>.json`` artifacts through this same sidecar path, so all
  persisted perf history shares one schema.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: version of the JSON sidecar / BENCH artifact schema; bump on any
#: backwards-incompatible change so the CI gate refuses stale baselines
REPORT_SCHEMA_VERSION = 1


def config_fingerprint(config: Dict[str, Any]) -> str:
    """Short stable digest of an experiment's configuration dict."""
    blob = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


def append_jsonl(path: str, record: Dict[str, Any]) -> None:
    """Append one JSON record to a line-oriented journal file."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")


class ExperimentReport:
    """One experiment's paper-vs-measured comparison."""

    def __init__(self, exp_id: str, title: str):
        self.exp_id = exp_id
        self.title = title
        self.columns: List[str] = ["case", "paper", "measured"]
        self.rows: List[Tuple] = []
        self.notes: List[str] = []
        self.checks: List[Tuple[str, bool]] = []
        #: optional telemetry attached via :meth:`attach_telemetry`
        self.telemetry: Optional["MetricsSnapshot"] = None  # noqa: F821
        #: the inputs that produced these numbers (fingerprinted on save)
        self.config: Dict[str, Any] = {}
        #: real seconds the harness spent producing the report
        self.wall_seconds: Optional[float] = None
        #: simulated seconds elapsed across the experiment's fabrics
        self.sim_seconds: Optional[float] = None
        #: extra machine-readable payload merged into the JSON sidecar
        #: (the grid harness stores its per-cell records here)
        self.payload: Dict[str, Any] = {}

    def attach_telemetry(self, snapshot) -> None:
        """Attach a :class:`~repro.telemetry.MetricsSnapshot` to render
        as the report's telemetry section (merged into prior snapshots'
        counters if called repeatedly)."""
        if self.telemetry is None:
            self.telemetry = snapshot
            return
        merged = self.telemetry
        for name, value in snapshot.counters.items():
            merged.counters[name] = merged.counters.get(name, 0) + value
        merged.gauges.update(snapshot.gauges)
        merged.histograms.update(snapshot.histograms)
        merged.spans.extend(snapshot.spans)
        merged.traces.extend(snapshot.traces)
        for name, value in snapshot.kernel.items():
            merged.kernel[name] = merged.kernel.get(name, 0) + value

    def set_columns(self, columns: Sequence[str]) -> None:
        self.columns = list(columns)

    def add(self, *values: Any) -> None:
        self.rows.append(tuple(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def check(self, description: str, passed: bool) -> None:
        """Record a shape assertion (who-wins / monotonicity / factor)."""
        self.checks.append((description, bool(passed)))

    def timing(self, wall_seconds: Optional[float] = None,
               sim_seconds: Optional[float] = None) -> None:
        """Record how long the experiment took, in real and sim seconds."""
        if wall_seconds is not None:
            self.wall_seconds = wall_seconds
        if sim_seconds is not None:
            self.sim_seconds = sim_seconds

    @property
    def all_checks_pass(self) -> bool:
        return all(ok for __, ok in self.checks)

    def failed_checks(self) -> List[str]:
        return [desc for desc, ok in self.checks if not ok]

    # -- rendering ---------------------------------------------------------------
    def render(self) -> str:
        out = [f"== {self.exp_id}: {self.title} =="]
        widths = [len(c) for c in self.columns]
        formatted_rows = []
        for row in self.rows:
            cells = [_fmt(v) for v in row]
            cells += [""] * (len(self.columns) - len(cells))
            formatted_rows.append(cells)
            for index, cell in enumerate(cells[: len(widths)]):
                widths[index] = max(widths[index], len(cell))
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        out.append(header)
        out.append("-" * len(header))
        for cells in formatted_rows:
            out.append(
                "  ".join(
                    cell.ljust(widths[i]) if i < len(widths) else cell
                    for i, cell in enumerate(cells)
                )
            )
        for note in self.notes:
            out.append(f"note: {note}")
        for description, ok in self.checks:
            out.append(f"[{'PASS' if ok else 'FAIL'}] {description}")
        if self.wall_seconds is not None or self.sim_seconds is not None:
            wall = "-" if self.wall_seconds is None else f"{self.wall_seconds:.2f}"
            sim = "-" if self.sim_seconds is None else f"{self.sim_seconds:.1f}"
            out.append(f"timing: wall {wall} s, sim {sim} s")
        if self.telemetry is not None:
            out.append("")
            out.append(self.telemetry.render())
        return "\n".join(out)

    # -- persistence -------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """The machine-readable sidecar: raw rows, checks, config, timing.

        ``payload`` keys are merged at the top level (they may not shadow
        the report's own keys), so harnesses like the benchmark grid can
        extend the schema without a second file format.
        """
        doc: Dict[str, Any] = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "exp_id": self.exp_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
            "checks": [
                {"description": desc, "passed": ok} for desc, ok in self.checks
            ],
            "config": dict(self.config),
            "config_fingerprint": config_fingerprint(self.config),
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
        }
        for key, value in self.payload.items():
            if key in doc:
                raise ValueError(f"payload key {key!r} shadows a report field")
            doc[key] = value
        return doc

    def save(self, directory: str = "benchmarks/results") -> str:
        """Write the ``.txt`` table plus its ``.json`` sidecar.

        Returns the text path.  The sidecar keeps everything the table
        loses to formatting — raw row values, check booleans, the config
        fingerprint — so a later run can be compared mechanically against
        this one instead of diffing prose.
        """
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.exp_id}.txt")
        with open(path, "w") as handle:
            handle.write(self.render() + "\n")
        self.save_json(os.path.join(directory, f"{self.exp_id}.json"))
        return path

    def save_json(self, path: str) -> str:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        doc = self.to_json()
        doc["saved_at"] = time.strftime("%Y-%m-%dT%H:%M:%S")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
        return path

    def show(self, directory: Optional[str] = "benchmarks/results") -> None:
        print()
        print(self.render())
        if directory:
            self.save(directory)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)
