"""Epoch-keyed caching tiers (result cache, plan cache, columnar blocks).

Three cooperating tiers, all made *exact* by machinery the system already
has:

- :class:`~repro.cache.result.ResultCache` — completed SELECT results
  keyed on (normalized statement digest, snapshot epoch, catalog
  version).  A new epoch is a new key, so invalidation is free and a
  stale read is structurally impossible.
- :class:`~repro.cache.plan.PlanCache` — parsed statements and optimized
  logical plans keyed on the literal-normalized statement shape plus a
  catalog version bumped by DDL and ANALYZE.
- :class:`~repro.cache.blocks.BlockManager` — per-executor byte-accounted
  LRU store of columnar partition blocks (Shark-style), recomputed from
  lineage when an executor crashes.

See ``docs/CACHING.md`` for the tier-by-tier design.
"""

from repro.cache.blocks import BlockManager, ColumnBlock
from repro.cache.keys import canonical_sql, statement_digest, statement_shape
from repro.cache.plan import PlanCache
from repro.cache.result import CachedResult, ResultCache

__all__ = [
    "BlockManager",
    "CachedResult",
    "ColumnBlock",
    "PlanCache",
    "ResultCache",
    "canonical_sql",
    "statement_digest",
    "statement_shape",
]
