"""Per-executor columnar block store (Shark-style RDD caching).

A :class:`BlockManager` holds materialized RDD partitions as
:class:`ColumnBlock` objects under a byte budget with LRU eviction.
Uniform tuple rows are stored column-major (one list per column, the
layout Shark popularised for cached tables); anything else falls back
to a row store.  Blocks are *soft* state: when chaos crashes an
executor, :meth:`drop_all` empties its store and lineage recompute
rebuilds blocks on demand — exactly the RDD recovery story.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro import telemetry

#: default per-executor budget for cached partition blocks
DEFAULT_EXECUTOR_CACHE_BYTES = 64 * 1024 * 1024

#: (rdd_id, partition_index)
BlockKey = Tuple[int, int]


def value_nbytes(value: Any) -> int:
    """Estimated in-memory bytes of one value (mirrors the engine's model)."""
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (tuple, list)):
        return 8 + sum(value_nbytes(v) for v in value)
    return 8


def rows_nbytes(rows: List[Any]) -> int:
    """Estimated bytes of a row list (8 bytes/row structural overhead)."""
    return sum(8 + value_nbytes(row) for row in rows)


class ColumnBlock:
    """One cached partition: column-major when rows are uniform tuples."""

    __slots__ = ("_columns", "_rows", "num_rows", "nbytes")

    def __init__(self, rows: List[Any]):
        rows = list(rows)
        self.num_rows = len(rows)
        self.nbytes = rows_nbytes(rows)
        width = len(rows[0]) if rows and isinstance(rows[0], tuple) else -1
        columnar = width >= 0 and all(
            isinstance(r, tuple) and len(r) == width for r in rows
        )
        if columnar:
            self._columns: Optional[List[List[Any]]] = [
                [row[i] for row in rows] for i in range(width)
            ]
            self._rows: Optional[List[Any]] = None
        else:
            self._columns = None
            self._rows = rows

    @property
    def is_columnar(self) -> bool:
        return self._columns is not None

    def rows(self) -> List[Any]:
        """Re-assembled rows; always a fresh list the caller may mutate."""
        if self._columns is None:
            assert self._rows is not None
            return list(self._rows)
        if not self._columns:
            return [() for __ in range(self.num_rows)]
        return [tuple(col[i] for col in self._columns) for i in range(self.num_rows)]


class BlockManager:
    """Byte-accounted LRU store of one executor's cached blocks."""

    def __init__(
        self,
        name: str,
        budget_bytes: int = DEFAULT_EXECUTOR_CACHE_BYTES,
    ):
        self.name = name
        self.budget_bytes = budget_bytes
        self._blocks: "OrderedDict[BlockKey, ColumnBlock]" = OrderedDict()
        self.used_bytes = 0

    def get(self, key: BlockKey) -> Optional[ColumnBlock]:
        block = self._blocks.get(key)
        if block is None:
            return None
        self._blocks.move_to_end(key)
        return block

    def put(self, key: BlockKey, rows: List[Any]) -> bool:
        """Store a computed partition; False when it exceeds the budget."""
        block = ColumnBlock(rows)
        if block.nbytes > self.budget_bytes:
            telemetry.counter("spark.cache.rejected").inc()
            return False
        old = self._blocks.pop(key, None)
        if old is not None:
            self.used_bytes -= old.nbytes
        while self._blocks and self.used_bytes + block.nbytes > self.budget_bytes:
            self._evict_one()
        self._blocks[key] = block
        self.used_bytes += block.nbytes
        telemetry.counter("spark.cache.stores").inc()
        self._observe()
        return True

    def drop(self, key: BlockKey) -> None:
        block = self._blocks.pop(key, None)
        if block is not None:
            self.used_bytes -= block.nbytes
            self._observe()

    def drop_rdd(self, rdd_id: int) -> int:
        """Release every block of one RDD (``unpersist``); returns count."""
        doomed = [key for key in self._blocks if key[0] == rdd_id]
        for key in doomed:
            self.drop(key)
        return len(doomed)

    def drop_all(self) -> None:
        """Crash semantics: all soft state on this executor is gone."""
        self._blocks.clear()
        self.used_bytes = 0
        self._observe()

    def _evict_one(self) -> None:
        __, block = self._blocks.popitem(last=False)
        self.used_bytes -= block.nbytes
        telemetry.counter("spark.cache.evictions").inc()

    def _observe(self) -> None:
        telemetry.gauge(f"spark.cache.bytes.{self.name}").set(self.used_bytes)

    # -- introspection -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, key: BlockKey) -> bool:
        return key in self._blocks

    def keys(self) -> List[BlockKey]:
        return list(self._blocks.keys())

    def partitions_of(self, rdd_id: int) -> List[int]:
        return [split for (rid, split) in self._blocks if rid == rdd_id]


def cluster_partitions(managers: List[BlockManager], rdd_id: int) -> Dict[int, int]:
    """partition -> replica count across a set of block managers."""
    counts: Dict[int, int] = {}
    for manager in managers:
        for split in manager.partitions_of(rdd_id):
            counts[split] = counts.get(split, 0) + 1
    return counts
