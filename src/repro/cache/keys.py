"""Statement normalization for cache keys.

Both caches key on the *token stream*, not the raw SQL text, so
whitespace, comments, and identifier case never fragment the cache:

- :func:`canonical_sql` — the exact statement with identifiers
  uppercased and literals preserved.  Two spellings of the same
  statement share one result-cache entry.
- :func:`statement_shape` — literals replaced by ``?``.  Repeated
  statement *shapes* (same query, different constants) group under one
  shape for the plan cache's telemetry, exactly like a prepared
  statement.

Literals cannot be normalized out of the *plan* key itself: the
optimizer constant-folds, pushes predicates into scans, and prunes
segments from hash-range literals, so a plan is only reusable for the
exact literal vector it was optimized with (``docs/CACHING.md``
discusses the trade-off).
"""

from __future__ import annotations

import hashlib
from typing import Any, List


def _tokenize(sql: str) -> List[Any]:
    # Imported lazily: the lexer lives under repro.vertica, whose database
    # module imports this package — a module-level import here would make
    # ``import repro.cache`` order-dependent.
    from repro.vertica.sql.lexer import tokenize

    return tokenize(sql)


def _render(token: Any) -> str:
    if token.kind == "STRING":
        return "'" + token.text.replace("'", "''") + "'"
    return token.text


def canonical_sql(sql: str) -> str:
    """Whitespace/case/comment-insensitive canonical form of ``sql``."""
    return " ".join(_render(t) for t in _tokenize(sql) if t.kind != "EOF")


def canonical_tokens(sql: str) -> List[str]:
    """The canonical token texts (used to peel EXPLAIN/PROFILE prefixes)."""
    return [_render(t) for t in _tokenize(sql) if t.kind != "EOF"]


def statement_shape(sql: str) -> str:
    """Canonical form with every literal replaced by ``?``."""
    parts = []
    for token in _tokenize(sql):
        if token.kind == "EOF":
            continue
        if token.kind in ("NUMBER", "STRING"):
            parts.append("?")
        else:
            parts.append(token.text)
    return " ".join(parts)


def statement_digest(canonical: str) -> str:
    """Short stable digest of a canonical statement (EXPLAIN-friendly)."""
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
