"""The prepared-statement / plan cache.

Two levels, both bounded LRU:

- **Parse cache** — canonical statement text → parsed AST, shared by
  every session of a database.  A repeated statement skips the lexer
  and parser entirely; the parsed statement is stamped with its
  canonical key (``cache_key``) and literal-normalized shape
  (``cache_shape``) so downstream tiers key off the same normalization.
- **Plan cache** — (canonical text, catalog version, join-strategy
  override, join-reorder flag, stats-corrections version) → optimized
  :class:`~repro.vertica.plan.logical.LogicalPlan`.
  A repeated SELECT skips bind → optimize.  The catalog version is
  bumped by DDL, TRUNCATE, and ANALYZE, so schema or statistics changes
  can never serve a stale plan; estimation reads only catalog
  statistics plus the feedback corrections named in the key, which makes
  a cached plan bit-identical to a fresh optimize at the same versions.

Literals stay in the plan key on purpose: constant folding, predicate
pushdown, and hash-range segment pruning bake them into the plan, so a
parameterized plan would not be exact.  The literal-normalized *shape*
is still tracked for telemetry (``vertica.cache.plan.shapes``), which is
what a prepared-statement workload shows up as.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro import telemetry
from repro.cache.keys import canonical_sql, canonical_tokens, statement_shape

#: default entry cap for each level (parsed statements, optimized plans)
DEFAULT_PLAN_CACHE_ENTRIES = 256

PlanKey = Tuple[str, int, str, bool, int]


class PlanCache:
    """LRU caches for parsed statements and optimized logical plans."""

    def __init__(
        self,
        capacity: int = DEFAULT_PLAN_CACHE_ENTRIES,
        name: str = "vertica.cache.plan",
    ):
        self.capacity = capacity
        self.name = name
        self._parsed: "OrderedDict[str, Any]" = OrderedDict()
        self._plans: "OrderedDict[PlanKey, Any]" = OrderedDict()
        self._shapes: Dict[str, int] = {}

    # -- parse level ------------------------------------------------------------
    def parse(self, sql: str, parser: Any) -> Any:
        """Parse ``sql`` through the cache; stamps normalization keys.

        ``parser`` is the real parser entry point
        (:func:`~repro.vertica.sql.parser.parse_statement`), injected so
        this package stays import-light.
        """
        canonical = canonical_sql(sql)
        statement = self._parsed.get(canonical)
        if statement is not None:
            self._parsed.move_to_end(canonical)
            telemetry.counter(f"{self.name}.parse_hits").inc()
            return statement
        telemetry.counter(f"{self.name}.parse_misses").inc()
        statement = parser(sql)
        self._stamp(statement, canonical, statement_shape(sql))
        self._parsed[canonical] = statement
        while len(self._parsed) > self.capacity:
            self._parsed.popitem(last=False)
        return statement

    def _stamp(self, statement: Any, canonical: str, shape: str) -> None:
        # Imported lazily: repro.vertica.database imports this package, so a
        # module-level ast import would make ``import repro.cache``
        # order-dependent.
        from repro.vertica.sql import ast_nodes as ast

        statement.cache_key = canonical
        statement.cache_shape = shape
        shape_count = self._shapes.get(shape, 0) + 1
        self._shapes[shape] = shape_count
        telemetry.gauge(f"{self.name}.shapes").set(len(self._shapes))
        if isinstance(statement, (ast.Explain, ast.Profile)):
            # The wrapped query shares the outer statement's normalization
            # minus the leading EXPLAIN/PROFILE keyword, so a profiled
            # query and its plain form hit the same cache entries.
            tokens = canonical_tokens(canonical)
            statement.query.cache_key = " ".join(tokens[1:])
            statement.query.cache_shape = shape.split(" ", 1)[-1]

    # -- plan level --------------------------------------------------------------
    def lookup_plan(
        self,
        statement: Any,
        catalog_version: int,
        join_strategy: str,
        join_reorder: bool = False,
        corrections_version: int = 0,
    ) -> Optional[Any]:
        """The cached optimized plan for ``statement``, or None.

        ``join_reorder`` and ``corrections_version`` key the adaptive
        feedback state: the plan optimized before any feedback landed
        (version 0) stays cached and pristine, while plans optimized
        against later correction factors get their own entries — replans
        never poison an earlier key.
        """
        canonical = getattr(statement, "cache_key", None)
        if canonical is None:
            return None
        key = (canonical, catalog_version, join_strategy,
               join_reorder, corrections_version)
        plan = self._plans.get(key)
        if plan is None:
            telemetry.counter(f"{self.name}.misses").inc()
            return None
        self._plans.move_to_end(key)
        telemetry.counter(f"{self.name}.hits").inc()
        return plan

    def store_plan(
        self,
        statement: Any,
        catalog_version: int,
        join_strategy: str,
        plan: Any,
        join_reorder: bool = False,
        corrections_version: int = 0,
    ) -> bool:
        canonical = getattr(statement, "cache_key", None)
        if canonical is None:
            return False
        self._plans[(canonical, catalog_version, join_strategy,
                     join_reorder, corrections_version)] = plan
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
            telemetry.counter(f"{self.name}.evictions").inc()
        return True

    # -- introspection -----------------------------------------------------------
    @property
    def parsed_count(self) -> int:
        return len(self._parsed)

    @property
    def plan_count(self) -> int:
        return len(self._plans)

    @property
    def shape_count(self) -> int:
        return len(self._shapes)

    def clear(self) -> None:
        self._parsed.clear()
        self._plans.clear()
        self._shapes.clear()
