"""The server-side query result cache.

Completed SELECT results are stored under ``(statement digest, snapshot
epoch, catalog version)``.  Epochs only move forward, so a cached entry
can never be served to a reader at a different snapshot — invalidation
is free and exactness is structural, not advisory.  The catalog version
covers the one mutation class that does *not* advance an epoch (DDL,
TRUNCATE, ANALYZE).

The cache is bounded by a byte budget with LRU eviction and can be
charged into a WLM pool's memory ledger through a
:class:`MemoryAccount`, so resident results genuinely compete with
query admission grants.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro import telemetry
from repro.cache.blocks import rows_nbytes

#: default byte budget (per database) for cached result sets
DEFAULT_RESULT_CACHE_BYTES = 8 * 1024 * 1024

_MB = 1024 * 1024

#: CostReport fields replayed on a hit so the report stays byte-identical
#: to the cold execution it memoised (modulo the ``cache_hit`` flag)
_COST_SCALARS = (
    "rows_scanned",
    "rows_output",
    "bytes_output",
    "rows_written",
    "rows_aggregated",
)
_COST_NODE_MAPS = (
    "node_rows_scanned",
    "node_output_bytes",
    "node_rows_output",
    "node_rows_written",
    "node_rows_aggregated",
)

CacheKey = Tuple[str, int, int]


def snapshot_cost(cost: Any) -> Dict[str, Any]:
    """Copy the attribution fields of a CostReport into plain data."""
    data: Dict[str, Any] = {f: getattr(cost, f) for f in _COST_SCALARS}
    for field in _COST_NODE_MAPS:
        data[field] = dict(getattr(cost, field))
    return data


def replay_cost(snapshot: Dict[str, Any], cost: Any) -> None:
    """Merge a stored cost snapshot into a fresh CostReport."""
    for field in _COST_SCALARS:
        setattr(cost, field, getattr(cost, field) + snapshot[field])
    for field in _COST_NODE_MAPS:
        target = getattr(cost, field)
        for node, amount in snapshot[field].items():
            target[node] = target.get(node, type(amount)()) + amount


class MemoryAccount:
    """Where the cache's resident bytes are charged (MB granularity).

    The WLM adapter (:meth:`repro.wlm.admission.AdmissionController.
    cache_account`) implements this against a resource pool's memory
    ledger; the default ``None`` account leaves the cache bounded only
    by its own byte budget.
    """

    def grow(self, mb: int) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def shrink(self, mb: int) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class CachedResult:
    """One memoised SELECT: columns, rows, and its cost attribution."""

    __slots__ = ("columns", "rows", "cost_snapshot", "nbytes", "hits")

    def __init__(
        self,
        columns: List[str],
        rows: List[Tuple[Any, ...]],
        cost_snapshot: Dict[str, Any],
    ):
        self.columns = list(columns)
        self.rows = list(rows)
        self.cost_snapshot = cost_snapshot
        self.nbytes = rows_nbytes(self.rows) + rows_nbytes([tuple(self.columns)])
        self.hits = 0


class ResultCache:
    """Byte-bounded LRU of completed SELECT results, epoch-keyed."""

    def __init__(
        self,
        budget_bytes: int = DEFAULT_RESULT_CACHE_BYTES,
        name: str = "vertica.cache.result",
    ):
        self.budget_bytes = budget_bytes
        self.name = name
        self._entries: "OrderedDict[CacheKey, CachedResult]" = OrderedDict()
        self.used_bytes = 0
        self._account: Optional[MemoryAccount] = None
        self._reserved_mb = 0

    # -- accounting -----------------------------------------------------------
    def attach_account(self, account: Optional[MemoryAccount]) -> None:
        """Charge resident bytes into ``account`` from now on."""
        if self._account is not None and self._reserved_mb:
            self._account.shrink(self._reserved_mb)
            self._reserved_mb = 0
        self._account = account
        self._sync_account(self.used_bytes)

    @property
    def reserved_mb(self) -> int:
        return self._reserved_mb

    def _sync_account(self, target_bytes: int) -> bool:
        """Grow/shrink the account to cover ``target_bytes``; True on success."""
        if self._account is None:
            return True
        needed = (target_bytes + _MB - 1) // _MB
        if needed > self._reserved_mb:
            if not self._account.grow(needed - self._reserved_mb):
                return False
            self._reserved_mb = needed
        elif needed < self._reserved_mb:
            self._account.shrink(self._reserved_mb - needed)
            self._reserved_mb = needed
        return True

    # -- core operations --------------------------------------------------------
    def lookup(
        self, digest: str, epoch: int, catalog_version: int
    ) -> Optional[CachedResult]:
        entry = self._entries.get((digest, epoch, catalog_version))
        if entry is None:
            telemetry.counter(f"{self.name}.misses").inc()
            return None
        self._entries.move_to_end((digest, epoch, catalog_version))
        entry.hits += 1
        telemetry.counter(f"{self.name}.hits").inc()
        return entry

    def store(
        self,
        digest: str,
        epoch: int,
        catalog_version: int,
        columns: List[str],
        rows: List[Tuple[Any, ...]],
        cost: Any,
    ) -> bool:
        """Memoise one completed SELECT; False when it cannot be held."""
        key = (digest, epoch, catalog_version)
        old = self._entries.pop(key, None)
        if old is not None:
            self.used_bytes -= old.nbytes
        entry = CachedResult(columns, rows, snapshot_cost(cost))
        if entry.nbytes > self.budget_bytes:
            telemetry.counter(f"{self.name}.rejected").inc()
            self._sync_account(self.used_bytes)
            self._observe()
            return False
        while self._entries and self.used_bytes + entry.nbytes > self.budget_bytes:
            self._evict_one()
        while not self._sync_account(self.used_bytes + entry.nbytes):
            if not self._entries:
                # The WLM pool cannot spare even the floor: refuse to store.
                telemetry.counter(f"{self.name}.rejected").inc()
                self._sync_account(self.used_bytes)
                self._observe()
                return False
            self._evict_one()
        self._entries[key] = entry
        self.used_bytes += entry.nbytes
        telemetry.counter(f"{self.name}.stores").inc()
        self._observe()
        return True

    def bypass(self, reason: str) -> None:
        """Record a statement that skipped the cache (and why)."""
        telemetry.counter(f"{self.name}.bypass").inc()
        telemetry.counter(f"{self.name}.bypass.{reason}").inc()

    def clear(self) -> None:
        self._entries.clear()
        self.used_bytes = 0
        self._sync_account(0)
        self._observe()

    def _evict_one(self) -> None:
        __, entry = self._entries.popitem(last=False)
        self.used_bytes -= entry.nbytes
        telemetry.counter(f"{self.name}.evictions").inc()

    def _observe(self) -> None:
        telemetry.gauge(f"{self.name}.bytes").set(self.used_bytes)
        telemetry.gauge(f"{self.name}.entries").set(len(self._entries))

    # -- introspection -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def keys(self) -> List[CacheKey]:
        return list(self._entries.keys())
