"""Chaos engineering for the fabric: seeded fault injection + auditing.

The paper's §3 protocols (S2V exactly-once, V2S snapshot reads) claim
correctness under arbitrary task failure, duplication and restart.  This
package turns that claim into an executable property:

- :mod:`~repro.chaos.schedule` — declarative, seed-reproducible fault
  plans (executor crashes, link partitions, Vertica node restarts, lock
  storms, connection severing, probe kills);
- :mod:`~repro.chaos.controller` — interprets a schedule against a live
  fabric, recording every injection into telemetry;
- :mod:`~repro.chaos.invariants` — audits the database afterwards:
  exactly-once data, truthful job status, no leaked locks / sessions /
  temp tables, single-epoch V2S snapshots.

See ``docs/CHAOS.md`` for the operator guide and
``repro.bench.chaos_soak`` for the many-seed soak harness.
"""

from repro.chaos.controller import ChaosController, InjectionRecord
from repro.chaos.invariants import (
    InvariantChecker,
    InvariantReport,
    InvariantViolation,
)
from repro.chaos.schedule import (
    ALL_FAMILIES,
    ChaosAction,
    ChaosError,
    ChaosSchedule,
    ExecutorCrash,
    FAMILIES,
    LinkDegrade,
    LockStorm,
    PoolStorm,
    ProbeRule,
    StatementRule,
    VerticaRestart,
)

__all__ = [
    "ALL_FAMILIES",
    "ChaosAction",
    "ChaosController",
    "ChaosError",
    "ChaosSchedule",
    "ExecutorCrash",
    "FAMILIES",
    "InjectionRecord",
    "InvariantChecker",
    "InvariantReport",
    "InvariantViolation",
    "LinkDegrade",
    "LockStorm",
    "PoolStorm",
    "ProbeRule",
    "StatementRule",
    "VerticaRestart",
]
