"""The chaos controller: interprets a schedule against a live fabric.

One controller owns one run.  ``install()`` attaches it to the fabric's
moving parts:

- timed actions are armed on the simulation clock via
  :meth:`~repro.sim.kernel.Environment.call_at`;
- probe rules ride the existing :class:`~repro.spark.faults.FaultPolicy`
  hook chain (composed with any hand-placed policy, never replacing it);
- statement rules and down-node severing hook the JDBC bridge through
  ``SimVerticaCluster.chaos``, which
  :meth:`~repro.connector.jdbc.SimVerticaConnection.execute` consults
  around every statement.

Every injection is recorded (simulated time, family, detail) and counted
into the telemetry registry (``chaos.injections`` and per-family
``chaos.<family>`` counters), so a run's fault history appears in the
same snapshot as the protocol metrics it perturbed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro import telemetry
from repro.chaos.schedule import ChaosError, ChaosSchedule
from repro.spark.faults import CompositeFaultPolicy, FaultPolicy, InjectedFailure
from repro.vertica.hashring import HASH_SPACE, vertica_hash


class InjectionRecord:
    """One injected fault: when, what family, and the specifics."""

    def __init__(self, time: float, family: str, detail: str):
        self.time = time
        self.family = family
        self.detail = detail

    def __repr__(self) -> str:
        return f"[t={self.time:.3f}] {self.family}: {self.detail}"


class ChaosController(FaultPolicy):
    """Executes one :class:`ChaosSchedule` against one fabric."""

    def __init__(self, env, schedule: ChaosSchedule):
        self.env = env
        self.schedule = schedule
        self.injections: List[InjectionRecord] = []
        self.scheduler = None
        self.vertica = None
        self.network = None
        self.links: Dict[str, object] = {}
        self._downed_vertica: set = set()
        self._probe_kills = [0] * len(schedule.probe_rules)
        self._stmt_severs = [0] * len(schedule.statement_rules)
        self._stmt_draws = [0] * len(schedule.statement_rules)
        self._installed = False

    # -- wiring ---------------------------------------------------------------
    def install(
        self,
        *,
        scheduler=None,
        vertica=None,
        links: Optional[Dict[str, object]] = None,
        network=None,
    ) -> "ChaosController":
        """Attach to the fabric and arm every timed action.

        ``scheduler`` is a :class:`~repro.spark.scheduler.TaskScheduler`
        (probe rules and executor crashes), ``vertica`` a
        :class:`~repro.connector.cluster.SimVerticaCluster` (statement
        severing, node restarts, lock storms), ``links`` a name->Link
        mapping and ``network`` the fair-share :class:`~repro.sim.network.
        Network` carrying them (link degradation).
        """
        if self._installed:
            raise ChaosError("controller already installed")
        self._installed = True
        self.scheduler = scheduler
        self.vertica = vertica
        self.links = dict(links or {})
        if network is None and vertica is not None:
            network = vertica.sim_cluster.network
        self.network = network
        if scheduler is not None and (
            self.schedule.probe_rules or self.schedule.statement_rules
            or self.schedule.actions
        ):
            base = scheduler.fault_policy
            if type(base) is FaultPolicy:
                scheduler.fault_policy = self
            else:
                scheduler.fault_policy = CompositeFaultPolicy([base, self])
        if vertica is not None:
            vertica.chaos = self
        for action in self.schedule.actions:
            self.env.call_at(action.at, lambda a=action: a.apply(self))
        return self

    def record(self, family: str, detail: str) -> None:
        self.injections.append(InjectionRecord(self.env.now, family, detail))
        telemetry.counter("chaos.injections").inc()
        telemetry.counter(f"chaos.{family}").inc()

    def summary(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for record in self.injections:
            out[record.family] = out.get(record.family, 0) + 1
        return out

    # -- timed actions ----------------------------------------------------------
    def fire_executor_crash(self, action) -> None:
        if self.scheduler is None:
            return
        executor = next(
            (e for e in self.scheduler.executors
             if e.node.name == action.node_name),
            None,
        )
        if executor is None:
            return
        killed = self.scheduler.crash_executor(
            executor, reason=f"chaos @ t={self.env.now:.3f}"
        )
        self.record(
            "executor_crash",
            f"{action.node_name} ({killed} live attempts lost)",
        )
        if action.restart_after is not None:
            self.env.call_at(
                self.env.now + action.restart_after,
                lambda: self.scheduler.restart_executor(executor),
            )

    def fire_link_degrade(self, action) -> None:
        link = self.links.get(action.link_name)
        if link is None or self.network is None:
            return
        nominal = link.nominal_capacity
        self.network.set_link_capacity(link, nominal * action.factor)
        self.record(
            "link_degrade",
            f"{action.link_name} -> x{action.factor} for {action.duration:.3f}s",
        )
        self.env.call_at(
            self.env.now + action.duration,
            lambda: self.network.set_link_capacity(link, nominal),
        )

    def fire_vertica_restart(self, action) -> None:
        if self.vertica is None:
            return
        db = self.vertica.db
        if action.node_name not in db.node_states:
            return
        if all(
            state != "UP" or name == action.node_name
            for name, state in db.node_states.items()
        ):
            return  # never take the last node down: nothing could fail over
        db.fail_node(action.node_name)
        self._downed_vertica.add(action.node_name)
        self.record(
            "vertica_restart",
            f"{action.node_name} down for {action.downtime:.3f}s",
        )

        def recover():
            self._downed_vertica.discard(action.node_name)
            db.recover_node(action.node_name)

        self.env.call_at(self.env.now + action.downtime, recover)

    def fire_lock_storm(self, action) -> None:
        if self.vertica is None:
            return
        self.record(
            "lock_storm",
            f"{action.table} for {action.duration:.3f}s",
        )
        self.env.process(
            self._storm(action), name=f"chaos.lock_storm.{action.table}"
        )

    def _storm(self, action):
        from repro.vertica.errors import LockContention

        db = self.vertica.db
        end = self.env.now + action.duration
        while self.env.now < end:
            txn = db.begin()
            held = False
            try:
                txn.lock(action.table, "X")
                held = True
            except LockContention:
                pass  # a real writer holds it; that *is* the contention
            if held:
                yield self.env.timeout(action.hold)
            txn.abort()
            yield self.env.timeout(action.gap)

    def fire_pool_storm(self, action) -> None:
        if self.vertica is None or getattr(self.vertica, "wlm", None) is None:
            return
        self.record(
            "pool_storm",
            f"{action.pool} x{action.claims} for {action.duration:.3f}s",
        )
        for index in range(action.claims):
            self.env.process(
                self._pool_storm_claim(action),
                name=f"chaos.pool_storm.{action.pool}.{index}",
            )

    def _pool_storm_claim(self, action):
        """One noisy neighbour: claim an admission slot, hold, repeat."""
        from repro.vertica.errors import AdmissionTimeout, CatalogError

        wlm = self.vertica.wlm
        end = self.env.now + action.duration
        while self.env.now < end:
            try:
                ticket = yield from wlm.admit(action.pool)
            except AdmissionTimeout:
                # Queued out — the workload won the slot race; that *is*
                # the contention.  Back off and try again.
                yield self.env.timeout(action.gap)
                continue
            except CatalogError:
                return  # pool dropped mid-storm
            try:
                yield self.env.timeout(action.hold)
            finally:
                ticket.release()
            yield self.env.timeout(action.gap)

    # -- FaultPolicy hook (probe rules) -----------------------------------------
    def on_probe(self, ctx, label: str) -> None:
        for index, rule in enumerate(self.schedule.probe_rules):
            if not rule.matches(label):
                continue
            if self._probe_kills[index] >= rule.max_kills:
                continue
            if ctx.attempt_number >= rule.max_attempt:
                continue
            draw = vertica_hash(
                self.schedule.seed, index, ctx.partition_id,
                ctx.attempt_number, label,
            )
            if draw < rule.rate * HASH_SPACE:
                self._probe_kills[index] += 1
                self.record(
                    "task_kill",
                    f"partition {ctx.partition_id} attempt "
                    f"{ctx.attempt_number} at {label!r}",
                )
                raise InjectedFailure(
                    f"chaos kill at {label!r} for partition "
                    f"{ctx.partition_id} attempt {ctx.attempt_number}"
                )

    # -- JDBC hook (statement rules + down-node severing) -----------------------
    def on_statement(self, conn, sql: str, point: str) -> None:
        """Called by the JDBC bridge around every statement.

        May sever the connection and raise
        :class:`~repro.connector.jdbc.ConnectionSevered`.
        """
        from repro.connector.jdbc import ConnectionSevered

        if point == "before" and conn.node_name in self._downed_vertica:
            conn.sever()
            self.record(
                "vertica_restart",
                f"severed connection to down node {conn.node_name}",
            )
            raise ConnectionSevered(conn.node_name, sql, acked=False)
        if conn.client_node is None:
            return  # driver control-plane connections stay alive
        for index, rule in enumerate(self.schedule.statement_rules):
            if rule.point != point or not rule.matches(sql):
                continue
            if self._stmt_severs[index] >= rule.max_severs:
                continue
            self._stmt_draws[index] += 1
            draw = vertica_hash(
                self.schedule.seed, "sever", index, self._stmt_draws[index]
            )
            if draw < rule.rate * HASH_SPACE:
                self._stmt_severs[index] += 1
                acked = point == "after"
                self.record(
                    "connection_sever",
                    f"{conn.node_name} {rule.point} "
                    f"{sql.strip().split(None, 1)[0].upper()} (acked={acked})",
                )
                conn.sever()
                raise ConnectionSevered(conn.node_name, sql, acked=acked)
