"""Post-run invariant auditing: did the protocol survive the chaos?

After any chaosed run the checker audits what the paper's protocols
guarantee *regardless* of faults:

- **S2V exactly-once** (§3.2.1): if ``S2V_JOB_STATUS`` says SUCCESS, the
  target table holds exactly one copy of the source multiset (appended to
  the prior contents in append mode); any other status means the save
  raised and the target is untouched.  The status table is the arbiter —
  it must never disagree with the data.
- **No leaked state**: per-job temporary tables are gone after the driver
  survived (success or failure), no transaction still holds a table lock,
  every client session was returned (sessions parked idle in a
  client-side :class:`~repro.wlm.sessionpool.SessionPool` are baselined,
  not leaks), and — on WLM runs — no resource pool still holds admission
  slots or memory.
- **V2S snapshot isolation** (§3.1.2): the rows a scan produced equal an
  ``AT EPOCH`` re-read of its pinned epoch — one consistent snapshot,
  even though tasks ran (and re-ran) while writers advanced the epoch.

Checks read the database substrate directly through short-lived sessions
(no simulated cost), so auditing perturbs nothing.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

#: table-name suffixes of S2V per-job temporary state
TEMP_SUFFIXES = ("_STAGING", "_TASK_STATUS", "_LAST_COMMITTER")


class InvariantViolation:
    """One broken invariant."""

    def __init__(self, name: str, detail: str):
        self.name = name
        self.detail = detail

    def __repr__(self) -> str:
        return f"{self.name}: {self.detail}"


class InvariantReport:
    """The outcome of one audit: which checks ran, what broke."""

    def __init__(self, title: str = "invariants"):
        self.title = title
        self.checks: List[str] = []
        self.violations: List[InvariantViolation] = []
        #: observations worth surfacing that do not break an invariant
        #: (e.g. swallowed S2V cleanup errors) — reported, never fatal
        self.warnings: List[InvariantViolation] = []

    @property
    def ok(self) -> bool:
        return not self.violations

    def passed(self, check: str) -> None:
        self.checks.append(check)

    def violated(self, name: str, detail: str) -> None:
        self.checks.append(name)
        self.violations.append(InvariantViolation(name, detail))

    def warn(self, name: str, detail: str) -> None:
        self.checks.append(name)
        self.warnings.append(InvariantViolation(name, detail))

    def merge(self, other: "InvariantReport") -> "InvariantReport":
        self.checks.extend(other.checks)
        self.violations.extend(other.violations)
        self.warnings.extend(other.warnings)
        return self

    def describe(self) -> str:
        lines = [f"{self.title}: {'OK' if self.ok else 'VIOLATED'} "
                 f"({len(self.checks)} checks"
                 + (f", {len(self.warnings)} warnings" if self.warnings else "")
                 + ")"]
        for violation in self.violations:
            lines.append(f"  FAIL {violation}")
        for warning in self.warnings:
            lines.append(f"  WARN {warning}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return self.describe()


def _multiset(rows: Sequence[Sequence[Any]]) -> List[Tuple[Any, ...]]:
    return sorted(tuple(row) for row in rows)


class InvariantChecker:
    """Audits one database after a (possibly chaosed) run.

    Construct it *before* the run so it can baseline per-node session
    counts; sessions the workload opens and fails to close then show up
    as leaks.
    """

    def __init__(self, vertica):
        self.db = vertica.db if hasattr(vertica, "db") else vertica
        self.cluster = vertica if hasattr(vertica, "db") else None
        self._baseline_sessions = {
            node: self.db.session_count(node) for node in self.db.node_names
        }
        # Idle sessions parked in a client-side pool are open on purpose;
        # baseline them so pooled runs aren't flagged as leaking.
        self._baseline_idle = {
            node: self._pool_idle(node) for node in self.db.node_names
        }

    def _pool_idle(self, node: str) -> int:
        pool = getattr(self.cluster, "session_pool", None)
        return pool.idle_count(node) if pool is not None else 0

    # -- primitives ----------------------------------------------------------
    def _session(self):
        return self.db.connect(failover=True)

    def _table_exists(self, name: str) -> bool:
        return self.db.catalog.has_table(name)

    def _rows_of(self, table: str) -> List[Tuple[Any, ...]]:
        session = self._session()
        try:
            return _multiset(session.execute(f"SELECT * FROM {table}").rows)
        finally:
            session.close()

    def _job_status(self, job_name: str) -> Optional[str]:
        from repro.connector.s2v import FINAL_STATUS_TABLE

        if not self._table_exists(FINAL_STATUS_TABLE):
            return None
        session = self._session()
        try:
            result = session.execute(
                f"SELECT status FROM {FINAL_STATUS_TABLE} "
                f"WHERE job_name = '{job_name}'"
            )
            return str(result.rows[0][0]) if result.rows else None
        finally:
            session.close()

    # -- S2V ------------------------------------------------------------------
    def check_s2v_save(
        self,
        job_name: str,
        target: str,
        expected_rows: Sequence[Sequence[Any]],
        mode: str = "overwrite",
        prior_rows: Sequence[Sequence[Any]] = (),
        raised: Optional[BaseException] = None,
        check_leaks: bool = True,
    ) -> InvariantReport:
        """Audit one save: status arbiter, exactly-once data, no leaks.

        ``expected_rows`` is the source DataFrame's rows; ``prior_rows``
        the target's contents before the save (empty for a fresh table);
        ``raised`` whatever exception ``save()`` surfaced (None on
        success).
        """
        report = InvariantReport(f"s2v:{job_name}")
        status = self._job_status(job_name)
        expected = _multiset(expected_rows)
        prior = _multiset(prior_rows)
        final_expected = prior + expected if mode == "append" else expected

        if raised is None and status != "SUCCESS":
            report.violated(
                "status-reflects-reality",
                f"save() returned normally but status is {status!r}",
            )
        else:
            report.passed("status-reflects-reality")

        if status == "SUCCESS":
            if not self._table_exists(target):
                report.violated(
                    "exactly-once",
                    f"status SUCCESS but target {target!r} does not exist",
                )
            else:
                actual = self._rows_of(target)
                if actual == _multiset(final_expected):
                    report.passed("exactly-once")
                else:
                    report.violated(
                        "exactly-once",
                        f"target {target!r} holds {len(actual)} rows, "
                        f"expected {len(final_expected)} "
                        f"(mode={mode}, status=SUCCESS)",
                    )
        else:
            # IN_PROGRESS / FAILURE / no record: the save must have raised
            # and the target must be exactly what it was before.
            if raised is None:
                report.violated(
                    "failed-save-raises",
                    f"status {status!r} yet save() did not raise",
                )
            else:
                report.passed("failed-save-raises")
            if prior:
                actual = (
                    self._rows_of(target) if self._table_exists(target) else None
                )
                if actual == prior:
                    report.passed("target-untouched")
                else:
                    report.violated(
                        "target-untouched",
                        f"failed save modified target {target!r}: "
                        f"{len(prior)} rows before, "
                        f"{'missing' if actual is None else len(actual)} after",
                    )
            elif self._table_exists(target) and self._rows_of(target):
                report.violated(
                    "target-untouched",
                    f"failed save left rows in previously absent/empty "
                    f"target {target!r}",
                )
            else:
                report.passed("target-untouched")

        leftovers = [
            job_name + suffix
            for suffix in TEMP_SUFFIXES
            if self._table_exists(job_name + suffix)
        ]
        if leftovers:
            report.violated(
                "temp-tables-dropped",
                f"per-job tables leaked: {', '.join(leftovers)}",
            )
        else:
            report.passed("temp-tables-dropped")

        if check_leaks:
            report.merge(self.check_no_leaks())
        return report

    # -- V2S ------------------------------------------------------------------
    def check_v2s_scan(
        self,
        table: str,
        epoch: int,
        rows: Sequence[Sequence[Any]],
        columns: Optional[Sequence[str]] = None,
        check_leaks: bool = True,
    ) -> InvariantReport:
        """The scan's output must equal one ``AT EPOCH`` snapshot."""
        report = InvariantReport(f"v2s:{table}@{epoch}")
        selection = ", ".join(columns) if columns else "*"
        session = self._session()
        try:
            snapshot = _multiset(
                session.execute(
                    f"AT EPOCH {epoch} SELECT {selection} FROM {table}"
                ).rows
            )
        finally:
            session.close()
        actual = _multiset(rows)
        if actual == snapshot:
            report.passed("epoch-snapshot")
        else:
            report.violated(
                "epoch-snapshot",
                f"scan produced {len(actual)} rows but epoch {epoch} "
                f"snapshot of {table!r} holds {len(snapshot)}",
            )
        if check_leaks:
            report.merge(self.check_no_leaks())
        return report

    # -- result cache -----------------------------------------------------------
    def check_no_stale_reads(
        self,
        observations: Sequence[Tuple[str, int, Sequence[Sequence[Any]]]],
    ) -> InvariantReport:
        """Every (possibly cached) answer must equal its uncached replay.

        ``observations`` is one ``(sql, snapshot_epoch, rows)`` triple per
        read the workload recorded.  Each is replayed ``AT EPOCH`` on a
        fresh session with ``SET RESULT_CACHE = 'off'``; an answer that
        differs from its cold replay is a **stale read** — the one thing
        the (digest, epoch, catalog version) cache key is meant to make
        structurally impossible.  Reads whose epoch has since been merged
        out below the Ancient History Mark can no longer be replayed and
        surface as warnings, never violations.
        """
        from repro.vertica.errors import TransactionError

        report = InvariantReport("cache-coherence")
        stale = 0
        unreplayable = 0
        for index, (sql, epoch, rows) in enumerate(observations):
            session = self._session()
            try:
                session.execute("SET RESULT_CACHE = 'off'")
                replay = session.execute(f"AT EPOCH {epoch} {sql}")
            except TransactionError:
                unreplayable += 1
                continue
            finally:
                session.close()
            if _multiset(rows) != _multiset(replay.rows):
                stale += 1
                if stale <= 3:  # cap the detail, never the count
                    report.violated(
                        "no-stale-reads",
                        f"observation {index} at epoch {epoch} returned "
                        f"{len(rows)} row(s) differing from its uncached "
                        f"replay ({len(replay.rows)} row(s)): {sql!r}",
                    )
        if stale > 3:
            report.violated(
                "no-stale-reads",
                f"{stale} of {len(observations)} observations were stale "
                f"(first 3 detailed above)",
            )
        if not stale:
            report.passed("no-stale-reads")
        if unreplayable:
            report.warn(
                "stale-read-replays-skipped",
                f"{unreplayable} observation(s) pinned epochs now below "
                f"the AHM and could not be replayed",
            )
        return report

    # -- staging transport ------------------------------------------------------
    def check_no_orphaned_staging(self, hdfs,
                                  prefix: str = "/staging") -> InvariantReport:
        """No staging files may outlive their job on the distributed FS.

        The rename-free commit protocol writes attempt files and a
        ``_MANIFEST`` under ``<staging_root>/<job>/``; cleanup must sweep
        the whole job directory whether the save committed or failed.
        Anything still listed under ``prefix`` after the run — loser
        attempts, partial writes, stale manifests — is leaked storage the
        next job can never reclaim.
        """
        report = InvariantReport("staging")
        leftovers = sorted(hdfs.fs.list(prefix.rstrip("/") + "/"))
        if leftovers:
            shown = ", ".join(leftovers[:5])
            if len(leftovers) > 5:
                shown += f", ... ({len(leftovers)} total)"
            report.violated(
                "no-orphaned-staging-files",
                f"files left under {prefix!r} after run: {shown}",
            )
        else:
            report.passed("no-orphaned-staging-files")
        return report

    # -- swallowed teardown errors ------------------------------------------------
    def check_cleanup_failures(self) -> InvariantReport:
        """Surface S2V cleanup errors the connector deliberately swallowed.

        ``_safe_cleanup`` never lets a teardown error mask the save's real
        outcome — it increments ``s2v.cleanup_failures`` and moves on.  A
        nonzero counter is not an invariant violation (the leak checks
        above catch any state it stranded), but it must be *visible*, so
        it surfaces as a warning in every audit instead of rotting in an
        unread counter.
        """
        from repro import telemetry

        report = InvariantReport("cleanup")
        count = int(telemetry.counter("s2v.cleanup_failures").value)
        if count:
            report.warn(
                "cleanup-failures-surfaced",
                f"{count} S2V cleanup error(s) were swallowed during "
                f"teardown (s2v.cleanup_failures counter)",
            )
        else:
            report.passed("cleanup-failures-surfaced")
        return report

    # -- global hygiene ---------------------------------------------------------
    def check_no_leaks(self) -> InvariantReport:
        """No held locks, no stranded sessions, all nodes recovered."""
        report = InvariantReport("leaks")
        held = self.db.locks.held_tables()
        if held:
            report.violated(
                "no-leaked-locks",
                f"locks still held after run: {held}",
            )
        else:
            report.passed("no-leaked-locks")
        stranded = {}
        for node, baseline in self._baseline_sessions.items():
            delta = self.db.session_count(node) - baseline
            # sessions the client pool is deliberately holding idle
            delta -= self._pool_idle(node) - self._baseline_idle.get(node, 0)
            if delta:
                stranded[node] = delta
        if stranded:
            report.violated(
                "no-leaked-sessions",
                f"session count deltas vs baseline: {stranded}",
            )
        else:
            report.passed("no-leaked-sessions")
        down = [
            node for node, state in self.db.node_states.items()
            if state != "UP"
        ]
        if down:
            report.violated(
                "nodes-recovered",
                f"nodes still DOWN after run: {down}",
            )
        else:
            report.passed("nodes-recovered")
        wlm = getattr(self.cluster, "wlm", None)
        if wlm is not None:
            # The check only exists on WLM runs, so non-WLM audits keep
            # their historical check counts.
            leaked = wlm.leaked()
            if leaked:
                report.violated(
                    "no-leaked-pool-slots",
                    f"resource pools still busy after run: {leaked}",
                )
            else:
                report.passed("no-leaked-pool-slots")
        return report
