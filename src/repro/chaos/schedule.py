"""Declarative chaos schedules: *what* goes wrong, *when*, reproducibly.

A :class:`ChaosSchedule` is pure data — a list of timed
:class:`ChaosAction` objects (executor crashes, link degradations,
Vertica node restarts, lock storms) plus trigger rules that fire on
observed activity (:class:`ProbeRule` kills task attempts at fault-probe
points, :class:`StatementRule` severs JDBC connections around matching
statements).  The :class:`~repro.chaos.controller.ChaosController`
interprets the schedule against a live fabric.

Everything is deterministic: timed actions carry explicit simulation
times, and the trigger rules draw from :func:`~repro.vertica.hashring.
vertica_hash` seeded by the schedule's seed — never from wall-clock
randomness — so a failing run replays exactly from its seed alone.

``ChaosSchedule.random(seed, ...)`` derives a full schedule from one
integer, which is how the soak harness covers many distinct fault
interleavings while keeping each one replayable.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple

#: fault families :meth:`ChaosSchedule.random` can draw from by default.
#: ``pool_storm`` is deliberately NOT in this tuple: adding it would shift
#: every existing seed's draw sequence.  WLM-aware soaks opt in by passing
#: ``families=FAMILIES + ("pool_storm",)`` together with ``pools=...``.
FAMILIES = (
    "executor_crash",
    "link_degrade",
    "lock_storm",
    "vertica_restart",
    "connection_sever",
    "task_kill",
)

#: every family random() understands, including the opt-in ones
ALL_FAMILIES = FAMILIES + ("pool_storm",)


class ChaosError(ValueError):
    """An invalid chaos schedule or action."""


class ChaosAction:
    """Base timed action; fires once at ``at`` (simulated seconds)."""

    family = "generic"

    def __init__(self, at: float):
        if at < 0:
            raise ChaosError(f"action time must be >= 0: {at}")
        self.at = at

    def apply(self, controller) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def describe(self) -> str:
        return f"t={self.at:.3f} {self.family}"


class ExecutorCrash(ChaosAction):
    """Kill the executor on ``node_name``; optionally restart it later.

    Live attempts on the executor die with
    :class:`~repro.spark.scheduler.ExecutorLost` and are relaunched on
    surviving executors without consuming ``max_failures`` budget.
    """

    family = "executor_crash"

    def __init__(self, node_name: str, at: float,
                 restart_after: Optional[float] = None):
        super().__init__(at)
        if restart_after is not None and restart_after <= 0:
            raise ChaosError(f"restart_after must be > 0: {restart_after}")
        self.node_name = node_name
        self.restart_after = restart_after

    def apply(self, controller) -> None:
        controller.fire_executor_crash(self)

    def describe(self) -> str:
        restart = (
            f", restart +{self.restart_after:.3f}s"
            if self.restart_after is not None else ""
        )
        return f"t={self.at:.3f} executor_crash {self.node_name}{restart}"


class LinkDegrade(ChaosAction):
    """Degrade one fair-share link to ``factor`` of nominal capacity.

    ``factor=0`` is a full partition: flows stall at rate zero until the
    mandatory heal at ``at + duration`` restores nominal capacity.  The
    heal is not optional — a permanently dead link would strand flows
    (and the simulation) forever.
    """

    family = "link_degrade"

    def __init__(self, link_name: str, at: float, factor: float, duration: float):
        super().__init__(at)
        if not 0.0 <= factor < 1.0:
            raise ChaosError(f"degrade factor must be in [0, 1): {factor}")
        if duration <= 0:
            raise ChaosError(f"degrade duration must be > 0: {duration}")
        self.link_name = link_name
        self.factor = factor
        self.duration = duration

    def apply(self, controller) -> None:
        controller.fire_link_degrade(self)

    def describe(self) -> str:
        kind = "partition" if self.factor == 0.0 else f"degrade x{self.factor}"
        return (
            f"t={self.at:.3f} link_{kind} {self.link_name} "
            f"for {self.duration:.3f}s"
        )


class VerticaRestart(ChaosAction):
    """Mark a Vertica node DOWN, recovering it after ``downtime``.

    While down, new connections to the node fail (or fail over, with
    ``failover_connect``) and statements on connections already bound to
    it are severed by the controller.
    """

    family = "vertica_restart"

    def __init__(self, node_name: str, at: float, downtime: float):
        super().__init__(at)
        if downtime <= 0:
            raise ChaosError(f"downtime must be > 0: {downtime}")
        self.node_name = node_name
        self.downtime = downtime

    def apply(self, controller) -> None:
        controller.fire_vertica_restart(self)

    def describe(self) -> str:
        return (
            f"t={self.at:.3f} vertica_restart {self.node_name} "
            f"down {self.downtime:.3f}s"
        )


class LockStorm(ChaosAction):
    """Repeatedly grab-and-drop an exclusive lock on one table.

    Models a rogue writer hammering a shared table: for ``duration``
    seconds a background transaction takes the X lock, holds it for
    ``hold`` seconds, releases, and pauses ``gap`` seconds — driving
    concurrent UPDATEs into their :class:`~repro.vertica.errors.
    LockContention` retry paths.
    """

    family = "lock_storm"

    def __init__(self, table: str, at: float, duration: float,
                 hold: float = 0.004, gap: float = 0.003):
        super().__init__(at)
        if duration <= 0:
            raise ChaosError(f"storm duration must be > 0: {duration}")
        if hold <= 0 or gap <= 0:
            raise ChaosError(f"hold/gap must be > 0: {hold}/{gap}")
        self.table = table.upper()
        self.duration = duration
        self.hold = hold
        self.gap = gap

    def apply(self, controller) -> None:
        controller.fire_lock_storm(self)

    def describe(self) -> str:
        return (
            f"t={self.at:.3f} lock_storm {self.table} "
            f"for {self.duration:.3f}s (hold {self.hold}, gap {self.gap})"
        )


class PoolStorm(ChaosAction):
    """Flood one WLM resource pool with synthetic admission claims.

    Models a burst of rogue tenants: for ``duration`` seconds,
    ``claims`` background processes repeatedly admit into ``pool``, hold
    their slot + memory grant for ``hold`` seconds, release, and pause
    ``gap`` seconds — driving real statements into admission queues,
    cascades, and :class:`~repro.vertica.errors.AdmissionTimeout`.  A
    no-op on clusters running without WLM.
    """

    family = "pool_storm"

    def __init__(self, pool: str, at: float, duration: float,
                 claims: int = 4, hold: float = 0.05, gap: float = 0.01):
        super().__init__(at)
        if duration <= 0:
            raise ChaosError(f"storm duration must be > 0: {duration}")
        if claims < 1:
            raise ChaosError(f"claims must be >= 1: {claims}")
        if hold <= 0 or gap <= 0:
            raise ChaosError(f"hold/gap must be > 0: {hold}/{gap}")
        self.pool = pool.upper()
        self.duration = duration
        self.claims = claims
        self.hold = hold
        self.gap = gap

    def apply(self, controller) -> None:
        controller.fire_pool_storm(self)

    def describe(self) -> str:
        return (
            f"t={self.at:.3f} pool_storm {self.pool} "
            f"x{self.claims} for {self.duration:.3f}s "
            f"(hold {self.hold}, gap {self.gap})"
        )


class ProbeRule:
    """Kill a deterministic fraction of task attempts at probe points.

    ``label`` is a substring filter ("" matches every probe).  Draws hash
    the schedule seed with the attempt identity, so a given seed kills
    the same attempts every run.  ``max_attempt`` exempts later attempts
    (so a task is never starved by this rule alone) and ``max_kills``
    caps the rule's total budget.
    """

    family = "task_kill"

    def __init__(self, label: str = "", rate: float = 0.05,
                 max_kills: int = 4, max_attempt: int = 2):
        if not 0.0 <= rate <= 1.0:
            raise ChaosError(f"rate must be in [0, 1]: {rate}")
        if max_kills < 1 or max_attempt < 1:
            raise ChaosError("max_kills and max_attempt must be >= 1")
        self.label = label
        self.rate = rate
        self.max_kills = max_kills
        self.max_attempt = max_attempt

    def matches(self, label: str) -> bool:
        return self.label in label

    def describe(self) -> str:
        where = self.label or "any probe"
        return (
            f"task_kill at {where!r} rate={self.rate:.3f} "
            f"budget={self.max_kills}"
        )


class StatementRule:
    """Sever a connection around statements matching ``keyword``.

    ``point="before"`` drops the connection before the statement reaches
    the server (it never executes); ``point="after"`` drops it once the
    server has executed but before the client learns the outcome — the
    classic did-my-COMMIT-land ambiguity.  Only task connections (those
    with a client node) are targeted: driver control-plane connections
    stay alive, like the paper's negligible control traffic.
    """

    family = "connection_sever"

    def __init__(self, keyword: str, rate: float = 0.1,
                 point: str = "before", max_severs: int = 2):
        if point not in ("before", "after"):
            raise ChaosError(f"point must be 'before' or 'after': {point!r}")
        if not 0.0 <= rate <= 1.0:
            raise ChaosError(f"rate must be in [0, 1]: {rate}")
        if max_severs < 1:
            raise ChaosError(f"max_severs must be >= 1: {max_severs}")
        self.keyword = keyword.upper()
        self.rate = rate
        self.point = point
        self.max_severs = max_severs

    def matches(self, sql: str) -> bool:
        head = sql.lstrip().split(None, 1)[0].upper() if sql.strip() else ""
        return head == self.keyword

    def describe(self) -> str:
        return (
            f"connection_sever {self.point} {self.keyword} "
            f"rate={self.rate:.3f} budget={self.max_severs}"
        )


class ChaosSchedule:
    """A complete, reproducible chaos plan for one run."""

    def __init__(
        self,
        seed: int = 0,
        actions: Iterable[ChaosAction] = (),
        probe_rules: Iterable[ProbeRule] = (),
        statement_rules: Iterable[StatementRule] = (),
    ):
        self.seed = seed
        self.actions: List[ChaosAction] = sorted(actions, key=lambda a: a.at)
        self.probe_rules: List[ProbeRule] = list(probe_rules)
        self.statement_rules: List[StatementRule] = list(statement_rules)

    def __bool__(self) -> bool:
        return bool(self.actions or self.probe_rules or self.statement_rules)

    def describe(self) -> List[str]:
        lines = [f"seed={self.seed}"]
        lines.extend(action.describe() for action in self.actions)
        lines.extend(rule.describe() for rule in self.probe_rules)
        lines.extend(rule.describe() for rule in self.statement_rules)
        return lines

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        spark_nodes: Sequence[str] = (),
        vertica_nodes: Sequence[str] = (),
        link_names: Sequence[str] = (),
        tables: Sequence[str] = ("S2V_JOB_STATUS",),
        horizon: float = 10.0,
        events: int = 3,
        families: Sequence[str] = FAMILIES,
        sever_keywords: Sequence[str] = ("COPY", "COMMIT", "UPDATE"),
        pools: Sequence[str] = (),
    ) -> "ChaosSchedule":
        """Derive a schedule from one integer seed.

        Families whose targets are unavailable (no spark nodes for
        ``executor_crash``, no link names for ``link_degrade``, ...) are
        skipped, so callers pass whatever topology they actually have.
        ``pool_storm`` fires only when explicitly requested via
        ``families`` *and* ``pools`` names at least one resource pool —
        keeping draw sequences of pre-WLM seeds unchanged.
        """
        rng = random.Random(seed)
        usable = [f for f in families if f in ALL_FAMILIES]
        if not usable:
            raise ChaosError(f"no known families in {families!r}")
        actions: List[ChaosAction] = []
        probe_rules: List[ProbeRule] = []
        statement_rules: List[StatementRule] = []
        for __ in range(events):
            family = rng.choice(usable)
            at = rng.uniform(0.05, max(horizon, 0.1))
            if family == "executor_crash" and spark_nodes:
                actions.append(ExecutorCrash(
                    rng.choice(list(spark_nodes)), at,
                    restart_after=rng.uniform(0.5, horizon / 2 + 0.5),
                ))
            elif family == "link_degrade" and link_names:
                actions.append(LinkDegrade(
                    rng.choice(list(link_names)), at,
                    factor=rng.choice([0.0, 0.0, 0.1, 0.25]),
                    duration=rng.uniform(0.3, horizon / 3 + 0.3),
                ))
            elif family == "vertica_restart" and vertica_nodes:
                actions.append(VerticaRestart(
                    rng.choice(list(vertica_nodes)), at,
                    downtime=rng.uniform(0.3, horizon / 3 + 0.3),
                ))
            elif family == "lock_storm" and tables:
                actions.append(LockStorm(
                    rng.choice(list(tables)), at,
                    duration=rng.uniform(0.2, 1.2),
                    hold=rng.uniform(0.002, 0.008),
                    gap=rng.uniform(0.002, 0.006),
                ))
            elif family == "connection_sever":
                statement_rules.append(StatementRule(
                    rng.choice(list(sever_keywords)),
                    rate=rng.uniform(0.05, 0.3),
                    point=rng.choice(["before", "after"]),
                    max_severs=rng.randint(1, 3),
                ))
            elif family == "task_kill":
                probe_rules.append(ProbeRule(
                    label=rng.choice(["", "s2v:", "phase1"]),
                    rate=rng.uniform(0.02, 0.12),
                    max_kills=rng.randint(1, 4),
                ))
            elif family == "pool_storm" and pools:
                actions.append(PoolStorm(
                    rng.choice(list(pools)), at,
                    duration=rng.uniform(0.3, 1.5),
                    claims=rng.randint(2, 6),
                    hold=rng.uniform(0.02, 0.1),
                    gap=rng.uniform(0.005, 0.02),
                ))
        return cls(seed, actions, probe_rules, statement_rules)
