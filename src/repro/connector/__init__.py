"""The HPE Vertica Connector for Apache Spark — the paper's contribution.

Three components, all initiated from the Spark side (Figure 1):

- **V2S** (:mod:`repro.connector.v2s`) — load Vertica tables (and views /
  unsegmented tables, via synthetic hash ranges) into Spark DataFrames
  with locality-aware hash-range queries, epoch-pinned snapshot
  consistency and project/filter/count pushdown.
- **S2V** (:mod:`repro.connector.s2v`) — save Spark DataFrames to Vertica
  with exactly-once semantics via the 5-phase staging-table protocol
  (Figure 5), Avro encoding and the COPY bulk-load path.
- **MD** (:mod:`repro.connector.md`) — deploy PMML models into Vertica's
  DFS and score them in-database through the ``PMMLPredict`` UDx.

:mod:`repro.connector.cluster` hosts the simulation bridge: a Vertica
database whose sessions run inside the discrete-event simulator, charging
network flows and CPU time according to a calibrated cost model.

The Spark-facing entry point is the registered data source
``com.vertica.spark.datasource.DefaultSource`` (alias ``"vertica"``),
used exactly as in Table 1 of the paper::

    df = spark.read.format("vertica").options(
        db=vc, table="T", numpartitions=32).load()
    df.write.format("vertica").options(db=vc, table="T2").mode("overwrite").save()
"""

from repro.connector.costmodel import NULL_COST_MODEL, PAPER_COST_MODEL, VerticaCostModel
from repro.connector.cluster import SimVerticaCluster
from repro.connector.jdbc import SimVerticaConnection
from repro.connector.options import ConnectorOptions, OptionsError
from repro.connector.v2s import VerticaRelation
from repro.connector.s2v import S2VWriter, S2VResult
from repro.connector.md import (
    PMML_MODELS_TABLE,
    deploy_pmml_model,
    get_pmml,
    install_pmml_udx,
    list_models,
)
from repro.connector.defaultsource import DefaultSource, VERTICA_SOURCE_NAME
from repro.connector.jobs import (
    cleanup_all_orphans,
    cleanup_job,
    find_orphaned_jobs,
    job_status,
    list_jobs,
)
from repro.connector.rdd_api import (
    rdd_to_vertica,
    vertica_to_labeled_points,
    vertica_to_rdd,
)
from repro.connector.twostage import TwoStageWriter, save_two_stage

__all__ = [
    "ConnectorOptions",
    "DefaultSource",
    "NULL_COST_MODEL",
    "OptionsError",
    "PAPER_COST_MODEL",
    "PMML_MODELS_TABLE",
    "S2VResult",
    "S2VWriter",
    "SimVerticaCluster",
    "SimVerticaConnection",
    "TwoStageWriter",
    "VERTICA_SOURCE_NAME",
    "VerticaCostModel",
    "VerticaRelation",
    "cleanup_all_orphans",
    "cleanup_job",
    "deploy_pmml_model",
    "find_orphaned_jobs",
    "get_pmml",
    "install_pmml_udx",
    "job_status",
    "list_jobs",
    "list_models",
    "rdd_to_vertica",
    "save_two_stage",
    "vertica_to_labeled_points",
    "vertica_to_rdd",
]
