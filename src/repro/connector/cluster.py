"""The simulation bridge: a Vertica cluster living inside the simulator.

``SimVerticaCluster`` owns a :class:`~repro.vertica.VerticaDatabase` and
one :class:`~repro.sim.cluster.SimNode` per database node.  Matching the
paper's deployment, each node has **two** NICs: ``internal`` carries
Vertica-to-Vertica traffic (shuffles, replication) and ``external``
carries Vertica↔Spark traffic — "this keeps all Vertica internal traffic
on one network and Spark traffic on the other" (§4.1).

Connections are opened against a named node; every statement executed
over a connection charges simulated CPU/network per the cluster's
:class:`~repro.connector.costmodel.VerticaCostModel`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim import Environment
from repro.sim.cluster import GBE_BYTES_PER_SEC, SimCluster, SimNode
from repro.vertica import VerticaDatabase
from repro.connector.costmodel import NULL_COST_MODEL, VerticaCostModel


class SimVerticaCluster:
    """A Vertica database plus its simulated machines."""

    def __init__(
        self,
        env: Optional[Environment] = None,
        sim_cluster: Optional[SimCluster] = None,
        num_nodes: int = 4,
        cost_model: Optional[VerticaCostModel] = None,
        k_safety: int = 0,
        max_client_sessions: int = 100,
        node_cores: int = 32,
        internal_bandwidth: float = GBE_BYTES_PER_SEC,
        external_bandwidth: float = GBE_BYTES_PER_SEC,
        node_prefix: str = "node",
        copy_ingest_rate: float = 96e6,
        failover_connect: bool = False,
        wlm: bool = False,
        session_pool_size: int = 0,
    ):
        if env is None and sim_cluster is not None:
            env = sim_cluster.env
        self.env = env if env is not None else Environment()
        self.sim_cluster = (
            sim_cluster if sim_cluster is not None else SimCluster(self.env)
        )
        self.cost_model = cost_model if cost_model is not None else NULL_COST_MODEL
        #: redirect connections aimed at DOWN nodes to a live one
        self.failover_connect = failover_connect
        #: installed by :class:`repro.chaos.ChaosController`; when set, every
        #: statement consults it for connection-sever injections
        self.chaos = None
        node_names = [f"{node_prefix}{i + 1:04d}" for i in range(num_nodes)]
        self.db = VerticaDatabase(
            node_names=node_names,
            k_safety=k_safety,
            max_client_sessions=max_client_sessions,
        )
        self.sim_nodes: Dict[str, SimNode] = {}
        for name in node_names:
            self.sim_nodes[name] = self.sim_cluster.add_node(
                name,
                cores=node_cores,
                nics={
                    self.cost_model.internal_nic: internal_bandwidth,
                    self.cost_model.external_nic: external_bandwidth,
                },
            )
        # Per-node COPY ingest ceiling: Vertica's load pipeline (parse,
        # encode, sort into ROS) sustains a bounded byte rate per node no
        # matter how many parallel COPY streams feed it.  Modelled as a
        # virtual link every inbound COPY flow traverses (0 disables).
        from repro.sim.network import Link

        self.ingest_links: Dict[str, Link] = {}
        if copy_ingest_rate > 0:
            self.ingest_links = {
                name: Link(self.env, f"{name}.ingest", copy_ingest_rate)
                for name in node_names
            }
        # WLM admission control (opt-in): every query/DML statement over a
        # connection then acquires slot + memory grants from its session's
        # resource pool before planning.
        self.wlm = None
        if wlm:
            from repro.wlm import AdmissionController

            self.wlm = AdmissionController(self.env, self.db.catalog)
            # Charge result-cache residency into the GENERAL pool's memory
            # ledger: cached bytes hold real grants and compete with query
            # admission (released on eviction), but are excluded from leak
            # detection — they legitimately outlive any single statement.
            self.db.result_cache.attach_account(
                self.wlm.cache_account("GENERAL")
            )
        # Client-side session pooling (opt-in): connections check their
        # sessions back into a bounded per-node free list on close.
        self.session_pool = None
        if session_pool_size > 0:
            from repro.wlm import SessionPool

            self.session_pool = SessionPool(
                self.db,
                max_idle_per_node=session_pool_size,
                failover=failover_connect,
            )

    @property
    def node_names(self) -> List[str]:
        return list(self.db.node_names)

    def sim_node(self, name: str) -> SimNode:
        return self.sim_nodes[name]

    def connect(
        self,
        node: Optional[str] = None,
        client_node: Optional[SimNode] = None,
        resource_pool: Optional[str] = None,
    ) -> "SimVerticaConnection":  # noqa: F821
        """Open a connection to one Vertica node.

        ``client_node`` is the simulated machine on the Spark side holding
        the socket (the executor's node for tasks, ``None`` for a driver
        connection — driver traffic is then free, like the paper's
        negligible control-plane traffic).

        ``resource_pool`` selects the session's WLM pool, as if it opened
        with ``SET RESOURCE_POOL``.  With a session pool installed the
        session may be a reused idle one — the connection then skips its
        connect-handshake latency.
        """
        from repro.connector.jdbc import SimVerticaConnection

        target = node or self.node_names[0]
        if self.session_pool is not None:
            session, reused = self.session_pool.checkout(
                target, resource_pool=resource_pool
            )
            conn = SimVerticaConnection(self, session, session.node, client_node)
            conn._connected = reused
            return conn
        session = self.db.connect(
            target, failover=self.failover_connect, resource_pool=resource_pool
        )
        return SimVerticaConnection(self, session, session.node, client_node)

    def run(self, process_generator, name: str = "driver"):
        """Run one driver-side generator to completion on the sim clock."""
        return self.env.run(self.env.process(process_generator, name=name))

    # -- shuffle accounting (for the locality experiments) ---------------------
    def internal_bytes(self) -> float:
        """Total bytes that crossed the Vertica-internal network."""
        total = 0.0
        for node in self.sim_nodes.values():
            total += node.nics[self.cost_model.internal_nic].tx.bytes_total
        return total

    def external_bytes(self) -> float:
        total = 0.0
        for node in self.sim_nodes.values():
            total += node.nics[self.cost_model.external_nic].tx.bytes_total
        return total
