"""Cost models: how statements translate into simulated time.

The database substrate executes statements instantaneously and reports
*what it touched* (rows scanned/produced/written per node, bytes
produced).  A :class:`VerticaCostModel` translates those counts into
CPU-seconds and network bytes, which the JDBC bridge turns into core
occupancy and fair-share network flows.

``NULL_COST_MODEL`` (every parameter zero) is used by unit tests: the
protocol code runs identically but the clock never moves.
``PAPER_COST_MODEL`` is calibrated against the paper's testbed (§4.1):
1 GbE NICs (~125 MB/s), a per-query producer pipeline that sustains
~40 MB/s on its own (Table 2's 38 MB/s steady state for one connection
per node), textual JDBC wire encoding, and per-row CPU overheads that
reproduce the Figure 9 dimensionality effect.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.spark.row import StructType


class VerticaCostModel:
    """Tunable knobs mapping statement counts to simulated resources."""

    def __init__(
        self,
        connect_latency: float = 0.0,
        query_latency: float = 0.0,
        ddl_latency: float = 0.0,
        query_plan_cpu: float = 0.0,
        scan_cpu_per_row: float = 0.0,
        agg_cpu_per_row: float = 0.0,
        output_cpu_per_row: float = 0.0,
        output_cpu_per_byte: float = 0.0,
        per_connection_rate_cap: Optional[float] = None,
        load_cpu_per_row: float = 0.0,
        load_cpu_per_byte: float = 0.0,
        columnar_load_cpu_factor: float = 1.0,
        encode_cpu_per_row: float = 0.0,
        encode_cpu_per_byte: float = 0.0,
        columnar_encode_cpu_factor: float = 1.0,
        copy_rate_cap: Optional[float] = None,
        jdbc_float_bytes: int = 19,
        jdbc_int_bytes: int = 12,
        jdbc_bool_bytes: int = 5,
        internal_nic: str = "internal",
        external_nic: str = "external",
    ):
        self.connect_latency = connect_latency
        self.query_latency = query_latency
        #: CREATE/DROP/ALTER are heavyweight catalog transactions in Vertica
        self.ddl_latency = ddl_latency
        self.query_plan_cpu = query_plan_cpu
        self.scan_cpu_per_row = scan_cpu_per_row
        #: per input row of a GROUP BY/aggregate: group-hash + accumulate
        self.agg_cpu_per_row = agg_cpu_per_row
        self.output_cpu_per_row = output_cpu_per_row
        self.output_cpu_per_byte = output_cpu_per_byte
        #: max throughput of one query's producer pipeline (V2S stream)
        self.per_connection_rate_cap = per_connection_rate_cap
        self.load_cpu_per_row = load_cpu_per_row
        self.load_cpu_per_byte = load_cpu_per_byte
        #: per-row parse discount for COPY FORMAT COLUMNAR: bulk columnar
        #: loads map column chunks straight into the ROS and skip the
        #: per-row Avro/CSV unpack that dominates row-wise COPY CPU
        self.columnar_load_cpu_factor = columnar_load_cpu_factor
        #: Spark-side Avro encode cost (charged on the executor's node)
        self.encode_cpu_per_row = encode_cpu_per_row
        self.encode_cpu_per_byte = encode_cpu_per_byte
        #: per-row discount when encoding columnar staging files: the
        #: writer packs whole column chunks instead of marshaling each
        #: row's fields through the Avro datum path
        self.columnar_encode_cpu_factor = columnar_encode_cpu_factor
        #: max throughput of one COPY ingest stream (S2V alternation cap)
        self.copy_rate_cap = copy_rate_cap
        self.jdbc_float_bytes = jdbc_float_bytes
        self.jdbc_int_bytes = jdbc_int_bytes
        self.jdbc_bool_bytes = jdbc_bool_bytes
        self.internal_nic = internal_nic
        self.external_nic = external_nic

    # -- wire sizes -----------------------------------------------------------
    def jdbc_value_bytes(self, value: Any) -> int:
        """Textual JDBC wire width of one value (plus field delimiter)."""
        if value is None:
            return 1
        if isinstance(value, bool):
            return self.jdbc_bool_bytes
        if isinstance(value, float):
            return self.jdbc_float_bytes
        if isinstance(value, int):
            return self.jdbc_int_bytes
        if isinstance(value, str):
            return len(value.encode("utf-8")) + 1
        return 9

    def jdbc_row_bytes(self, row: Sequence[Any]) -> int:
        return sum(self.jdbc_value_bytes(v) for v in row)

    def jdbc_schema_row_bytes(self, schema: StructType, avg_string: int = 60) -> int:
        """Estimated wire width of one row of ``schema``."""
        total = 0
        for field in schema:
            if field.data_type == "double":
                total += self.jdbc_float_bytes
            elif field.data_type == "long":
                total += self.jdbc_int_bytes
            elif field.data_type == "boolean":
                total += self.jdbc_bool_bytes
            else:
                total += avg_string + 1
        return total


#: zero-cost model for functional tests — the clock never moves
NULL_COST_MODEL = VerticaCostModel()

#: calibrated against the paper's testbed (see module docstring and
#: EXPERIMENTS.md for the calibration rationale per parameter)
PAPER_COST_MODEL = VerticaCostModel(
    connect_latency=0.8,
    query_latency=0.02,
    ddl_latency=0.35,
    query_plan_cpu=0.03,
    scan_cpu_per_row=0.15e-6,
    agg_cpu_per_row=0.5e-6,  # group-hash + accumulator update per input row
    output_cpu_per_row=6e-6,  # JDBC marshal + per-row hash eval (Fig 9)
    output_cpu_per_byte=0.4e-9,
    per_connection_rate_cap=40e6,  # Table 2: one connection ≈ 38-40 MB/s
    load_cpu_per_row=8e-6,  # COPY parse/unpack per Avro row (Fig 9, Tab 3)
    load_cpu_per_byte=1.2e-9,
    columnar_load_cpu_factor=0.25,  # columnar bulk load skips row unpack
    encode_cpu_per_row=3e-6,  # Spark-side Avro encode per row
    encode_cpu_per_byte=2.0e-9,
    columnar_encode_cpu_factor=0.25,  # column-chunk packing, no row marshal
    copy_rate_cap=9e6,  # single COPY ingest stream
    jdbc_float_bytes=22,
)
