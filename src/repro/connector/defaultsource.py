"""The connector's DefaultSource: the Data Source API entry point.

Registered under the real connector's fully-qualified name
``com.vertica.spark.datasource.DefaultSource`` and the short alias
``vertica``, so the LOAD/SAVE syntax of Table 1 works verbatim.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.connector.s2v import S2VResult, S2VWriter
from repro.connector.v2s import VerticaRelation
from repro.spark.datasource import (
    CreatableRelationProvider,
    RelationProvider,
    register_source,
)

VERTICA_SOURCE_NAME = "com.vertica.spark.datasource.DefaultSource"


class DefaultSource(RelationProvider, CreatableRelationProvider):
    """LOAD → :class:`VerticaRelation`; SAVE → :class:`S2VWriter`."""

    #: the result of the last save, for callers that want the job record
    last_save_result: Optional[S2VResult] = None

    def create_relation(self, session, options: Dict[str, Any]) -> VerticaRelation:
        return VerticaRelation(session, options)

    def save(self, session, mode: str, options: Dict[str, Any], dataframe) -> None:
        writer = S2VWriter(session, mode, options, dataframe)
        DefaultSource.last_save_result = writer.save()


register_source(VERTICA_SOURCE_NAME, DefaultSource)
register_source("vertica", DefaultSource)
