"""JDBC-like connections that charge simulated time.

A :class:`SimVerticaConnection` wraps one database session bound to one
Vertica node.  ``execute`` is a *generator* (run inside a simulation
process — e.g. a Spark task): the statement itself executes synchronously
against the database, then the connection charges the simulated resources
it implies:

- round-trip latency and query planning CPU on the contacted node;
- scan/marshal CPU on every node that produced rows;
- result bytes flowing node-locally to the contacted node over the
  *internal* network (the shuffle the paper's locality-aware queries
  eliminate), then out to the client over the *external* network, capped
  at the per-connection producer rate;
- for COPY: the payload flowing in over the external network, then
  redistributing to segment owners internally, plus parse CPU.

``weight`` scales byte/CPU charges — the virtual scale factor that lets
protocols move small real row sets while the clock sees paper-sized data.
"""

from __future__ import annotations

import itertools

from typing import Generator, Optional, Union

from repro import telemetry
from repro.sim.cluster import SimNode
from repro.vertica.engine import ResultSet
from repro.vertica.errors import LockContention, RetriesExhausted, VerticaError
from repro.vertica.hashring import vertica_hash
from repro.vertica.session import Session


class ConnectionSevered(VerticaError):
    """The (simulated) TCP connection died under this statement.

    Raised by the chaos layer mid-protocol.  ``acked=True`` means the
    statement had already executed server-side when the link dropped — the
    classic "did my COMMIT land?" ambiguity the S2V protocol must absorb.
    """

    def __init__(self, node_name: str, sql: str, acked: bool):
        when = "after server execution" if acked else "before reaching the server"
        super().__init__(
            f"connection to {node_name} severed {when}: {sql.strip()[:60]!r}"
        )
        self.node_name = node_name
        self.acked = acked


class SimVerticaConnection:
    """One client connection, with cost accounting."""

    _salts = itertools.count(1)

    def __init__(
        self,
        cluster: "SimVerticaCluster",  # noqa: F821
        session: Session,
        node_name: str,
        client_node: Optional[SimNode],
    ):
        self.cluster = cluster
        self.session = session
        self.node_name = node_name
        self.client_node = client_node
        self.weight = 1.0
        self._connected = False
        self._severed = False
        #: per-connection salt decorrelating retry backoff across tasks
        self._retry_salt = next(self._salts)

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Close the connection, or return its session to the cluster pool.

        With a cluster-level :class:`~repro.wlm.sessionpool.SessionPool`
        installed, a healthy session goes back on the free list for the
        next checkout instead of tearing down; severed connections always
        close for real.
        """
        pool = getattr(self.cluster, "session_pool", None)
        if pool is not None and not self._severed:
            pool.checkin(self.session)
        else:
            self.session.close()

    def __enter__(self) -> "SimVerticaConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def sever(self) -> None:
        """Kill the connection: abort any open transaction, refuse reuse."""
        self._severed = True
        self.session.close()

    @property
    def env(self):
        return self.cluster.env

    @property
    def cost_model(self):
        return self.cluster.cost_model

    # -- execution ------------------------------------------------------------
    def execute(
        self,
        sql: str,
        copy_data: Union[bytes, str, None] = None,
        weight: Optional[float] = None,
        output_weight: Optional[float] = None,
    ) -> Generator:
        """Generator: run one statement, charging simulated time.

        Use as ``result = yield from conn.execute(...)`` inside a task.

        ``output_weight`` scales the result-side charges (marshal CPU and
        wire bytes) independently of ``weight`` (which scales the
        input-side scan/aggregate work).  Aggregate queries use this:
        group cardinality does not grow with virtual volume, so their
        few output rows ship at real weight while the scan they
        aggregate is still charged at the virtual scale.
        """
        w = self.weight if weight is None else weight
        w_out = w if output_weight is None else output_weight
        model = self.cost_model
        env = self.env
        contact = self.cluster.sim_nodes[self.node_name]
        chaos = getattr(self.cluster, "chaos", None)
        if self._severed:
            raise ConnectionSevered(self.node_name, sql, acked=False)
        if chaos is not None:
            chaos.on_statement(self, sql, point="before")
        if not self._connected:
            if model.connect_latency:
                yield env.timeout(model.connect_latency)
            self._connected = True
        keyword = sql.lstrip().split(None, 1)[0].upper() if sql.strip() else ""
        is_ddl = keyword in ("CREATE", "DROP", "ALTER", "TRUNCATE")

        # WLM admission: gate query/DML statements through the session's
        # resource pool before any planning happens.  The ticket (slot +
        # memory grant) is held for the statement's whole execution and
        # its queue wait is charged into the statement's CostReport.
        ticket = None
        admission = getattr(self.cluster, "wlm", None)
        if admission is not None and keyword in ("SELECT", "AT", "INSERT",
                                                 "UPDATE", "DELETE", "COPY"):
            ticket = yield from admission.admit(self.session.resource_pool)
        try:
            latency = model.ddl_latency if is_ddl else model.query_latency
            if latency:
                yield env.timeout(latency)
            if model.query_plan_cpu and keyword in ("SELECT", "AT", "INSERT",
                                                    "UPDATE", "DELETE", "COPY"):
                yield from contact.compute(model.query_plan_cpu)

            result = self.session.execute(sql, copy_data=copy_data)

            if ticket is not None:
                result.cost.queue_wait_seconds += ticket.queue_wait
                result.cost.resource_pool = ticket.pool_name
            if copy_data is not None:
                yield from self._charge_copy(result, copy_data, w, sql)
            else:
                yield from self._charge_query(result, w, w_out)
            if chaos is not None:
                chaos.on_statement(self, sql, point="after")
        finally:
            if ticket is not None:
                ticket.release()
        return result

    def retry_delay(self, attempt: int, backoff: float = 0.01) -> float:
        """Capped linear backoff plus deterministic per-connection jitter.

        Without jitter, tasks that hit the same contended table retry in
        lockstep and re-collide forever; the jitter is a hash of the
        connection's salt and the attempt number, so runs stay exactly
        reproducible for a given seed/schedule.
        """
        jitter = (vertica_hash(self._retry_salt, attempt) % 997) / 997.0
        return backoff * (min(attempt, 8) + jitter)

    def execute_with_retry(
        self,
        sql: str,
        weight: Optional[float] = None,
        max_retries: int = 50,
        backoff: float = 0.01,
    ) -> Generator:
        """Retry a statement on lock contention with jittered backoff.

        Only :class:`LockContention` is retried — any other
        :class:`VerticaError` (syntax, catalog, severed connection, ...)
        re-raises immediately.  After ``max_retries`` failed attempts a
        :class:`RetriesExhausted` surfaces instead of the raw contention
        error, so callers can distinguish a spent budget from one more
        transient collision.
        """
        attempt = 0
        wait_started = self.env.now
        while True:
            try:
                result = yield from self.execute(sql, weight=weight)
                if attempt:
                    telemetry.histogram("vertica.lock.wait_seconds").observe(
                        self.env.now - wait_started
                    )
                return result
            except LockContention as contention:
                attempt += 1
                telemetry.counter("vertica.lock.retries").inc()
                if attempt > max_retries:
                    telemetry.counter("vertica.lock.retries_exhausted").inc()
                    raise RetriesExhausted(sql, attempt, contention) from contention
                yield self.env.timeout(self.retry_delay(attempt, backoff))

    # -- cost charging ------------------------------------------------------------
    def _charge_query(
        self, result: ResultSet, w: float, w_out: Optional[float] = None
    ) -> Generator:
        w_out = w if w_out is None else w_out
        model = self.cost_model
        env = self.env
        cluster = self.cluster
        contact = cluster.sim_nodes[self.node_name]
        cost = result.cost

        pending = []
        # A result-cache hit replays the memoised cost *attribution* (so
        # the report matches its cold replay byte for byte) but the rows
        # were never re-scanned or re-aggregated: serving from memory
        # skips that CPU entirely.  The wire/marshal side below is still
        # charged — the client receives the same bytes either way.
        if not getattr(cost, "cache_hit", False):
            # CPU: scanning on every node that read rows.
            for node_name, rows in cost.node_rows_scanned.items():
                seconds = rows * w * model.scan_cpu_per_row
                if seconds > 0:
                    node = cluster.sim_nodes[node_name]
                    pending.append(env.process(node.compute(seconds)))

            # CPU: aggregation (group hashing + accumulator updates) on
            # every node whose rows fed a GROUP BY — the compute a
            # pushed-down aggregate spends server-side instead of
            # shipping raw rows.
            for node_name, rows in cost.node_rows_aggregated.items():
                seconds = rows * w * model.agg_cpu_per_row
                if seconds > 0:
                    node = cluster.sim_nodes[node_name]
                    pending.append(env.process(node.compute(seconds)))

        # Wire bytes: textual JDBC encoding of the actual result rows,
        # attributed to producing nodes proportionally.
        total_wire = float(sum(model.jdbc_row_bytes(row) for row in result.rows))
        total_binary = sum(cost.node_output_bytes.values()) or 1.0
        for node_name, binary_bytes in cost.node_output_bytes.items():
            share = total_wire * (binary_bytes / total_binary)
            rows = cost.node_rows_output.get(node_name, 0)
            seconds = (
                rows * w_out * model.output_cpu_per_row
                + share * w_out * model.output_cpu_per_byte
            )
            node = cluster.sim_nodes[node_name]
            if seconds > 0:
                pending.append(env.process(node.compute(seconds)))
            if node_name != self.node_name and share * w_out > 0:
                # Shuffle: the row lives elsewhere; it crosses the internal
                # network to reach the contacted node first.
                pending.append(
                    cluster.sim_cluster.transfer(
                        node,
                        contact,
                        share * w_out,
                        nic=model.internal_nic,
                        name=f"shuffle:{node_name}->{self.node_name}",
                    )
                )
        # The producer pipeline runs concurrently with the outbound result
        # stream (scan/marshal CPU, intra-cluster shuffle and the client
        # transfer all overlap), occupying one stream slot on the contacted
        # node for the duration; with more concurrent connections than
        # slots, streams queue — part of the "too much parallelism"
        # overhead in Figure 6.
        slot = None
        if self.client_node is not None and total_wire * w_out > 0:
            slot = contact.streams.request()
            yield slot
            pending.append(
                cluster.sim_cluster.transfer(
                    contact,
                    self.client_node,
                    total_wire * w_out,
                    nic=model.external_nic,
                    cap=model.per_connection_rate_cap,
                    name=f"jdbc:{self.node_name}->{self.client_node.name}",
                )
            )
        try:
            if pending:
                yield env.all_of(pending)
        finally:
            if slot is not None:
                contact.streams.release(slot)

    def _charge_copy(
        self,
        result: ResultSet,
        copy_data: Union[bytes, str],
        w: float,
        sql: str = "",
    ) -> Generator:
        model = self.cost_model
        # Columnar bulk loads map column chunks straight into the ROS;
        # the dominant per-row unpack cost of row-wise COPY shrinks.
        load_cpu_factor = (
            model.columnar_load_cpu_factor
            if "FORMAT COLUMNAR" in sql.upper()
            else 1.0
        )
        env = self.env
        cluster = self.cluster
        contact = cluster.sim_nodes[self.node_name]
        payload = (
            len(copy_data)
            if isinstance(copy_data, (bytes, bytearray))
            else len(copy_data.encode("utf-8"))
        )
        payload_w = payload * w
        # COPY pipelines: while the client streams the payload in over the
        # external network (holding one ingest slot on the receiving node),
        # that node parses and redistributes rows to their segment owners
        # over the internal network; all of it proceeds concurrently.
        cost = result.cost
        total_rows = cost.rows_written or 1
        pending = []
        slot = None
        if self.client_node is not None and payload_w > 0:
            slot = contact.streams.request()
            yield slot
            route = [
                cluster.sim_cluster._nic_for(self.client_node, model.external_nic).tx,
                contact.nics[model.external_nic].rx,
            ]
            ingest = cluster.ingest_links.get(self.node_name)
            if ingest is not None:
                route.append(ingest)
            pending.append(
                cluster.sim_cluster.network.transfer(
                    route,
                    payload_w,
                    cap=model.copy_rate_cap,
                    name=f"copy:{self.client_node.name}->{self.node_name}",
                )
            )
        for node_name, rows in cost.node_rows_written.items():
            node = cluster.sim_nodes[node_name]
            share = payload_w * (rows / total_rows)
            if node_name != self.node_name and share > 0:
                pending.append(
                    cluster.sim_cluster.transfer(
                        contact,
                        node,
                        share,
                        nic=model.internal_nic,
                        name=f"segment:{self.node_name}->{node_name}",
                    )
                )
            seconds = (
                rows * w * model.load_cpu_per_row * load_cpu_factor
                + share * model.load_cpu_per_byte
            )
            if seconds > 0:
                pending.append(env.process(node.compute(seconds)))
        try:
            if pending:
                yield env.all_of(pending)
        finally:
            if slot is not None:
                contact.streams.release(slot)
