"""S2V job management utilities.

The paper's Final Status Table "serves as a record of all S2V jobs and is
not deleted upon termination. Because this table is always available,
users can consult this table any time to verify the job's status, for
instance in the case where there is a Spark error causing total Spark
failure" (§3.2).  This module is the operator-facing surface over it:

- :func:`job_status` / :func:`list_jobs` — consult the record;
- :func:`find_orphaned_jobs` — jobs whose Spark driver died mid-save
  (status still IN_PROGRESS, temporary tables left behind);
- :func:`cleanup_job` — drop an orphaned job's temporary tables safely
  (the target table is never touched, preserving the §3.2.1 guarantee).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.connector.s2v import FINAL_STATUS_TABLE
from repro.vertica import VerticaDatabase
from repro.vertica.errors import CatalogError

_TEMP_SUFFIXES = ("_STAGING", "_TASK_STATUS", "_LAST_COMMITTER")


def list_jobs(db: VerticaDatabase) -> List[Dict[str, object]]:
    """Every recorded S2V job, most recent last."""
    if not db.catalog.has_table(FINAL_STATUS_TABLE):
        return []
    session = db.connect()
    try:
        result = session.execute(
            f"SELECT job_name, status, failed_percent FROM {FINAL_STATUS_TABLE}"
        )
        return result.to_dicts()
    finally:
        session.close()


def job_status(db: VerticaDatabase, job_name: str) -> Optional[str]:
    """The recorded status of one job, or None if unknown."""
    for job in list_jobs(db):
        if job["JOB_NAME"] == job_name:
            return str(job["STATUS"])
    return None


def temp_tables_of(db: VerticaDatabase, job_name: str) -> List[str]:
    """The job's temporary tables still present in the catalog."""
    prefix = job_name.upper()
    return [
        prefix + suffix
        for suffix in _TEMP_SUFFIXES
        if db.catalog.has_table(prefix + suffix)
    ]


def find_orphaned_jobs(db: VerticaDatabase) -> List[str]:
    """Jobs that never finished: IN_PROGRESS with temp tables left behind.

    These are the survivors of a total Spark failure — the save can simply
    be re-run; the target was never touched.
    """
    return [
        str(job["JOB_NAME"])
        for job in list_jobs(db)
        if job["STATUS"] == "IN_PROGRESS" and temp_tables_of(db, str(job["JOB_NAME"]))
    ]


def cleanup_job(db: VerticaDatabase, job_name: str, force: bool = False) -> List[str]:
    """Drop an orphaned job's temporary tables; returns what was dropped.

    Refuses to clean a job that is not recorded as IN_PROGRESS unless
    ``force`` is set (a finished job has no temp tables anyway; an unknown
    name is probably a typo).  The target table is never dropped.
    """
    status = job_status(db, job_name)
    if status is None and not force:
        raise CatalogError(f"no S2V job named {job_name!r} is recorded")
    if status not in (None, "IN_PROGRESS") and not force:
        raise CatalogError(
            f"job {job_name!r} finished with status {status}; nothing to clean"
        )
    dropped = []
    session = db.connect()
    try:
        for table in temp_tables_of(db, job_name):
            session.execute(f"DROP TABLE IF EXISTS {table}")
            dropped.append(table)
    finally:
        session.close()
    return dropped


def cleanup_all_orphans(db: VerticaDatabase) -> Dict[str, List[str]]:
    """Clean every orphaned job; returns job -> dropped tables."""
    return {name: cleanup_job(db, name) for name in find_orphaned_jobs(db)}
