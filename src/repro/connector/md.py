"""MD: model deployment from Spark to Vertica (§3.3).

Models trained by :mod:`repro.spark.mllib` (or any other PMML producer)
are deployed with :func:`deploy_pmml_model`: the PMML document goes into
Vertica's internal DFS and its metadata (name, type, size, feature count)
into the ``PMML_MODELS`` table.  :func:`install_pmml_udx` registers the
``PMMLPredict`` scalar UDx — a generic evaluator for models whose input
is a numeric vector and whose output is a number — so predictions run
in-database::

    SELECT PMMLPredict(sepal_length, sepal_width, petal_length, petal_width
                       USING PARAMETERS model_name='regression')
    FROM IrisTable
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro import telemetry
from repro.pmml import ModelEvaluator, parse_pmml
from repro.vertica import VerticaDatabase
from repro.vertica.errors import CatalogError, SqlError

PMML_MODELS_TABLE = "PMML_MODELS"
_DFS_PREFIX = "pmml_models/"


def _ensure_metadata_table(db: VerticaDatabase) -> None:
    if not db.catalog.has_table(PMML_MODELS_TABLE):
        with db.connect() as session:
            session.execute(
                f"CREATE TABLE IF NOT EXISTS {PMML_MODELS_TABLE} ("
                "model_name VARCHAR(200), model_type VARCHAR(80), "
                "size_bytes INTEGER, num_features INTEGER) UNSEGMENTED ALL NODES"
            )


def deploy_pmml_model(
    db: VerticaDatabase, name: str, pmml_xml: str, overwrite: bool = False
) -> None:
    """Store a PMML document in the DFS and record its metadata.

    The XML is validated by parsing before anything is stored, so a bad
    document never reaches the DFS.
    """
    document = parse_pmml(pmml_xml)
    path = _DFS_PREFIX + name
    if db.dfs.exists(path) and not overwrite:
        raise CatalogError(f"model {name!r} is already deployed")
    _ensure_metadata_table(db)
    with db.connect() as session:
        if overwrite and db.dfs.exists(path):
            session.execute(
                f"DELETE FROM {PMML_MODELS_TABLE} WHERE model_name = '{name}'"
            )
        db.dfs.write(path, pmml_xml.encode("utf-8"), overwrite=overwrite)
        session.execute(
            f"INSERT INTO {PMML_MODELS_TABLE} VALUES ("
            f"'{name}', '{document.model_type}', {len(pmml_xml)}, "
            f"{len(document.feature_names)})"
        )
        telemetry.counter("md.models_deployed").inc()


def get_pmml(db: VerticaDatabase, name: str) -> str:
    """Read a deployed model's PMML XML back from the DFS."""
    return db.dfs.read(_DFS_PREFIX + name).decode("utf-8")


def delete_model(db: VerticaDatabase, name: str) -> None:
    """Remove a deployed model (DFS document + metadata row)."""
    path = _DFS_PREFIX + name
    db.dfs.delete(path)
    with db.connect() as session:
        session.execute(
            f"DELETE FROM {PMML_MODELS_TABLE} WHERE model_name = '{name}'"
        )


def list_models(db: VerticaDatabase) -> List[Dict[str, Any]]:
    """Deployed model metadata, from the ``PMML_MODELS`` table."""
    if not db.catalog.has_table(PMML_MODELS_TABLE):
        return []
    with db.connect() as session:
        result = session.execute(
            f"SELECT model_name, model_type, size_bytes, num_features "
            f"FROM {PMML_MODELS_TABLE} ORDER BY model_name"
        )
        return result.to_dicts()


def install_pmml_udx(db: VerticaDatabase, cache_size: int = 32) -> None:
    """Register the ``PMMLPredict`` scalar UDx on the database.

    The UDx reads the named model from the DFS via GetPMML, builds the
    generic evaluator, and scores the argument vector; evaluators are
    cached per model name so per-row scoring does not re-parse XML.
    """
    cache: Dict[str, ModelEvaluator] = {}

    def pmml_predict(args: List[Any], parameters: Dict[str, Any]) -> float:
        model_name = parameters.get("model_name")
        if not model_name:
            raise SqlError("PMMLPredict requires USING PARAMETERS model_name='...'")
        evaluator = cache.get(model_name)
        if evaluator is None:
            evaluator = ModelEvaluator.from_xml(get_pmml(db, model_name))
            if len(cache) >= cache_size:
                cache.pop(next(iter(cache)))
            cache[model_name] = evaluator
        telemetry.counter("md.predictions").inc()
        return evaluator.evaluate(args)

    db.udx.register("PMMLPredict", pmml_predict, replace=True)
