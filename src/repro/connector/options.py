"""Connector option parsing and validation.

The External Data Source API passes options as a flat ``key=value`` map
(Table 1).  :class:`ConnectorOptions` validates the ones the connector
understands, mirroring the real connector's option names: ``table``,
``dbschema``, ``host``, ``user``, ``password``, ``numpartitions``, plus
this reproduction's additions (``db`` — the in-process cluster object
standing in for the host address — and ``scale_factor`` for virtual
volume).
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class OptionsError(Exception):
    """Invalid or missing connector options."""


#: the paper chose 32 partitions for V2S as best-practice default
DEFAULT_V2S_PARTITIONS = 32
#: and 128 for S2V
DEFAULT_S2V_PARTITIONS = 128


class ConnectorOptions:
    """Validated connector options."""

    KNOWN = {
        "db", "table", "dbschema", "host", "user", "password",
        "numpartitions", "scale_factor", "failed_rows_percent_tolerance",
        "reject_max", "avro_codec", "prehash_partitioning", "varchar_length",
        "agg_pushdown", "resource_pool", "transport", "staging_fs",
        "staging_root",
    }

    #: transports the connector knows how to move rows over
    TRANSPORTS = ("direct", "staging")

    def __init__(self, options: Dict[str, Any], for_save: bool = False):
        unknown = set(options) - self.KNOWN
        if unknown:
            raise OptionsError(
                f"unknown connector options {sorted(unknown)}; "
                f"known: {sorted(self.KNOWN)}"
            )
        try:
            self.cluster = options["db"]
        except KeyError:
            raise OptionsError(
                "option 'db' (a SimVerticaCluster) is required"
            ) from None
        table = options.get("table")
        if not table or not isinstance(table, str):
            raise OptionsError("option 'table' (a table or view name) is required")
        schema = options.get("dbschema", "")
        self.table = f"{schema}.{table}".upper() if schema else table.upper()
        self.host = options.get("host") or self.cluster.node_names[0]
        if self.host not in self.cluster.node_names:
            raise OptionsError(
                f"host {self.host!r} is not a node of the cluster "
                f"{self.cluster.node_names}"
            )
        self.user = options.get("user", "dbadmin")
        self.password = options.get("password", "")
        default_partitions = (
            DEFAULT_S2V_PARTITIONS if for_save else DEFAULT_V2S_PARTITIONS
        )
        self.num_partitions = self._positive_int(
            options.get("numpartitions", default_partitions), "numpartitions"
        )
        self.scale_factor = float(options.get("scale_factor", 1.0))
        if self.scale_factor <= 0:
            raise OptionsError(f"scale_factor must be positive: {self.scale_factor}")
        tolerance = float(options.get("failed_rows_percent_tolerance", 0.0))
        if not 0.0 <= tolerance <= 1.0:
            raise OptionsError(
                f"failed_rows_percent_tolerance must be in [0, 1]: {tolerance}"
            )
        self.failed_rows_percent_tolerance = tolerance
        self.reject_max: Optional[int] = (
            int(options["reject_max"]) if "reject_max" in options else None
        )
        self.avro_codec = options.get("avro_codec", "deflate")
        self.prehash_partitioning = _as_bool(
            options.get("prehash_partitioning", False)
        )
        self.agg_pushdown = _as_bool(options.get("agg_pushdown", True))
        self.varchar_length = self._positive_int(
            options.get("varchar_length", 65000), "varchar_length"
        )
        # WLM pool every session opened by this relation/writer runs in;
        # None keeps the database default (GENERAL).
        pool = options.get("resource_pool")
        if pool is not None and (not isinstance(pool, str) or not pool.strip()):
            raise OptionsError(f"option 'resource_pool' must be a pool name: {pool!r}")
        self.resource_pool: Optional[str] = pool.strip().upper() if pool else None
        # Transport selection: "direct" streams rows over JDBC/COPY; "staging"
        # bridges them as columnar files on a distributed FS (Figure 12's
        # HDFS) with a rename-free manifest commit.
        transport = str(options.get("transport", "direct")).strip().lower()
        if transport not in self.TRANSPORTS:
            raise OptionsError(
                f"option 'transport' must be one of {self.TRANSPORTS}: "
                f"{options.get('transport')!r}"
            )
        self.transport = transport
        self.staging_fs = options.get("staging_fs")
        root = options.get("staging_root", "/staging")
        if not isinstance(root, str) or not root.startswith("/") or \
                root.endswith("/"):
            raise OptionsError(
                f"option 'staging_root' must be an absolute directory path "
                f"without a trailing slash: {root!r}"
            )
        self.staging_root = root
        if self.transport == "staging":
            if self.staging_fs is None:
                raise OptionsError(
                    "transport='staging' requires option 'staging_fs' "
                    "(a SimHdfsCluster both clusters can reach)"
                )
            if self.prehash_partitioning:
                raise OptionsError(
                    "prehash_partitioning routes rows per task connection "
                    "and cannot combine with transport='staging' (staged "
                    "loads are bulk per node, not per task)"
                )

    @staticmethod
    def _positive_int(value: Any, name: str) -> int:
        if isinstance(value, float) and not value.is_integer():
            raise OptionsError(f"option {name!r} must be an integer: {value!r}")
        try:
            out = int(value)
        except (TypeError, ValueError):
            raise OptionsError(f"option {name!r} must be an integer: {value!r}") from None
        if out <= 0:
            raise OptionsError(f"option {name!r} must be positive: {out}")
        return out


def _as_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        return value.strip().lower() in ("1", "true", "yes", "on")
    return bool(value)
