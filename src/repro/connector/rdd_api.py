"""The RDD-based connector API.

The paper's implementation is presented through DataFrames and the
External Data Source API, but notes: "Our implementation using RDD (for
Spark ML methods that operate on RDDs) provides a similar functionality"
(§3).  This module is that surface: load a Vertica table straight into an
RDD (including a LabeledPoint convenience for MLlib trainers) and save an
RDD back through the same exactly-once S2V machinery.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.connector.s2v import S2VResult, S2VWriter
from repro.connector.v2s import VerticaRelation
from repro.spark.dataframe import DataFrame
from repro.spark.errors import AnalysisError
from repro.spark.mllib.base import LabeledPoint
from repro.spark.rdd import RDD
from repro.spark.row import StructType


def vertica_to_rdd(
    spark: "SparkSession",  # noqa: F821
    options: Dict[str, Any],
    columns: Optional[Sequence[str]] = None,
) -> RDD:
    """Load a Vertica table/view as an RDD of tuples.

    Same semantics as the DataFrame path: locality-aware hash-range
    partition queries pinned to one epoch, with optional column pruning.
    """
    relation = VerticaRelation(spark, options)
    return relation.build_scan(required_columns=columns)


def vertica_to_labeled_points(
    spark: "SparkSession",  # noqa: F821
    options: Dict[str, Any],
    label_column: str,
    feature_columns: Sequence[str],
) -> RDD:
    """Load training data as an RDD of :class:`LabeledPoint`.

    The label and features are pruned server-side, so only the training
    columns cross the wire — the V2S + MLlib hand-off of Figure 1.
    """
    if not feature_columns:
        raise AnalysisError("at least one feature column is required")
    relation = VerticaRelation(spark, options)
    wanted = [label_column] + list(feature_columns)
    for name in wanted:
        relation.schema.field(name)  # validate against the table schema
    scan = relation.build_scan(required_columns=wanted)
    return scan.map(lambda row: LabeledPoint(row[0], list(row[1:])))


def rdd_to_vertica(
    spark: "SparkSession",  # noqa: F821
    rdd: RDD,
    schema: StructType,
    options: Dict[str, Any],
    mode: str = "overwrite",
) -> Optional[S2VResult]:
    """Save an RDD of tuples with the full exactly-once S2V protocol."""
    width = len(schema)
    checked = rdd.map(lambda row: _check_row(row, width))
    dataframe = DataFrame(spark, schema, rdd=checked)
    writer = S2VWriter(spark, mode, options, dataframe)
    return writer.save()


def _check_row(row: Any, width: int) -> tuple:
    out = tuple(row)
    if len(out) != width:
        raise AnalysisError(
            f"RDD row arity {len(out)} does not match schema width {width}"
        )
    return out
