"""S2V: saving Spark DataFrames to Vertica with exactly-once semantics (§3.2).

Vertica itself is the durable coordination log.  Setup creates three
temporary tables and one permanent table:

- ``<job>_STAGING`` — same schema as the target; all task data lands here;
- ``<job>_TASK_STATUS`` — one row per task: id, rows inserted/failed, done;
- ``<job>_LAST_COMMITTER`` — single row for the leader-election race;
- ``S2V_JOB_STATUS`` — permanent record of every job's final outcome,
  consultable even after total Spark failure.

Each task then runs the five phases of Figure 5:

1. *(one transaction)* if its status row is still not-done: stream its
   partition as Avro through COPY into the staging table, then
   conditionally ``UPDATE ... SET done = TRUE WHERE task_id = i AND done
   = FALSE`` — committing only if the update hit, else aborting.  A
   restarted or duplicated task finds ``done = TRUE`` and skips the
   write, so data is staged exactly once.
2. read the status table; unless *all* tasks are done, terminate.
3. race to ``UPDATE <job>_LAST_COMMITTER SET task_id = i WHERE task_id IS
   NULL``: exactly one task's update succeeds (durable leader election).
4. read back the winner; losers terminate.
5. the winner checks the rejected-row tolerance and commits the staging
   table into the target — an atomic rename for overwrite, one
   transactional ``INSERT ... SELECT`` for append — guarded by a
   conditional update of ``S2V_JOB_STATUS`` so even a speculative
   duplicate of the winner finalises only once.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro import telemetry
from repro.avrolite import encode_rows
from repro.connector import staging as stg
from repro.connector.options import ConnectorOptions
from repro.hdfs.columnar import write_columnar
from repro.spark.errors import SparkError
from repro.vertica.errors import LockContention, RetriesExhausted, VerticaError

#: the permanent record of all S2V jobs (never dropped)
FINAL_STATUS_TABLE = "S2V_JOB_STATUS"
#: attempts before any task-side lock-retry loop gives up on the job
MAX_LOCK_RETRIES = 50
#: rows per Avro container chunk a task alternates encode/send over
COPY_CHUNK_ROWS = 2048
#: effectively-unlimited per-chunk REJECTMAX; tolerance is job-level
CHUNK_REJECT_MAX = 1 << 31


class S2VError(VerticaError):
    """S2V job-level failure (e.g. rejected rows above tolerance)."""


class S2VResult:
    """Outcome of one S2V save."""

    def __init__(self, job_name: str, rows_loaded: int, rows_rejected: int,
                 failed_percent: float, status: str):
        self.job_name = job_name
        self.rows_loaded = rows_loaded
        self.rows_rejected = rows_rejected
        self.failed_percent = failed_percent
        self.status = status

    def __repr__(self) -> str:
        return (
            f"S2VResult({self.job_name!r}, loaded={self.rows_loaded}, "
            f"rejected={self.rows_rejected}, status={self.status!r})"
        )


class _DriverContext:
    """Stands in for a TaskContext when the driver runs commit phases.

    The driver is not a task: it cannot be chaos-killed at probes and has
    no attempt identity, so probes are no-ops.
    """

    node = None
    attempt_number = 0

    def probe(self, label: str) -> None:
        return None


class S2VWriter:
    """One save invocation (one Spark job)."""

    _job_ids = itertools.count(1)

    def __init__(self, spark, mode: str, options: Dict[str, Any], dataframe):
        self.spark = spark
        self.mode = mode
        self.dataframe = dataframe
        self.opts = ConnectorOptions(options, for_save=True)
        self.cluster = self.opts.cluster
        self.job_name = f"S2V_JOB_{next(self._job_ids)}"
        self.target = self.opts.table
        self.staging = f"{self.job_name}_STAGING"
        self.status_table = f"{self.job_name}_TASK_STATUS"
        self.committer_table = f"{self.job_name}_LAST_COMMITTER"
        self.nodes: List[str] = []
        self.avro_schema = dataframe.schema.to_avro("s2v_row")
        self._skipped = False
        #: the last teardown error _safe_cleanup swallowed (None if clean)
        self.cleanup_failure: Optional[BaseException] = None
        #: plan used when prehash_partitioning is on: task -> node
        self._prehash_ring = None
        #: staging transport: tasks write columnar attempt files to a
        #: distributed FS; the driver bulk-COPYs the manifest's winners
        self.staged = self.opts.transport == "staging"
        self.hdfs = self.opts.staging_fs
        self._columnar_header_bytes = (
            len(write_columnar(self.avro_schema, [])) if self.staged else 0
        )
        #: shared by every task's staged write: balances block placement
        #: across datanodes (see staging.write_staged_file)
        self._staging_write_load: Dict[str, float] = {}

    # ------------------------------------------------------------------- save
    def save(self) -> Optional[S2VResult]:
        """Run setup, the task job, and finalisation; returns the result.

        ``None`` is returned only for mode=ignore on an existing table.
        """
        return self.cluster.run(self.save_process(), name=f"{self.job_name}.save")

    def save_process(self) -> Generator:
        """The whole save as one driver-side generator.

        ``save()`` runs it to completion on an otherwise idle clock; a
        multi-tenant workload instead embeds it in its own process
        (``yield from writer.save_process()``) so many saves — and their
        WLM admission waits — interleave on one simulation clock.
        """
        try:
            yield from self._setup()
        except (VerticaError, SparkError):
            # Narrowed to the errors setup can legitimately raise (catalog
            # conflicts, lock contention, admission timeouts, fabric
            # faults).  A programming error — e.g. a TypeError in option
            # validation — must propagate with its original traceback, not
            # run teardown paths that mask it in chaos logs.
            yield from self._safe_cleanup(None)
            raise
        if self._skipped:
            return None
        rdd, num_tasks = self._partitioned_rdd()
        thunks = [self._make_task(rdd, i) for i in range(num_tasks)]
        job = self.spark.scheduler.submit(thunks, name=self.job_name)
        try:
            yield job.done
        except SparkError:
            # The job died but the driver is still alive: reconcile and drop
            # the per-job temporary tables.  The final status table keeps the
            # job's record (IN_PROGRESS, unless a committer was entitled
            # first) for the user to consult — only a *total* Spark failure
            # (driver death) leaves temp tables behind, and those are cleaned
            # out-of-band via :mod:`repro.connector.jobs`.
            yield from self._safe_cleanup(job)
            raise
        try:
            return (yield from self._finalize(job))
        except Exception:
            yield from self._safe_cleanup(job)
            raise

    # ------------------------------------------------------------- failure path
    def _safe_cleanup(self, job) -> Generator:
        """Best-effort, idempotent teardown after a failed save.

        Never raises — the original failure is what the caller must see.
        Anything this could not drop remains discoverable (and cleanable)
        through :mod:`repro.connector.jobs`.
        """
        try:
            yield from self._cleanup(job)
        except Exception as exc:
            # Swallowed, but never invisible: the counter feeds the
            # chaos-soak summaries and InvariantChecker warnings, and the
            # last error is kept on the writer for post-mortems.
            telemetry.counter("s2v.cleanup_failures").inc()
            self.cleanup_failure = exc

    def _cleanup(self, job) -> Generator:
        # Quiesce zombie attempts first so the reconciliation below never
        # races a still-running entitled committer.
        if job is not None:
            while any(task.live_attempts for task in job.tasks):
                yield self.cluster.env.timeout(0.05)
        with self.cluster.connect(
            self.opts.host, client_node=None,
            resource_pool=self.opts.resource_pool,
        ) as conn:
            result = yield from conn.execute(
                "SELECT COUNT(*) FROM v_catalog.tables "
                f"WHERE table_name = '{FINAL_STATUS_TABLE}'"
            )
            status = None
            if result.scalar() > 0:
                result = yield from conn.execute(
                    f"SELECT status FROM {FINAL_STATUS_TABLE} "
                    f"WHERE job_name = '{self.job_name}'"
                )
                status = result.rows[0][0] if result.rows else None
            staging_left = yield from conn.execute(
                "SELECT COUNT(*) FROM v_catalog.tables "
                f"WHERE table_name = '{self.staging}'"
            )
            if (status == "SUCCESS" and self.mode != "append"
                    and staging_left.scalar() > 0):
                # An entitled committer flipped the job to SUCCESS but died
                # before the rename; the staging table is the durable
                # evidence, so complete the commit rather than destroy it.
                yield from conn.execute_with_retry(
                    f"DROP TABLE IF EXISTS {self.target}"
                )
                yield from conn.execute_with_retry(
                    f"ALTER TABLE {self.staging} RENAME TO {self.target}"
                )
            for table in (self.status_table, self.committer_table, self.staging):
                yield from conn.execute_with_retry(f"DROP TABLE IF EXISTS {table}")
        if self.staged and self.hdfs is not None:
            # A failed staged job's attempt files and manifest are all
            # garbage — sweep the whole job directory (pure metadata ops).
            stg.sweep_job_dir(self.hdfs, self.opts.staging_root, self.job_name)

    # -------------------------------------------------------------- setup phase
    def _setup(self) -> Generator:
        with self.cluster.connect(
            self.opts.host, client_node=None,
            resource_pool=self.opts.resource_pool,
        ) as conn:
            result = yield from conn.execute(
                "SELECT node_name FROM v_catalog.nodes ORDER BY node_name"
            )
            self.nodes = [row[0] for row in result.rows]
            result = yield from conn.execute(
                "SELECT COUNT(*) FROM v_catalog.tables "
                f"WHERE table_name = '{self.target}'"
            )
            target_exists = result.scalar() > 0
            if self.mode == "errorifexists" and target_exists:
                raise S2VError(f"table {self.target!r} already exists")
            if self.mode == "ignore" and target_exists:
                self._skipped = True
                return
            if self.mode == "append" and not target_exists:
                raise S2VError(
                    f"append mode requires existing table {self.target!r}"
                )
            segmented_by = [self.dataframe.schema.fields[0].name]
            yield from conn.execute(
                self.dataframe.schema.create_table_sql(
                    self.staging,
                    segmented_by=segmented_by,
                    varchar_length=self.opts.varchar_length,
                )
            )
            # In staging mode the status row also records which attempt file
            # won — the Stocator-style commit record the manifest is built
            # from (added only when staged, so direct-mode runs keep their
            # exact statement sequence).
            file_column = ", file VARCHAR(500)" if self.staged else ""
            yield from conn.execute(
                f"CREATE TABLE {self.status_table} (task_id INTEGER, "
                "rows_inserted INTEGER, rows_failed INTEGER, done BOOLEAN"
                f"{file_column}) UNSEGMENTED ALL NODES"
            )
            row_tail = ", NULL" if self.staged else ""
            values = ", ".join(
                f"({i}, 0, 0, FALSE{row_tail})" for i in range(self._num_tasks())
            )
            yield from conn.execute_with_retry(
                f"INSERT INTO {self.status_table} VALUES {values}"
            )
            yield from conn.execute(
                f"CREATE TABLE {self.committer_table} (task_id INTEGER) "
                "UNSEGMENTED ALL NODES"
            )
            yield from conn.execute_with_retry(
                f"INSERT INTO {self.committer_table} VALUES (NULL)"
            )
            yield from conn.execute(
                f"CREATE TABLE IF NOT EXISTS {FINAL_STATUS_TABLE} "
                "(job_name VARCHAR(200), failed_percent FLOAT, "
                "status VARCHAR(20)) UNSEGMENTED ALL NODES"
            )
            # Retried: the shared final-status table is a contention point
            # (every concurrent job and any chaos lock storm hits it).
            yield from conn.execute_with_retry(
                f"INSERT INTO {FINAL_STATUS_TABLE} VALUES "
                f"('{self.job_name}', 0.0, 'IN_PROGRESS')"
            )
            if self.opts.prehash_partitioning:
                from repro.vertica.hashring import HashRing, Segment

                result = yield from conn.execute(
                    "SELECT segment_lower_bound, segment_upper_bound, node_name "
                    f"FROM v_catalog.segments WHERE table_name = '{self.staging}' "
                    "ORDER BY segment_lower_bound"
                )
                self._prehash_ring = HashRing(
                    [Segment(lo, hi, node) for lo, hi, node in result.rows]
                )

    def _num_tasks(self) -> int:
        return self.opts.num_partitions

    def _partitioned_rdd(self):
        """Repartition the DataFrame to the requested task count (§3.2).

        With ``prehash_partitioning`` (the paper's §5 future-work
        optimisation, implemented here as an option) rows are routed so
        each task holds only rows whose staging segment lives on the node
        that task will connect to — eliminating Vertica-internal traffic.
        """
        num = self.opts.num_partitions
        if self.opts.prehash_partitioning and self._prehash_ring is not None:
            from repro.vertica.hashring import vertica_hash

            ring = self._prehash_ring
            plan = ring.partition_plan(num)
            self._prehash_plan = plan
            seg_index = self.dataframe.schema.index_of(
                self.dataframe.schema.fields[0].name
            )

            def destination(row) -> int:
                value_hash = vertica_hash(row[seg_index])
                for task_index, ranges in enumerate(plan):
                    for lo, hi, __ in ranges:
                        if lo <= value_hash < hi:
                            return task_index
                return value_hash % num  # pragma: no cover - plan tiles space

            rdd = self.dataframe.rdd().partition_by(num, key_fn=destination)
            return rdd, num
        rdd = self.dataframe.rdd()
        if rdd.num_partitions > num:
            rdd = rdd.coalesce(num)
        elif rdd.num_partitions < num:
            rdd = rdd.repartition(num)
        return rdd, num

    def _task_node(self, task_index: int) -> str:
        if self.opts.prehash_partitioning and self._prehash_ring is not None:
            ranges = self._prehash_plan[task_index]
            if ranges:
                return ranges[0][2]
        return self.nodes[task_index % len(self.nodes)]

    # --------------------------------------------------------------- task phases
    def _make_task(self, rdd, task_index: int):
        writer = self

        def thunk(ctx) -> Generator:
            body = rdd.compute(task_index, ctx)
            if hasattr(body, "__next__"):
                rows = yield from body
            else:  # pragma: no cover
                rows = body
            yield from writer._run_phases(ctx, task_index, list(rows))
            return task_index

        return thunk

    def _run_phases(self, ctx, task_index: int, rows: List[Tuple]) -> Generator:
        with self.cluster.connect(
            self._task_node(task_index), client_node=ctx.node,
            resource_pool=self.opts.resource_pool,
        ) as conn:
            with telemetry.span("s2v.phase1", task=task_index,
                                attempt=ctx.attempt_number):
                if self.staged:
                    yield from self._phase1_staged(ctx, conn, task_index, rows)
                else:
                    yield from self._phase1(ctx, conn, task_index, rows)
            ctx.probe("s2v:after_phase1")
            with telemetry.span("s2v.phase2", task=task_index):
                all_done = yield from self._phase2(ctx, conn)
            if not all_done:
                return
            ctx.probe("s2v:after_phase2")
            with telemetry.span("s2v.phase3", task=task_index):
                yield from self._phase3(ctx, conn, task_index)
            ctx.probe("s2v:after_phase3")
            with telemetry.span("s2v.phase4", task=task_index):
                is_winner = yield from self._phase4(ctx, conn, task_index)
            if not is_winner:
                return
            ctx.probe("s2v:after_phase4")
            with telemetry.span("s2v.phase5", task=task_index):
                yield from self._phase5(ctx, conn)

    def _phase1(self, ctx, conn, task_index: int, rows: List[Tuple]) -> Generator:
        """Stage this partition's data exactly once.

        The COPY and the conditional done-flag update run under one
        transaction, so the record of this task having staged its data is
        durable iff the data itself is (§3.2.1 Phase 1).  Contention on
        the shared status table retries only the conditional update; the
        staged data stays in the open transaction.
        """
        yield from conn.execute("BEGIN")
        result = yield from conn.execute(
            f"SELECT done FROM {self.status_table} WHERE task_id = {task_index}"
        )
        if result.scalar() is True:
            # A previous attempt of this task already staged its data.
            yield from conn.execute("ROLLBACK")
            return
        loaded, failed = yield from self._copy_partition(ctx, conn, rows)
        ctx.probe("s2v:phase1_data_staged")
        attempt = 0
        while True:
            try:
                update = yield from conn.execute(
                    f"UPDATE {self.status_table} SET done = TRUE, "
                    f"rows_inserted = {loaded}, rows_failed = {failed} "
                    f"WHERE task_id = {task_index} AND done = FALSE"
                )
                break
            except LockContention as contention:
                attempt += 1
                if attempt > MAX_LOCK_RETRIES:
                    raise RetriesExhausted(
                        f"UPDATE {self.status_table}", attempt, contention
                    ) from contention
                yield self.cluster.env.timeout(conn.retry_delay(attempt))
        if update.rowcount == 1:
            ctx.probe("s2v:phase1_before_commit")
            yield from conn.execute("COMMIT")
            ctx.probe("s2v:phase1_after_commit")
        else:
            # A duplicate of this task committed first; discard our copy.
            yield from conn.execute("ROLLBACK")

    def _copy_partition(self, ctx, conn, rows: List[Tuple]) -> Generator:
        """Alternately Avro-encode a chunk (Spark CPU) and COPY it in."""
        model = self.cluster.cost_model
        weight = self.opts.scale_factor
        loaded = 0
        failed = 0
        if not rows:
            return 0, 0
        # The container header (magic, schema JSON, sync marker) is paid
        # once per real container, not once per virtual row — scale only
        # the data blocks, or small real partitions would charge phantom
        # header gigabytes.
        header_bytes = len(encode_rows(self.avro_schema, [],
                                       codec=self.opts.avro_codec))
        for start in range(0, len(rows), COPY_CHUNK_ROWS):
            chunk = rows[start : start + COPY_CHUNK_ROWS]
            payload = encode_rows(
                self.avro_schema, chunk, codec=self.opts.avro_codec
            )
            data_bytes = max(1, len(payload) - header_bytes)
            effective_weight = (
                header_bytes + data_bytes * weight
            ) / len(payload)
            encode_seconds = (
                weight * len(chunk) * model.encode_cpu_per_row
                + data_bytes * weight * model.encode_cpu_per_byte
            )
            if encode_seconds > 0:
                yield from ctx.node.compute(encode_seconds)
            yield from conn.execute(
                f"COPY {self.staging} FROM STDIN FORMAT AVRO "
                f"REJECTMAX {CHUNK_REJECT_MAX} DIRECT",
                copy_data=payload,
                weight=effective_weight,
            )
            copy_result = conn.session.last_copy_result
            loaded += copy_result.loaded
            failed += copy_result.rejected
        return loaded, failed

    def _phase1_staged(self, ctx, conn, task_index: int,
                       rows: List[Tuple]) -> Generator:
        """Stage this partition as an attempt-named columnar file.

        The file is written *before* any database state changes, under a
        name unique to this attempt, and is never renamed: the conditional
        done-flag update (which also records the file path) is the single
        atomic arbiter of which attempt's file the job commits.  A losing
        or crashed attempt leaves only an unclaimed file, swept at cleanup.
        """
        result = yield from conn.execute(
            f"SELECT done FROM {self.status_table} WHERE task_id = {task_index}"
        )
        if result.scalar() is True:
            # A previous attempt of this task already claimed its file.
            return
        model = self.cluster.cost_model
        weight = self.opts.scale_factor
        payload = write_columnar(self.avro_schema, rows)
        data_bytes = max(0, len(payload) - self._columnar_header_bytes)
        nbytes = self._columnar_header_bytes + data_bytes * weight
        encode_seconds = (
            weight * len(rows) * model.encode_cpu_per_row
            * model.columnar_encode_cpu_factor
            + data_bytes * weight * model.encode_cpu_per_byte
        )
        if encode_seconds > 0:
            yield from ctx.node.compute(encode_seconds)
        path = stg.attempt_file_path(
            self.opts.staging_root, self.job_name, task_index, ctx.attempt_id
        )
        ctx.probe("s2v:staged_before_file_write")
        yield from stg.write_staged_file(
            self.hdfs, ctx.node, "default", path, payload, nbytes,
            name=f"stage:{path}", load_map=self._staging_write_load,
        )
        ctx.probe("s2v:staged_after_file_write")
        attempt = 0
        while True:
            try:
                yield from conn.execute("BEGIN")
                update = yield from conn.execute(
                    f"UPDATE {self.status_table} SET done = TRUE, "
                    f"rows_inserted = {len(rows)}, rows_failed = 0, "
                    f"file = '{path}' "
                    f"WHERE task_id = {task_index} AND done = FALSE"
                )
                break
            except LockContention as contention:
                yield from conn.execute("ROLLBACK")
                attempt += 1
                if attempt > MAX_LOCK_RETRIES:
                    raise RetriesExhausted(
                        f"UPDATE {self.status_table}", attempt, contention
                    ) from contention
                yield self.cluster.env.timeout(conn.retry_delay(attempt))
        if update.rowcount == 1:
            ctx.probe("s2v:phase1_before_commit")
            yield from conn.execute("COMMIT")
            ctx.probe("s2v:phase1_after_commit")
        else:
            # A duplicate claimed first; our file stays behind as an orphan
            # for the cleanup sweep (no rename, no delete on the hot path).
            yield from conn.execute("ROLLBACK")

    def _phase2(self, ctx, conn) -> Generator:
        result = yield from conn.execute(
            f"SELECT COUNT(*) FROM {self.status_table} "
            "WHERE done = FALSE OR done IS NULL"
        )
        return result.scalar() == 0

    def _phase3(self, ctx, conn, task_index: int) -> Generator:
        yield from conn.execute_with_retry(
            f"UPDATE {self.committer_table} SET task_id = {task_index} "
            "WHERE task_id IS NULL"
        )

    def _phase4(self, ctx, conn, task_index: int) -> Generator:
        result = yield from conn.execute(
            f"SELECT task_id FROM {self.committer_table}"
        )
        return result.scalar() == task_index

    def _phase5(self, ctx, conn) -> Generator:
        if self.staged:
            # The winner's commit is the manifest: a driver-readable record
            # of the winning attempt files.  Loading and publishing the
            # target stay with the driver (the single bulk-load committer),
            # which also owns the rejected-row tolerance — staged tasks
            # never parse rows, so rejections only exist at bulk-load time.
            yield from self._phase5_staged_manifest(ctx, conn)
            return
        result = yield from conn.execute(
            f"SELECT SUM(rows_inserted), SUM(rows_failed) FROM {self.status_table}"
        )
        inserted, rejected = result.rows[0]
        inserted = inserted or 0
        rejected = rejected or 0
        total = inserted + rejected
        failed_percent = (rejected / total) if total else 0.0
        if failed_percent > self.opts.failed_rows_percent_tolerance:
            yield from conn.execute_with_retry(
                f"UPDATE {FINAL_STATUS_TABLE} SET status = 'FAILURE', "
                f"failed_percent = {failed_percent} "
                f"WHERE job_name = '{self.job_name}' AND status = 'IN_PROGRESS'"
            )
            raise S2VError(
                f"{self.job_name}: rejected fraction {failed_percent:.4f} "
                f"exceeds tolerance {self.opts.failed_rows_percent_tolerance}"
            )
        if self.mode == "append":
            yield from self._commit_append(ctx, conn, failed_percent)
        else:
            yield from self._commit_overwrite(ctx, conn, failed_percent)

    def _phase5_staged_manifest(self, ctx, conn) -> Generator:
        """Write the commit manifest: the winning attempt file per task.

        The status table is frozen once every task is done, so the manifest
        content is deterministic — a speculative duplicate of the winner
        rewrites byte-identical content (overwrite of an immutable record,
        not a rename), which makes this step idempotent.
        """
        result = yield from conn.execute(
            f"SELECT task_id, rows_inserted, file FROM {self.status_table}"
        )
        entries = [
            {"task": int(task), "rows": int(rows or 0), "path": path}
            for task, rows, path in result.rows
        ]
        payload = stg.encode_manifest(self.job_name, entries)
        path = stg.manifest_path(self.opts.staging_root, self.job_name)
        ctx.probe("s2v:staged_before_manifest")
        yield from stg.write_staged_file(
            self.hdfs, ctx.node, "default", path, payload, float(len(payload)),
            name=f"manifest:{self.job_name}",
        )
        telemetry.counter("hdfs.staging.manifests_written").inc()
        ctx.probe("s2v:staged_after_manifest")

    def _commit_append(self, ctx, conn, failed_percent: float) -> Generator:
        """Atomic: conditional final-status update + INSERT..SELECT, one txn."""
        attempt = 0
        while True:
            try:
                yield from conn.execute("BEGIN")
                update = yield from conn.execute(
                    f"UPDATE {FINAL_STATUS_TABLE} SET status = 'SUCCESS', "
                    f"failed_percent = {failed_percent} "
                    f"WHERE job_name = '{self.job_name}' AND status = 'IN_PROGRESS'"
                )
                if update.rowcount != 1:
                    # A duplicate of the winner already finalised the job.
                    yield from conn.execute("ROLLBACK")
                    return
                ctx.probe("s2v:phase5_before_append")
                yield from conn.execute(
                    f"INSERT INTO {self.target} SELECT * FROM {self.staging}"
                )
                yield from conn.execute("COMMIT")
                ctx.probe("s2v:phase5_after_commit")
                return
            except LockContention as contention:
                yield from conn.execute("ROLLBACK")
                attempt += 1
                if attempt > MAX_LOCK_RETRIES:
                    raise RetriesExhausted(
                        f"INSERT INTO {self.target}", attempt, contention
                    ) from contention
                yield self.cluster.env.timeout(conn.retry_delay(attempt))

    def _commit_overwrite(self, ctx, conn, failed_percent: float) -> Generator:
        """Entitlement first, then the atomic rename.

        The conditional final-status update is the single atomic arbiter:
        exactly one attempt (original, restarted, or speculative duplicate)
        flips IN_PROGRESS → SUCCESS, and only that attempt ever touches the
        target table.  Duplicates that lose the update return without side
        effects, so they can never drop a freshly renamed target.  If the
        entitled attempt crashes between the update and the rename, the
        driver's finalisation step completes the rename (the staging table
        is still present as the durable evidence).
        """
        update = yield from conn.execute_with_retry(
            f"UPDATE {FINAL_STATUS_TABLE} SET status = 'SUCCESS', "
            f"failed_percent = {failed_percent} "
            f"WHERE job_name = '{self.job_name}' AND status = 'IN_PROGRESS'"
        )
        if update.rowcount != 1:
            return  # another attempt finalised (or will finalise) the job
        attempt = 0
        while True:
            try:
                yield from conn.execute(f"DROP TABLE IF EXISTS {self.target}")
                ctx.probe("s2v:phase5_before_rename")
                yield from conn.execute(
                    f"ALTER TABLE {self.staging} RENAME TO {self.target}"
                )
                break
            except LockContention as contention:
                # A zombie duplicate still holds an insert lock on the
                # staging table; its transaction aborts shortly.
                attempt += 1
                if attempt > MAX_LOCK_RETRIES:
                    raise RetriesExhausted(
                        f"ALTER TABLE {self.staging} RENAME", attempt, contention
                    ) from contention
                yield self.cluster.env.timeout(conn.retry_delay(attempt))
        ctx.probe("s2v:phase5_after_rename")

    # ----------------------------------------------------------------- finalize
    def _finalize(self, job=None) -> Generator:
        # Quiesce: zombie speculative duplicates may still be running their
        # (harmless) phases; wait for them so recovery below never races an
        # in-flight entitled committer.
        if job is not None:
            while any(task.live_attempts for task in job.tasks):
                yield self.cluster.env.timeout(0.05)
        with self.cluster.connect(
            self.opts.host, client_node=None,
            resource_pool=self.opts.resource_pool,
        ) as conn:
            if self.staged:
                return (yield from self._finalize_staged(conn))
            # Recovery: the entitled committer may have crashed between the
            # final-status update and the rename; the staging table is the
            # durable evidence and the driver completes the rename here.
            if self.mode == "overwrite":
                result = yield from conn.execute(
                    f"SELECT status FROM {FINAL_STATUS_TABLE} "
                    f"WHERE job_name = '{self.job_name}'"
                )
                staging_left = yield from conn.execute(
                    "SELECT COUNT(*) FROM v_catalog.tables "
                    f"WHERE table_name = '{self.staging}'"
                )
                if result.scalar() == "SUCCESS" and staging_left.scalar() > 0:
                    yield from conn.execute_with_retry(
                        f"DROP TABLE IF EXISTS {self.target}"
                    )
                    yield from conn.execute_with_retry(
                        f"ALTER TABLE {self.staging} RENAME TO {self.target}"
                    )
            result = yield from conn.execute(
                f"SELECT SUM(rows_inserted), SUM(rows_failed) "
                f"FROM {self.status_table}"
            )
            inserted, rejected = result.rows[0]
            result = yield from conn.execute(
                f"SELECT status, failed_percent FROM {FINAL_STATUS_TABLE} "
                f"WHERE job_name = '{self.job_name}'"
            )
            status, failed_percent = result.rows[0]
            # Teardown of the temporary tables (the final status table stays).
            # Retried drops: a zombie duplicate may still hold insert locks.
            for table in (self.status_table, self.committer_table, self.staging):
                yield from conn.execute_with_retry(f"DROP TABLE IF EXISTS {table}")
            return S2VResult(
                self.job_name,
                int(inserted or 0),
                int(rejected or 0),
                float(failed_percent or 0.0),
                status,
            )

    # ---------------------------------------------------------- staged finalize
    def _finalize_staged(self, conn) -> Generator:
        """Driver side of the staged commit: bulk loads, then publication.

        Reads the winner manifest, issues one bulk ``COPY ... FORMAT
        COLUMNAR`` per Vertica node over that node's share of the files
        (pulled from HDFS through the node's ingest ceiling, all nodes in
        parallel), applies the rejected-row tolerance, and publishes the
        staging table with the same conditional final-status arbiter the
        direct transport uses.  The driver connection has no client node,
        so this path cannot be severed — it is the single committer.
        """
        manifest_file = stg.manifest_path(self.opts.staging_root, self.job_name)
        if not self.hdfs.fs.exists(manifest_file):
            raise S2VError(
                f"{self.job_name}: staged job finished its tasks but no "
                f"manifest exists at {manifest_file!r}"
            )
        manifest = stg.decode_manifest(self.hdfs.fs.read(manifest_file))
        loaded, rejected = yield from self._bulk_load_staged(manifest)
        total = loaded + rejected
        failed_percent = (rejected / total) if total else 0.0
        if failed_percent > self.opts.failed_rows_percent_tolerance:
            yield from conn.execute_with_retry(
                f"UPDATE {FINAL_STATUS_TABLE} SET status = 'FAILURE', "
                f"failed_percent = {failed_percent} "
                f"WHERE job_name = '{self.job_name}' AND status = 'IN_PROGRESS'"
            )
            raise S2VError(
                f"{self.job_name}: rejected fraction {failed_percent:.4f} "
                f"exceeds tolerance {self.opts.failed_rows_percent_tolerance}"
            )
        ctx = _DriverContext()
        if self.mode == "append":
            yield from self._commit_append(ctx, conn, failed_percent)
        else:
            yield from self._commit_overwrite(ctx, conn, failed_percent)
        result = yield from conn.execute(
            f"SELECT status, failed_percent FROM {FINAL_STATUS_TABLE} "
            f"WHERE job_name = '{self.job_name}'"
        )
        status, failed_percent = result.rows[0]
        for table in (self.status_table, self.committer_table, self.staging):
            yield from conn.execute_with_retry(f"DROP TABLE IF EXISTS {table}")
        stg.sweep_job_dir(
            self.hdfs, self.opts.staging_root, self.job_name,
            committed=[entry["path"] for entry in manifest["files"]],
        )
        return S2VResult(
            self.job_name, loaded, rejected, float(failed_percent or 0.0),
            status,
        )

    def _bulk_load_staged(self, manifest) -> Generator:
        """One bulk COPY per Vertica node over its share of manifest files."""
        env = self.cluster.env
        by_node: Dict[str, List[Dict]] = {}
        for entry in manifest["files"]:
            node = self.nodes[entry["task"] % len(self.nodes)]
            by_node.setdefault(node, []).append(entry)
        counts: List[Tuple[int, int]] = []
        weight = self.opts.scale_factor
        header = self._columnar_header_bytes
        # shared across the per-node loads: spreads concurrent pulls over
        # block replicas instead of hammering each block's first copy
        load_map: Dict[str, float] = {}

        def load_node(node_name: str, entries: List[Dict]) -> Generator:
            with self.cluster.connect(
                node_name, client_node=None,
                resource_pool=self.opts.resource_pool,
            ) as node_conn:
                # COPY streams its input straight off the staging FS:
                # the pull transfers run concurrently with the node's
                # parse/redistribute work, just like a direct COPY
                # overlaps wire time with load CPU.
                payloads: List[bytes] = []
                virtual = 0.0
                pulls = []
                for entry in entries:
                    size = self.hdfs.fs.file_size(entry["path"])
                    nbytes = header + max(0, size - header) * weight
                    payloads.append(self.hdfs.fs.read(entry["path"]))
                    virtual += nbytes
                    pulls.append(env.process(
                        stg.pull_staged_file(
                            self.cluster, self.hdfs, entry["path"],
                            node_name, nbytes,
                            name=f"bulk-pull:{entry['path']}",
                            load_map=load_map,
                        ),
                        name=f"bulk-pull-{node_name}",
                    ))
                blob = b"".join(payloads)
                effective_weight = virtual / max(1, len(blob))
                with telemetry.span("hdfs.staging.bulk_copy", node=node_name,
                                    files=len(entries)):
                    yield from node_conn.execute(
                        f"COPY {self.staging} FROM "
                        f"'{stg.job_dir(self.opts.staging_root, self.job_name)}"
                        f"/node-{node_name}' FORMAT COLUMNAR "
                        f"REJECTMAX {CHUNK_REJECT_MAX} DIRECT",
                        copy_data=blob,
                        weight=effective_weight,
                    )
                    if pulls:
                        yield env.all_of(pulls)
                copy_result = node_conn.session.last_copy_result
                counts.append((copy_result.loaded, copy_result.rejected))

        loads = [
            env.process(load_node(node, entries), name=f"bulk-load-{node}")
            for node, entries in sorted(by_node.items())
        ]
        if loads:
            yield env.all_of(loads)
        return (
            sum(loaded for loaded, __ in counts),
            sum(rejected for __, rejected in counts),
        )
