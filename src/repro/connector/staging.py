"""Distributed-FS staging transport: shared plumbing for S2V and V2S.

The modern connector stages columnar files on a distributed filesystem
"for maximum performance of parallel loads" instead of streaming every
row over JDBC.  This module holds the pieces both directions share:

- **Task-attempt file naming.**  Every attempt writes its own
  immutable file (``task-<i>-attempt-<id>``) and *never renames it* —
  Stocator's insight that rename-based commit protocols are the
  scalability killer on object/distributed stores.  Which attempt's file
  wins is decided by the S2V status table's conditional update, and the
  winning set is recorded in a driver-readable ``_MANIFEST``; losing
  attempts' files become orphans swept at cleanup.
- **Charged file movement.**  Writes charge the writer → first-replica
  transfer and kick off the background replication pipeline over the
  datanodes' internal NICs (client acked after the first copy, like the
  HDFS write pipeline); pulls charge datanode → puller transfers through
  the pulling node's COPY ingest ceiling.
- **Telemetry.**  Every byte through the staging layer shows up under
  ``hdfs.staging.*`` counters.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Generator, List, Optional, Sequence

from repro import telemetry

#: name of the commit manifest inside a job's staging directory
MANIFEST_NAME = "_MANIFEST"


def job_dir(root: str, job_name: str) -> str:
    return f"{root}/{job_name}"


def attempt_file_path(root: str, job_name: str, task_index: int,
                      attempt_id: int) -> str:
    """The immutable, attempt-unique path one task attempt writes."""
    return f"{job_dir(root, job_name)}/task-{task_index:05d}-attempt-{attempt_id}"


def manifest_path(root: str, job_name: str) -> str:
    return f"{job_dir(root, job_name)}/{MANIFEST_NAME}"


def encode_manifest(job_name: str, entries: Sequence[Dict[str, Any]]) -> bytes:
    """The commit record: which attempt files won, in task order."""
    doc = {"job": job_name, "files": sorted(entries, key=lambda e: e["task"])}
    return json.dumps(doc, sort_keys=True).encode("utf-8")


def decode_manifest(data: bytes) -> Dict[str, Any]:
    return json.loads(data.decode("utf-8"))


def write_staged_file(
    hdfs,
    source_node,
    source_nic: str,
    path: str,
    payload: bytes,
    nbytes: float,
    name: str,
    load_map: Optional[Dict[str, float]] = None,
) -> Generator:
    """Write one staging file, charging the HDFS write pipeline.

    ``nbytes`` is the *virtual* byte volume (headers once, data scaled);
    the filesystem stores the real ``payload``.  One pipeline per block:
    the writer streams each block to the least-loaded of its replicas
    (``load_map``, shared across a job's concurrent writers, keeps hash
    placement from hot-spotting one datanode) and is acked once that
    copy lands; the remaining replicas fill in the background over the
    datanodes' internal NICs.
    """
    blocks = hdfs.fs.write(path, payload, overwrite=True)
    total = float(sum(block.size for block in blocks)) or 1.0
    pending = []
    for block in blocks:
        share = nbytes * (block.size / total)
        if share <= 0:
            continue
        replicas = list(block.replicas)
        entry = replicas[0]
        if load_map is not None:
            entry = min(
                replicas, key=lambda n: (load_map.get(n, 0.0), n)
            )
            load_map[entry] = load_map.get(entry, 0.0) + share
        first = hdfs.sim_nodes[entry]
        route = [source_node.nics[source_nic].tx, first.nics["default"].rx]
        if hdfs.disks:
            route.append(hdfs.disks[first.name])
        pending.append(
            hdfs.sim_cluster.network.transfer(route, share, name=name)
        )
        chain = [entry] + [r for r in replicas if r != entry]
        for src_name, dst_name in zip(chain, chain[1:]):
            src = hdfs.sim_nodes[src_name]
            dst = hdfs.sim_nodes[dst_name]
            hdfs.sim_cluster.network.transfer(
                [src.nics["internal"].tx, dst.nics["internal"].rx],
                share,
                name=f"staging-replicate:{path}",
            )
    if pending:
        yield hdfs.env.all_of(pending)
    telemetry.counter("hdfs.staging.files_written").inc()
    telemetry.counter("hdfs.staging.bytes_written").inc(int(nbytes))
    return blocks


def pick_replica(
    hdfs, block, load_map: Optional[Dict[str, float]] = None,
    share: float = 0.0,
) -> str:
    """Choose which live replica to read a block from.

    With a ``load_map`` (datanode name → bytes already assigned), the
    least-loaded replica wins — ties broken by name, so the choice is
    deterministic no matter what order concurrent readers run in.  The
    chosen node's entry is bumped by ``share``.
    """
    live = hdfs.fs.live_replicas(block) or list(block.replicas)
    if load_map is None:
        return live[0]
    choice = min(live, key=lambda name: (load_map.get(name, 0.0), name))
    load_map[choice] = load_map.get(choice, 0.0) + share
    return choice


def pull_staged_file(
    cluster,
    hdfs,
    path: str,
    node_name: str,
    nbytes: float,
    name: str,
    load_map: Optional[Dict[str, float]] = None,
) -> Generator:
    """Pull one staging file onto a Vertica node, through its ingest ceiling.

    Returns the file's real payload bytes.  The transfer runs datanode →
    the puller's external NIC and then through the node's COPY ingest
    link, like any other bulk load feeding that node.  ``load_map``
    spreads concurrent pulls across replicas (see :func:`pick_replica`).
    """
    payload = hdfs.fs.read(path)
    blocks = hdfs.fs.block_locations(path)
    total = float(sum(block.size for block in blocks)) or 1.0
    puller = cluster.sim_nodes[node_name]
    ingest = cluster.ingest_links.get(node_name)
    pending = []
    # One stream per block from a replica of that block, so a pull
    # fans in from every datanode holding a piece of the file.
    for block in blocks:
        share = nbytes * (block.size / total)
        if share <= 0:
            continue
        source = hdfs.sim_nodes[pick_replica(hdfs, block, load_map, share)]
        route: List[Any] = []
        if hdfs.disks:
            route.append(hdfs.disks[source.name])
        route.append(source.nics["default"].tx)
        route.append(puller.nics[cluster.cost_model.external_nic].rx)
        if ingest is not None:
            route.append(ingest)
        pending.append(
            cluster.sim_cluster.network.transfer(route, share, name=name)
        )
    if pending:
        yield cluster.env.all_of(pending)
    telemetry.counter("hdfs.staging.files_read").inc()
    telemetry.counter("hdfs.staging.bytes_read").inc(int(nbytes))
    return payload


def sweep_job_dir(hdfs, root: str, job_name: str,
                  committed: Sequence[str] = ()) -> List[str]:
    """Delete every file under a job's staging directory.

    Files *not* in ``committed`` (loser attempts, partial writes) count
    toward ``hdfs.staging.orphans_swept`` — the audit trail that the
    no-rename protocol's garbage actually gets collected.  Returns the
    deleted paths.
    """
    prefix = job_dir(root, job_name) + "/"
    committed_set = set(committed)
    deleted: List[str] = []
    for path in hdfs.fs.list(prefix):
        hdfs.fs.delete(path)
        deleted.append(path)
        if path not in committed_set and not path.endswith(MANIFEST_NAME):
            telemetry.counter("hdfs.staging.orphans_swept").inc()
    return deleted
