"""The 2-stage transfer alternative (paper §5 / spark-redshift style).

The paper discusses — as a design alternative, not its chosen approach —
staging data through an intermediate store both systems can reach, the
way the Databricks Redshift connector uses S3: Spark writes all partition
files to the landing zone, then the database runs a sequence of loads
bracketed by BEGIN/END.  The costs the paper predicts (an extra full copy
of the data, a dependency on a third system) and the benefit (system
decoupling) can be measured here against single-stage S2V
(``benchmarks/bench_ablation_twostage.py``).

Semantics: stage 1 is idempotent per file (overwrites); stage 2 loads
every file into a staging table under **one transaction**, then the
driver atomically renames (overwrite) or INSERT..SELECTs (append) —
exactly-once, with the driver as the single committer.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, List

from repro.avrolite import encode_rows
from repro.connector.options import ConnectorOptions
from repro.connector.s2v import S2VResult
from repro.spark.errors import AnalysisError


class TwoStageWriter:
    """Save a DataFrame to Vertica through an intermediate landing zone."""

    _job_ids = itertools.count(1)

    def __init__(self, spark, hdfs, mode: str, options: Dict[str, Any], dataframe):
        if mode not in ("overwrite", "append"):
            raise AnalysisError(f"two-stage writer supports overwrite/append, "
                                f"got {mode!r}")
        self.spark = spark
        self.hdfs = hdfs
        self.mode = mode
        self.dataframe = dataframe
        self.opts = ConnectorOptions(options, for_save=True)
        self.cluster = self.opts.cluster
        self.job_name = f"TWOSTAGE_JOB_{next(self._job_ids)}"
        self.target = self.opts.table
        self.staging = f"{self.job_name}_STAGING"
        self.landing = f"/twostage/{self.job_name}"
        self.avro_schema = dataframe.schema.to_avro("twostage_row")

    # ------------------------------------------------------------------ stage 1
    def _stage1_write_files(self) -> List[str]:
        """Spark tasks write one Avro file per partition to the landing zone."""
        hdfs = self.hdfs
        writer = self
        rdd = self.dataframe.rdd()
        if rdd.num_partitions > self.opts.num_partitions:
            rdd = rdd.coalesce(self.opts.num_partitions)
        weight = self.opts.scale_factor
        header_bytes = len(encode_rows(self.avro_schema, [],
                                       codec=self.opts.avro_codec))

        def make_task(split: int):
            def thunk(ctx) -> Generator:
                body = rdd.compute(split, ctx)
                rows = (yield from body) if hasattr(body, "__next__") else body
                payload = encode_rows(self.avro_schema, list(rows),
                                      codec=writer.opts.avro_codec)
                path = f"{writer.landing}/part-{split:05d}.avro"
                blocks = hdfs.fs.write(path, payload, overwrite=True)
                data_bytes = max(0, len(payload) - header_bytes)
                nbytes = header_bytes + data_bytes * weight
                first = hdfs.sim_nodes[blocks[0].replicas[0]]
                yield hdfs.sim_cluster.transfer(
                    ctx.node, first, nbytes, name=f"land:{path}"
                )
                return path

            return thunk

        thunks = [make_task(i) for i in range(rdd.num_partitions)]
        return self.spark.run_thunks(thunks, name=f"{self.job_name}.stage1")

    # ------------------------------------------------------------------ stage 2
    def _stage2_load(self, paths: List[str]) -> Generator:
        """One transaction loads every landed file into the staging table.

        Like ``COPY ... ON ANY NODE`` (and Redshift's COPY-from-S3), the
        cluster pulls the landed files in parallel — files are dealt
        round-robin to nodes, each pull bounded by that node's ingest
        ceiling — while the bracketing transaction keeps the load atomic.
        """
        env = self.cluster.env
        conn = self.cluster.connect(self.opts.host, client_node=None)
        model = self.cluster.cost_model
        weight = self.opts.scale_factor
        header_bytes = len(encode_rows(self.avro_schema, [],
                                       codec=self.opts.avro_codec))
        counts: List[int] = []
        nodes = self.cluster.node_names

        def load_file(path: str, node_name: str) -> Generator:
            payload = self.hdfs.fs.read(path)
            block = self.hdfs.fs.block_locations(path)[0]
            source = self.hdfs.sim_nodes[block.replicas[0]]
            puller = self.cluster.sim_nodes[node_name]
            data_bytes = max(1, len(payload) - header_bytes)
            nbytes = header_bytes + data_bytes * weight
            route = [
                source.nics["default"].tx,
                puller.nics[model.external_nic].rx,
            ]
            ingest = self.cluster.ingest_links.get(node_name)
            if ingest is not None:
                route.append(ingest)
            yield self.cluster.sim_cluster.network.transfer(
                route, nbytes, name=f"pull:{path}"
            )
            effective_weight = nbytes / len(payload)
            result = yield from conn.execute(
                f"COPY {self.staging} FROM STDIN FORMAT AVRO DIRECT",
                copy_data=payload,
                weight=effective_weight,
            )
            counts.append(result.rowcount)

        try:
            yield from conn.execute(
                self.dataframe.schema.create_table_sql(
                    self.staging,
                    segmented_by=[self.dataframe.schema.fields[0].name],
                    varchar_length=self.opts.varchar_length,
                )
            )
            yield from conn.execute("BEGIN")
            pulls = [
                env.process(load_file(path, nodes[index % len(nodes)]),
                            name=f"pull-{index}")
                for index, path in enumerate(paths)
            ]
            if pulls:
                yield env.all_of(pulls)
            loaded = sum(counts)
            yield from conn.execute("COMMIT")

            # Driver-side atomic publication (single committer, no races).
            if self.mode == "overwrite":
                yield from conn.execute(f"DROP TABLE IF EXISTS {self.target}")
                yield from conn.execute(
                    f"ALTER TABLE {self.staging} RENAME TO {self.target}"
                )
            else:
                yield from conn.execute("BEGIN")
                yield from conn.execute(
                    f"INSERT INTO {self.target} SELECT * FROM {self.staging}"
                )
                yield from conn.execute("COMMIT")
                yield from conn.execute(f"DROP TABLE {self.staging}")
            return loaded
        finally:
            conn.close()

    def _cleanup_landing(self) -> None:
        for path in self.hdfs.fs.list(self.landing + "/"):
            self.hdfs.fs.delete(path)

    # --------------------------------------------------------------------- save
    def save(self) -> S2VResult:
        if self.mode == "append" and not self.cluster.db.catalog.has_table(
            self.target
        ):
            raise AnalysisError(
                f"append mode requires existing table {self.target!r}"
            )
        paths = self._stage1_write_files()
        loaded = self.cluster.run(
            self._stage2_load(list(paths)), name=f"{self.job_name}.stage2"
        )
        self._cleanup_landing()
        return S2VResult(self.job_name, loaded, 0, 0.0, "SUCCESS")


def save_two_stage(spark, hdfs, dataframe, options: Dict[str, Any],
                   mode: str = "overwrite") -> S2VResult:
    """Convenience wrapper around :class:`TwoStageWriter`."""
    return TwoStageWriter(spark, hdfs, mode, options, dataframe).save()
