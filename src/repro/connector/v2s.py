"""V2S: loading Vertica data into Spark (§3.1).

Design, as in the paper:

- **Locality-aware hash-range queries** (§3.1.2).  The relation reads the
  table's hash-ring boundaries from the system catalog, splits the ring
  into ``numpartitions`` non-overlapping ranges that never cross a
  segment boundary, and each Spark task connects *to the node owning its
  range* and issues ``SELECT ... WHERE HASH(seg_cols) >= lo AND
  HASH(seg_cols) < hi``.  Only node-local data is requested, so no bytes
  cross the Vertica-internal network.
- **Snapshot consistency via epochs.**  Each scan pins the current epoch
  and every task queries ``AT EPOCH e``, so tasks running (or re-running,
  after failures) at different times still load one consistent view.
- **Pushdown** (§3.1.1).  Column pruning, the External Data Source API's
  filters, COUNT, and ``group_by().agg()`` (as per-range partial GROUP BY
  queries — see :meth:`VerticaRelation.build_aggregate_scan`) are all
  evaluated inside Vertica; views (and unsegmented tables) are
  parallelised with ``SYNTHETIC_HASH()`` ranges, which lets pre-defined
  views push down joins and arbitrary aggregations too.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.connector import staging as stg
from repro.connector.options import ConnectorOptions
from repro.hdfs.columnar import read_columnar, write_columnar
from repro.spark.datasource import (
    AggregateSpec,
    BaseRelation,
    Filter,
    filters_to_sql,
)
from repro.spark.rdd import RDD
from repro.spark.row import StructType
from repro.vertica.errors import CatalogError
from repro.vertica.hashring import HashRing, Segment, synthetic_ring
from repro.vertica.types import parse_type


#: unique suffix per staged export, so repeated scans never collide
_staged_export_ids = itertools.count(1)


class VerticaRelation(BaseRelation):
    """A Vertica table or view exposed through the Data Source API."""

    def __init__(self, spark: "SparkSession", options: Dict[str, Any]):  # noqa: F821
        self.spark = spark
        self.opts = ConnectorOptions(options)
        self.cluster = self.opts.cluster
        #: staging directories created by staged scans, for cleanup_staging
        self._staging_dirs: List[str] = []
        self._discover()

    # -- catalog discovery (driver-side metadata queries) -----------------------
    def _discover(self) -> None:
        db = self.cluster.db
        with db.connect(self.opts.host, failover=True) as session:
            self.is_view = db.catalog.has_view(self.opts.table)
            if self.is_view:
                self._schema = self._discover_view_schema(session)
                self.ring = synthetic_ring(self.cluster.node_names)
                self.segmentation_columns: List[str] = []
                self.unsegmented = False
                return
            rows = session.execute(
                "SELECT column_name, data_type FROM v_catalog.columns "
                f"WHERE table_name = '{self.opts.table}' ORDER BY ordinal_position"
            ).rows
            if not rows:
                raise CatalogError(f"relation {self.opts.table!r} does not exist")
            self._schema = StructType.from_sql_types(
                [(name, parse_type(type_name)) for name, type_name in rows]
            )
            seg = session.execute(
                "SELECT is_segmented, row_segmentation FROM v_catalog.tables "
                f"WHERE table_name = '{self.opts.table}'"
            ).rows
            self.unsegmented = not seg[0][0]
            if self.unsegmented:
                self.segmentation_columns = []
                self.ring = synthetic_ring(self.cluster.node_names)
            else:
                self.segmentation_columns = seg[0][1].split(",")
                segments = session.execute(
                    "SELECT segment_lower_bound, segment_upper_bound, node_name "
                    f"FROM v_catalog.segments WHERE table_name = '{self.opts.table}' "
                    "ORDER BY segment_lower_bound"
                ).rows
                self.ring = HashRing(
                    [Segment(lo, hi, node) for lo, hi, node in segments]
                )

    def _discover_view_schema(self, session) -> StructType:
        """Infer a view's schema from a one-row sample.

        Views have no catalog column types here, so types come from a
        sampled row (strings for NULL-only columns) — a documented
        limitation of the reproduction, not of the design.  The sample
        is pinned to the current epoch: without ``AT EPOCH`` a writer
        committing between discovery and the scan could make schema
        inference observe a row the scan's snapshot never contains.
        """
        from repro.spark.row import StructField

        epoch = session.scalar("SELECT current_epoch FROM v_catalog.epochs")
        sample = session.execute(
            f"AT EPOCH {epoch} SELECT * FROM {self.opts.table} LIMIT 1"
        )
        fields = []
        first = sample.rows[0] if sample.rows else [None] * len(sample.columns)
        for name, value in zip(sample.columns, first):
            if isinstance(value, bool):
                data_type = "boolean"
            elif isinstance(value, int):
                data_type = "long"
            elif isinstance(value, float):
                data_type = "double"
            else:
                data_type = "string"
            fields.append(StructField(name, data_type))
        return StructType(fields)

    # -- BaseRelation API ----------------------------------------------------------
    @property
    def schema(self) -> StructType:
        return self._schema

    def unhandled_filters(self, filters: Sequence[Filter]) -> List[Filter]:
        return []  # Vertica evaluates every pushdown filter shape

    def pin_epoch(self) -> int:
        """The snapshot epoch all of a job's task queries will read at."""
        with self.cluster.db.connect(self.opts.host, failover=True) as session:
            return session.scalar("SELECT current_epoch FROM v_catalog.epochs")

    def _range_predicate(self, lo: int, hi: int) -> str:
        if self.is_view or self.unsegmented:
            return f"SYNTHETIC_HASH() >= {lo} AND SYNTHETIC_HASH() < {hi}"
        hash_expr = f"HASH({', '.join(self.segmentation_columns)})"
        return f"{hash_expr} >= {lo} AND {hash_expr} < {hi}"

    def task_sql(
        self,
        epoch: int,
        lo: int,
        hi: int,
        required_columns: Optional[Sequence[str]],
        filters: Sequence[Filter],
    ) -> str:
        columns = ", ".join(required_columns) if required_columns else "*"
        predicate = self._range_predicate(lo, hi)
        pushed = filters_to_sql(filters)
        if pushed:
            predicate = f"{predicate} AND {pushed}"
        return (
            f"AT EPOCH {epoch} SELECT {columns} FROM {self.opts.table} "
            f"WHERE {predicate}"
        )

    def build_scan(
        self,
        required_columns: Optional[Sequence[str]] = None,
        filters: Sequence[Filter] = (),
    ) -> RDD:
        epoch = self.pin_epoch()
        if self.opts.transport == "staging":
            return self._build_staged_scan(epoch, required_columns, filters)
        plan = self.ring.partition_plan(self.opts.num_partitions)
        return VerticaScanRDD(self, plan, epoch, required_columns, filters)

    # -- staged transport (distributed-FS bridge) ------------------------------
    def _build_staged_scan(
        self,
        epoch: int,
        required_columns: Optional[Sequence[str]],
        filters: Sequence[Filter],
    ) -> "StagedScanRDD":
        """Export segment-local columnar files to the staging FS, then scan
        them one task per HDFS block.

        Each hash range is exported by *its owning node* (projection and
        filters applied inside Vertica, at the pinned epoch), so the wire
        from Vertica to the staging cluster carries columnar bytes instead
        of fat textual JDBC rows, and the export runs without the
        per-connection result-stream ceiling.  Scan tasks then read the
        staged blocks straight off the datanodes.
        """
        hdfs = self.opts.staging_fs
        scale = self.opts.scale_factor
        model = self.cluster.cost_model
        job = (
            f"V2S_{self.opts.table.replace('.', '_')}_"
            f"{next(_staged_export_ids)}"
        )
        export_dir = f"{self.opts.staging_root}/v2s/{job}"
        columns = list(required_columns) if required_columns else None
        struct = self._schema.select(columns) if columns else self._schema
        avro = struct.to_avro("v2s_row")
        header_bytes = len(write_columnar(avro, []))
        # Export at finer granularity than the scan asked for: more,
        # smaller segment-local files overlap per-range encode with the
        # node's writes and give the block scan evenly-packed waves
        # (the scan's partition count comes from the block count anyway).
        export_ranges = max(self.opts.num_partitions, 8 * len(self.cluster.node_names))
        ranges = [r for part in self.ring.partition_plan(export_ranges)
                  for r in part]
        # shared across the concurrent exports: balances block writes
        # over datanodes (see write_staged_file)
        write_load: Dict[str, float] = {}

        def export_range(index: int, lo: int, hi: int, node_name: str) -> Generator:
            vnode = self.cluster.sim_nodes[node_name]
            with self.cluster.connect(
                node_name, client_node=None,
                resource_pool=self.opts.resource_pool,
            ) as connection:
                sql = self.task_sql(epoch, lo, hi, columns, filters)
                with telemetry.span(
                    "v2s.staged_export", segment=index, node=node_name
                ):
                    # output_weight=0: rows leave as columnar file bytes
                    # (charged below), not as a JDBC result stream.
                    result = yield from connection.execute(
                        sql, weight=scale, output_weight=0.0
                    )
                    rows = result.rows
                    payload = write_columnar(avro, rows)
                    data_bytes = max(0, len(payload) - header_bytes)
                    nbytes = header_bytes + data_bytes * scale
                    encode_seconds = (
                        scale * len(rows) * model.encode_cpu_per_row
                        * model.columnar_encode_cpu_factor
                        + data_bytes * scale * model.encode_cpu_per_byte
                    )
                    if encode_seconds:
                        yield from vnode.compute(encode_seconds)
                    path = f"{export_dir}/seg-{index:05d}-{node_name}"
                    yield from stg.write_staged_file(
                        hdfs, vnode, model.external_nic, path, payload,
                        nbytes, name=f"v2s-export:{path}",
                        load_map=write_load,
                    )
            telemetry.counter("v2s.staged.segments_exported").inc()
            telemetry.counter("v2s.staged.rows_exported").inc(len(rows))

        def export_all() -> Generator:
            processes = [
                self.cluster.env.process(
                    export_range(i, lo, hi, node), name=f"{job}.seg{i}"
                )
                for i, (lo, hi, node) in enumerate(ranges)
            ]
            yield self.cluster.env.all_of(processes)

        # Register the directory *before* exporting: a failed export must
        # still be reclaimable via cleanup_staging().
        self._staging_dirs.append(export_dir)
        self.cluster.run(export_all(), name=f"v2s-staged-export:{self.opts.table}")
        blocks = []
        for path in sorted(hdfs.fs.list(export_dir + "/")):
            blocks.extend(hdfs.fs.block_locations(path))
        return StagedScanRDD(
            self, blocks, epoch, export_dir, struct, header_bytes
        )

    def cleanup_staging(self) -> List[str]:
        """Delete every staged export this relation has produced.

        Export files are scan-scoped garbage once the job that read them
        finishes; callers (and the chaos invariant checker) rely on this
        leaving the staging FS empty.  Returns the deleted paths.
        """
        hdfs = self.opts.staging_fs
        deleted: List[str] = []
        if hdfs is None:
            return deleted
        for directory in self._staging_dirs:
            for path in hdfs.fs.list(directory + "/"):
                hdfs.fs.delete(path)
                deleted.append(path)
        self._staging_dirs = []
        telemetry.counter("hdfs.staging.exports_cleaned").inc(len(deleted))
        return deleted

    def aggregate_task_sql(
        self,
        epoch: int,
        lo: int,
        hi: int,
        group_by: Sequence[str],
        aggregates: Sequence[AggregateSpec],
        filters: Sequence[Filter],
    ) -> str:
        keys = ", ".join(group_by)
        selection = ", ".join(
            list(group_by) + [spec.to_sql() for spec in aggregates]
        )
        predicate = self._range_predicate(lo, hi)
        pushed = filters_to_sql(filters)
        if pushed:
            predicate = f"{predicate} AND {pushed}"
        return (
            f"AT EPOCH {epoch} SELECT {selection} FROM {self.opts.table} "
            f"WHERE {predicate} GROUP BY {keys}"
        )

    def build_aggregate_scan(
        self,
        group_by: Sequence[str],
        aggregates: Sequence[AggregateSpec],
        filters: Sequence[Filter] = (),
    ) -> Optional[RDD]:
        """Partition-wise partial aggregation: one GROUP BY query per
        hash-range task, all pinned to a single epoch.

        Each task's query aggregates only its own hash range inside
        Vertica, so the wire carries one partial row per group per range
        instead of every raw row.  Views and unsegmented tables
        parallelise with ``SYNTHETIC_HASH()`` ranges like plain scans.
        """
        if not self.opts.agg_pushdown:
            return None
        epoch = self.pin_epoch()
        plan = self.ring.partition_plan(self.opts.num_partitions)
        telemetry.counter("v2s.agg_pushdown.jobs").inc()
        return VerticaAggregateScanRDD(
            self, plan, epoch, list(group_by), list(aggregates), tuple(filters)
        )

    def count(self, filters: Sequence[Filter] = ()) -> Optional[int]:
        """COUNT pushdown: one aggregate query computed inside Vertica."""
        epoch = self.pin_epoch()
        pushed = filters_to_sql(filters)
        where = f" WHERE {pushed}" if pushed else ""
        sql = f"AT EPOCH {epoch} SELECT COUNT(*) FROM {self.opts.table}{where}"
        relation = self

        def thunk(ctx) -> Generator:
            with relation.cluster.connect(
                relation.opts.host, ctx.node,
                resource_pool=relation.opts.resource_pool,
            ) as connection:
                result = yield from connection.execute(
                    sql, weight=relation.opts.scale_factor, output_weight=1.0
                )
                return result.scalar()

        return self.spark.run_thunks([thunk], name=f"count:{self.opts.table}")[0]


class VerticaScanRDD(RDD):
    """One partition per hash-range task (Figure 4)."""

    def __init__(
        self,
        relation: VerticaRelation,
        plan: List[List[Tuple[int, int, str]]],
        epoch: int,
        required_columns: Optional[Sequence[str]],
        filters: Sequence[Filter],
    ):
        super().__init__(relation.spark, len(plan))
        self.relation = relation
        self.plan = plan
        self.epoch = epoch
        self.required_columns = list(required_columns) if required_columns else None
        self.filters = tuple(filters)

    def compute(self, split: int, ctx) -> Generator:
        relation = self.relation
        rows: List[Tuple[Any, ...]] = []
        for lo, hi, node in self.plan[split]:
            # Locality: connect to the node that owns this hash range so the
            # query touches only node-local storage.
            with relation.cluster.connect(
                node, client_node=ctx.node,
                resource_pool=relation.opts.resource_pool,
            ) as connection:
                sql = relation.task_sql(
                    self.epoch, lo, hi, self.required_columns, self.filters
                )
                with telemetry.span("v2s.range_query", task=split, node=node):
                    result = yield from connection.execute(
                        sql, weight=relation.opts.scale_factor
                    )
                telemetry.counter("v2s.rows_fetched").inc(len(result.rows))
                rows.extend(result.rows)
        return rows


class StagedScanRDD(RDD):
    """One partition per staged-export HDFS block.

    The export already applied projection and filters inside Vertica at
    the pinned epoch, so tasks only move and decode bytes: read the block
    from a live replica, charge decode CPU, and return the block's share
    of its file's rows.
    """

    def __init__(
        self,
        relation: VerticaRelation,
        blocks: List[Any],
        epoch: int,
        export_dir: str,
        schema: StructType,
        header_bytes: int = 0,
    ):
        super().__init__(relation.spark, max(1, len(blocks)))
        self.relation = relation
        self.blocks = blocks
        self.epoch = epoch
        self.export_dir = export_dir
        self.schema = schema
        self.header_bytes = header_bytes
        #: cache: export file path -> decoded rows
        self._file_rows: Dict[str, List[Tuple[Any, ...]]] = {}
        # Balance block reads across replicas up front (deterministic and
        # independent of task execution order): without this, every task
        # reading its block's first replica hot-spots whichever datanode
        # the placement hash favoured.
        load_map: Dict[str, float] = {}
        hdfs = relation.opts.staging_fs
        self._sources: Dict[str, str] = {
            block.block_id: stg.pick_replica(
                hdfs, block, load_map, float(block.size)
            )
            for block in blocks
        }

    def _rows_of(self, path: str) -> List[Tuple[Any, ...]]:
        if path not in self._file_rows:
            hdfs = self.relation.opts.staging_fs
            __, rows = read_columnar(hdfs.fs.read(path))
            self._file_rows[path] = rows
        return self._file_rows[path]

    def compute(self, split: int, ctx) -> Generator:
        relation = self.relation
        hdfs = relation.opts.staging_fs
        if not self.blocks:
            return []
        block = self.blocks[split]
        live = hdfs.fs.live_replicas(block) or list(block.replicas)
        source_name = self._sources.get(block.block_id)
        if source_name not in live:  # assigned replica's node went down
            source_name = live[0]
        source_node = hdfs.sim_nodes[source_name]
        # Headers are real bytes paid once per file, not once per virtual
        # row: the block carries its proportional share of the file's
        # virtual volume (mirrors the export-side charge).
        file_size = hdfs.fs.file_size(block.path)
        virtual_file = self.header_bytes + max(
            0, file_size - self.header_bytes
        ) * relation.opts.scale_factor
        nbytes = virtual_file * (block.size / file_size) if file_size else 0.0
        with telemetry.span(
            "v2s.staged_read", task=split, block=block.block_id
        ):
            yield hdfs.sim_cluster.network.transfer(
                hdfs.read_route(source_node, ctx.node),
                nbytes,
                name=f"v2s-staged-read:{block.block_id}",
            )
            if hdfs.decode_cpu_per_byte:
                yield from ctx.node.compute(nbytes * hdfs.decode_cpu_per_byte)
        telemetry.counter("hdfs.staging.files_read").inc()
        telemetry.counter("hdfs.staging.bytes_read").inc(int(nbytes))
        # The block's share of its file's rows (rows are apportioned
        # evenly across the file's blocks, like the native HDFS source).
        siblings = [b for b in self.blocks if b.path == block.path]
        index = next(
            i for i, b in enumerate(siblings) if b.block_id == block.block_id
        )
        rows = self._rows_of(block.path)
        count = len(siblings)
        lo = (len(rows) * index) // count
        hi = (len(rows) * (index + 1)) // count
        telemetry.counter("v2s.rows_fetched").inc(hi - lo)
        return rows[lo:hi]


class VerticaAggregateScanRDD(RDD):
    """One partial-aggregate GROUP BY query per hash-range task.

    Rows are ``(*group keys, *partial aggregates)`` — the driver-side
    combiner in :class:`~repro.spark.dataframe.GroupedData` merges the
    per-range partials for groups that span ranges.
    """

    def __init__(
        self,
        relation: VerticaRelation,
        plan: List[List[Tuple[int, int, str]]],
        epoch: int,
        group_by: List[str],
        aggregates: List[AggregateSpec],
        filters: Tuple[Filter, ...],
    ):
        super().__init__(relation.spark, len(plan))
        self.relation = relation
        self.plan = plan
        self.epoch = epoch
        self.group_by = group_by
        self.aggregates = aggregates
        self.filters = filters

    def compute(self, split: int, ctx) -> Generator:
        relation = self.relation
        rows: List[Tuple[Any, ...]] = []
        for lo, hi, node in self.plan[split]:
            with relation.cluster.connect(
                node, client_node=ctx.node,
                resource_pool=relation.opts.resource_pool,
            ) as connection:
                sql = relation.aggregate_task_sql(
                    self.epoch, lo, hi, self.group_by, self.aggregates,
                    self.filters,
                )
                with telemetry.span("v2s.agg_query", task=split, node=node):
                    # Input-side work scales with virtual volume; the few
                    # partial group rows do not (cardinality is fixed), so
                    # they ship at real weight.
                    result = yield from connection.execute(
                        sql,
                        weight=relation.opts.scale_factor,
                        output_weight=1.0,
                    )
                fetched = len(result.rows)
                aggregated = result.cost.rows_aggregated
                telemetry.counter("v2s.agg_pushdown.queries").inc()
                telemetry.counter("v2s.agg_pushdown.partial_rows").inc(fetched)
                telemetry.counter(
                    "v2s.agg_pushdown.rows_aggregated"
                ).inc(aggregated)
                if aggregated > fetched:
                    # raw rows the wire did NOT carry thanks to pushdown
                    telemetry.counter(
                        "v2s.agg_pushdown.rows_saved"
                    ).inc(aggregated - fetched)
                rows.extend(result.rows)
        return rows
