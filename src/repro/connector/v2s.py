"""V2S: loading Vertica data into Spark (§3.1).

Design, as in the paper:

- **Locality-aware hash-range queries** (§3.1.2).  The relation reads the
  table's hash-ring boundaries from the system catalog, splits the ring
  into ``numpartitions`` non-overlapping ranges that never cross a
  segment boundary, and each Spark task connects *to the node owning its
  range* and issues ``SELECT ... WHERE HASH(seg_cols) >= lo AND
  HASH(seg_cols) < hi``.  Only node-local data is requested, so no bytes
  cross the Vertica-internal network.
- **Snapshot consistency via epochs.**  Each scan pins the current epoch
  and every task queries ``AT EPOCH e``, so tasks running (or re-running,
  after failures) at different times still load one consistent view.
- **Pushdown** (§3.1.1).  Column pruning, the External Data Source API's
  filters, COUNT, and ``group_by().agg()`` (as per-range partial GROUP BY
  queries — see :meth:`VerticaRelation.build_aggregate_scan`) are all
  evaluated inside Vertica; views (and unsegmented tables) are
  parallelised with ``SYNTHETIC_HASH()`` ranges, which lets pre-defined
  views push down joins and arbitrary aggregations too.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.connector.options import ConnectorOptions
from repro.spark.datasource import (
    AggregateSpec,
    BaseRelation,
    Filter,
    filters_to_sql,
)
from repro.spark.rdd import RDD
from repro.spark.row import StructType
from repro.vertica.errors import CatalogError
from repro.vertica.hashring import HashRing, Segment, synthetic_ring
from repro.vertica.types import parse_type


class VerticaRelation(BaseRelation):
    """A Vertica table or view exposed through the Data Source API."""

    def __init__(self, spark: "SparkSession", options: Dict[str, Any]):  # noqa: F821
        self.spark = spark
        self.opts = ConnectorOptions(options)
        self.cluster = self.opts.cluster
        self._discover()

    # -- catalog discovery (driver-side metadata queries) -----------------------
    def _discover(self) -> None:
        db = self.cluster.db
        with db.connect(self.opts.host, failover=True) as session:
            self.is_view = db.catalog.has_view(self.opts.table)
            if self.is_view:
                self._schema = self._discover_view_schema(session)
                self.ring = synthetic_ring(self.cluster.node_names)
                self.segmentation_columns: List[str] = []
                self.unsegmented = False
                return
            rows = session.execute(
                "SELECT column_name, data_type FROM v_catalog.columns "
                f"WHERE table_name = '{self.opts.table}' ORDER BY ordinal_position"
            ).rows
            if not rows:
                raise CatalogError(f"relation {self.opts.table!r} does not exist")
            self._schema = StructType.from_sql_types(
                [(name, parse_type(type_name)) for name, type_name in rows]
            )
            seg = session.execute(
                "SELECT is_segmented, row_segmentation FROM v_catalog.tables "
                f"WHERE table_name = '{self.opts.table}'"
            ).rows
            self.unsegmented = not seg[0][0]
            if self.unsegmented:
                self.segmentation_columns = []
                self.ring = synthetic_ring(self.cluster.node_names)
            else:
                self.segmentation_columns = seg[0][1].split(",")
                segments = session.execute(
                    "SELECT segment_lower_bound, segment_upper_bound, node_name "
                    f"FROM v_catalog.segments WHERE table_name = '{self.opts.table}' "
                    "ORDER BY segment_lower_bound"
                ).rows
                self.ring = HashRing(
                    [Segment(lo, hi, node) for lo, hi, node in segments]
                )

    def _discover_view_schema(self, session) -> StructType:
        """Infer a view's schema from a one-row sample.

        Views have no catalog column types here, so types come from a
        sampled row (strings for NULL-only columns) — a documented
        limitation of the reproduction, not of the design.  The sample
        is pinned to the current epoch: without ``AT EPOCH`` a writer
        committing between discovery and the scan could make schema
        inference observe a row the scan's snapshot never contains.
        """
        from repro.spark.row import StructField

        epoch = session.scalar("SELECT current_epoch FROM v_catalog.epochs")
        sample = session.execute(
            f"AT EPOCH {epoch} SELECT * FROM {self.opts.table} LIMIT 1"
        )
        fields = []
        first = sample.rows[0] if sample.rows else [None] * len(sample.columns)
        for name, value in zip(sample.columns, first):
            if isinstance(value, bool):
                data_type = "boolean"
            elif isinstance(value, int):
                data_type = "long"
            elif isinstance(value, float):
                data_type = "double"
            else:
                data_type = "string"
            fields.append(StructField(name, data_type))
        return StructType(fields)

    # -- BaseRelation API ----------------------------------------------------------
    @property
    def schema(self) -> StructType:
        return self._schema

    def unhandled_filters(self, filters: Sequence[Filter]) -> List[Filter]:
        return []  # Vertica evaluates every pushdown filter shape

    def pin_epoch(self) -> int:
        """The snapshot epoch all of a job's task queries will read at."""
        with self.cluster.db.connect(self.opts.host, failover=True) as session:
            return session.scalar("SELECT current_epoch FROM v_catalog.epochs")

    def _range_predicate(self, lo: int, hi: int) -> str:
        if self.is_view or self.unsegmented:
            return f"SYNTHETIC_HASH() >= {lo} AND SYNTHETIC_HASH() < {hi}"
        hash_expr = f"HASH({', '.join(self.segmentation_columns)})"
        return f"{hash_expr} >= {lo} AND {hash_expr} < {hi}"

    def task_sql(
        self,
        epoch: int,
        lo: int,
        hi: int,
        required_columns: Optional[Sequence[str]],
        filters: Sequence[Filter],
    ) -> str:
        columns = ", ".join(required_columns) if required_columns else "*"
        predicate = self._range_predicate(lo, hi)
        pushed = filters_to_sql(filters)
        if pushed:
            predicate = f"{predicate} AND {pushed}"
        return (
            f"AT EPOCH {epoch} SELECT {columns} FROM {self.opts.table} "
            f"WHERE {predicate}"
        )

    def build_scan(
        self,
        required_columns: Optional[Sequence[str]] = None,
        filters: Sequence[Filter] = (),
    ) -> RDD:
        epoch = self.pin_epoch()
        plan = self.ring.partition_plan(self.opts.num_partitions)
        return VerticaScanRDD(self, plan, epoch, required_columns, filters)

    def aggregate_task_sql(
        self,
        epoch: int,
        lo: int,
        hi: int,
        group_by: Sequence[str],
        aggregates: Sequence[AggregateSpec],
        filters: Sequence[Filter],
    ) -> str:
        keys = ", ".join(group_by)
        selection = ", ".join(
            list(group_by) + [spec.to_sql() for spec in aggregates]
        )
        predicate = self._range_predicate(lo, hi)
        pushed = filters_to_sql(filters)
        if pushed:
            predicate = f"{predicate} AND {pushed}"
        return (
            f"AT EPOCH {epoch} SELECT {selection} FROM {self.opts.table} "
            f"WHERE {predicate} GROUP BY {keys}"
        )

    def build_aggregate_scan(
        self,
        group_by: Sequence[str],
        aggregates: Sequence[AggregateSpec],
        filters: Sequence[Filter] = (),
    ) -> Optional[RDD]:
        """Partition-wise partial aggregation: one GROUP BY query per
        hash-range task, all pinned to a single epoch.

        Each task's query aggregates only its own hash range inside
        Vertica, so the wire carries one partial row per group per range
        instead of every raw row.  Views and unsegmented tables
        parallelise with ``SYNTHETIC_HASH()`` ranges like plain scans.
        """
        if not self.opts.agg_pushdown:
            return None
        epoch = self.pin_epoch()
        plan = self.ring.partition_plan(self.opts.num_partitions)
        telemetry.counter("v2s.agg_pushdown.jobs").inc()
        return VerticaAggregateScanRDD(
            self, plan, epoch, list(group_by), list(aggregates), tuple(filters)
        )

    def count(self, filters: Sequence[Filter] = ()) -> Optional[int]:
        """COUNT pushdown: one aggregate query computed inside Vertica."""
        epoch = self.pin_epoch()
        pushed = filters_to_sql(filters)
        where = f" WHERE {pushed}" if pushed else ""
        sql = f"AT EPOCH {epoch} SELECT COUNT(*) FROM {self.opts.table}{where}"
        relation = self

        def thunk(ctx) -> Generator:
            with relation.cluster.connect(
                relation.opts.host, ctx.node,
                resource_pool=relation.opts.resource_pool,
            ) as connection:
                result = yield from connection.execute(
                    sql, weight=relation.opts.scale_factor, output_weight=1.0
                )
                return result.scalar()

        return self.spark.run_thunks([thunk], name=f"count:{self.opts.table}")[0]


class VerticaScanRDD(RDD):
    """One partition per hash-range task (Figure 4)."""

    def __init__(
        self,
        relation: VerticaRelation,
        plan: List[List[Tuple[int, int, str]]],
        epoch: int,
        required_columns: Optional[Sequence[str]],
        filters: Sequence[Filter],
    ):
        super().__init__(relation.spark, len(plan))
        self.relation = relation
        self.plan = plan
        self.epoch = epoch
        self.required_columns = list(required_columns) if required_columns else None
        self.filters = tuple(filters)

    def compute(self, split: int, ctx) -> Generator:
        relation = self.relation
        rows: List[Tuple[Any, ...]] = []
        for lo, hi, node in self.plan[split]:
            # Locality: connect to the node that owns this hash range so the
            # query touches only node-local storage.
            with relation.cluster.connect(
                node, client_node=ctx.node,
                resource_pool=relation.opts.resource_pool,
            ) as connection:
                sql = relation.task_sql(
                    self.epoch, lo, hi, self.required_columns, self.filters
                )
                with telemetry.span("v2s.range_query", task=split, node=node):
                    result = yield from connection.execute(
                        sql, weight=relation.opts.scale_factor
                    )
                telemetry.counter("v2s.rows_fetched").inc(len(result.rows))
                rows.extend(result.rows)
        return rows


class VerticaAggregateScanRDD(RDD):
    """One partial-aggregate GROUP BY query per hash-range task.

    Rows are ``(*group keys, *partial aggregates)`` — the driver-side
    combiner in :class:`~repro.spark.dataframe.GroupedData` merges the
    per-range partials for groups that span ranges.
    """

    def __init__(
        self,
        relation: VerticaRelation,
        plan: List[List[Tuple[int, int, str]]],
        epoch: int,
        group_by: List[str],
        aggregates: List[AggregateSpec],
        filters: Tuple[Filter, ...],
    ):
        super().__init__(relation.spark, len(plan))
        self.relation = relation
        self.plan = plan
        self.epoch = epoch
        self.group_by = group_by
        self.aggregates = aggregates
        self.filters = filters

    def compute(self, split: int, ctx) -> Generator:
        relation = self.relation
        rows: List[Tuple[Any, ...]] = []
        for lo, hi, node in self.plan[split]:
            with relation.cluster.connect(
                node, client_node=ctx.node,
                resource_pool=relation.opts.resource_pool,
            ) as connection:
                sql = relation.aggregate_task_sql(
                    self.epoch, lo, hi, self.group_by, self.aggregates,
                    self.filters,
                )
                with telemetry.span("v2s.agg_query", task=split, node=node):
                    # Input-side work scales with virtual volume; the few
                    # partial group rows do not (cardinality is fixed), so
                    # they ship at real weight.
                    result = yield from connection.execute(
                        sql,
                        weight=relation.opts.scale_factor,
                        output_weight=1.0,
                    )
                fetched = len(result.rows)
                aggregated = result.cost.rows_aggregated
                telemetry.counter("v2s.agg_pushdown.queries").inc()
                telemetry.counter("v2s.agg_pushdown.partial_rows").inc(fetched)
                telemetry.counter(
                    "v2s.agg_pushdown.rows_aggregated"
                ).inc(aggregated)
                if aggregated > fetched:
                    # raw rows the wire did NOT carry thanks to pushdown
                    telemetry.counter(
                        "v2s.agg_pushdown.rows_saved"
                    ).inc(aggregated - fetched)
                rows.extend(result.rows)
        return rows
