"""An HDFS-like block filesystem plus a parquet-like columnar file format.

The paper's experimental setup stores every dataset in HDFS (co-located
with Spark) and compares the connector against Spark's native HDFS
read/write path using parquet files (§4.1, §4.7.2).  This package
provides both pieces:

- :mod:`repro.hdfs.filesystem` — a namenode/datanode cluster with fixed
  block size (64 MB by default, like the paper's config), configurable
  replication (default 3×) and block-location metadata, so readers can
  schedule one task per block like Spark does.
- :mod:`repro.hdfs.columnar` — a columnar container ("parquet-like") for
  DataFrame rows: schema-carrying, column-chunked, per-column deflate.
"""

from repro.hdfs.filesystem import Block, HdfsCluster, HdfsError
from repro.hdfs.columnar import read_columnar, read_columnar_concat, write_columnar

__all__ = [
    "Block",
    "HdfsCluster",
    "HdfsError",
    "read_columnar",
    "read_columnar_concat",
    "write_columnar",
]
