"""A parquet-like columnar file format for DataFrame rows.

Layout: magic, schema JSON (reusing the Avro-like schema language), row
count, then one deflate-compressed column chunk per field.  This is the
format Spark's native HDFS source reads/writes in the Figure 12 baseline
("Spark's native read/write methods for parquet files using DataFrames").
"""

from __future__ import annotations

import zlib
from typing import Any, List, Sequence, Tuple

from repro.avrolite.io import BinaryDecoder, BinaryEncoder, DatumReader, DatumWriter
from repro.avrolite.schema import Schema, SchemaError

MAGIC = b"PQL1"


def write_columnar(schema: Schema, rows: Sequence[Tuple[Any, ...]]) -> bytes:
    """Encode rows (tuples matching a record schema) into a columnar file."""
    if schema.kind != "record":
        raise SchemaError("columnar files require a record schema")
    header = BinaryEncoder()
    header.write_raw(MAGIC)
    header.write_string(schema.dumps())
    header.write_long(len(rows))
    chunks: List[bytes] = []
    for position, (name, field_schema) in enumerate(schema.fields):
        writer = DatumWriter(field_schema)
        enc = BinaryEncoder()
        for row in rows:
            writer.write(row[position], enc)
        compressed = zlib.compress(enc.getvalue(), 6)
        chunk_header = BinaryEncoder()
        chunk_header.write_string(name)
        chunk_header.write_long(len(compressed))
        chunks.append(chunk_header.getvalue() + compressed)
    return header.getvalue() + b"".join(chunks)


def _read_frame(dec: BinaryDecoder) -> Tuple[Schema, List[Tuple[Any, ...]]]:
    if dec.read_raw(4) != MAGIC:
        raise SchemaError("not a columnar file (bad magic)")
    schema = Schema.loads(dec.read_string())
    nrows = dec.read_long()
    columns: List[List[Any]] = []
    for name, field_schema in schema.fields:
        chunk_name = dec.read_string()
        if chunk_name != name:
            raise SchemaError(
                f"column chunk order mismatch: expected {name!r}, got {chunk_name!r}"
            )
        size = dec.read_long()
        payload = zlib.decompress(dec.read_raw(size))
        reader = DatumReader(field_schema)
        chunk_dec = BinaryDecoder(payload)
        columns.append([reader.read(chunk_dec) for __ in range(nrows)])
    rows = [tuple(column[i] for column in columns) for i in range(nrows)]
    return schema, rows


def read_columnar(data: bytes) -> Tuple[Schema, List[Tuple[Any, ...]]]:
    """Decode a columnar file back into (schema, rows)."""
    return _read_frame(BinaryDecoder(data))


def read_columnar_concat(data: bytes) -> Tuple[Schema, List[Tuple[Any, ...]]]:
    """Decode back-to-back concatenated columnar frames into one row list.

    Task-attempt files are plain byte strings, so a bulk loader can
    concatenate many of them into one payload; this reads every frame (a
    single :func:`read_columnar` would silently stop after the first) and
    requires all frames to carry the same schema.
    """
    dec = BinaryDecoder(data)
    schema: Schema = None  # type: ignore[assignment]
    rows: List[Tuple[Any, ...]] = []
    while not dec.exhausted:
        frame_schema, frame_rows = _read_frame(dec)
        if schema is None:
            schema = frame_schema
        elif frame_schema != schema:
            raise SchemaError(
                "concatenated columnar frames disagree on schema: "
                f"{schema.dumps()} vs {frame_schema.dumps()}"
            )
        rows.extend(frame_rows)
    if schema is None:
        raise SchemaError("empty columnar payload (no frames)")
    return schema, rows
