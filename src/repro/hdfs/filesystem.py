"""A namenode/datanode block filesystem.

Files are split into fixed-size blocks; each block is replicated onto
``replication`` distinct datanodes chosen deterministically (hash of the
block id), and the namenode keeps the path → block-list metadata.  Readers
can ask for block locations and read each block from a specific replica —
which is how the Spark-side HDFS data source schedules one partition per
block (the paper's 140 GB dataset became 2240 blocks and hence 2240 Spark
partitions).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, NamedTuple, Optional, Sequence

from repro.vertica.hashring import vertica_hash

#: the paper's HDFS block size
DEFAULT_BLOCK_SIZE = 64 * 1024 * 1024
DEFAULT_REPLICATION = 3


class HdfsError(Exception):
    """Namespace or block errors."""


class Block(NamedTuple):
    block_id: int
    path: str
    index: int
    size: int
    replicas: tuple  # node names holding a copy


class HdfsCluster:
    """The filesystem: namenode metadata plus per-node block stores."""

    _block_ids = itertools.count(1)

    def __init__(
        self,
        node_names: Sequence[str],
        block_size: int = DEFAULT_BLOCK_SIZE,
        replication: int = DEFAULT_REPLICATION,
    ):
        if not node_names:
            raise HdfsError("an HDFS cluster requires at least one datanode")
        if block_size <= 0:
            raise HdfsError(f"block size must be positive: {block_size}")
        if replication <= 0:
            raise HdfsError(f"replication must be positive: {replication}")
        self.node_names = list(node_names)
        self.block_size = block_size
        self.replication = min(replication, len(self.node_names))
        #: namenode: path -> ordered blocks
        self._names: Dict[str, List[Block]] = {}
        #: datanodes: node -> block_id -> bytes
        self._stores: Dict[str, Dict[int, bytes]] = {n: {} for n in self.node_names}
        #: datanodes currently marked DOWN (unreadable until recovered)
        self._down: set = set()

    # -- namespace -------------------------------------------------------------
    def exists(self, path: str) -> bool:
        return path in self._names

    def list(self, prefix: str = "") -> List[str]:
        return sorted(p for p in self._names if p.startswith(prefix))

    def delete(self, path: str) -> None:
        blocks = self._names.get(path)
        if blocks is None:
            raise HdfsError(f"no such file {path!r}")
        # Free replica bytes *before* dropping the namenode entry: a crash
        # midway then leaves a still-referenced (truncated, detectable) file
        # rather than unreferenced store bytes no audit can attribute.
        for block in blocks:
            for node in block.replicas:
                self._stores[node].pop(block.block_id, None)
        del self._names[path]

    def file_size(self, path: str) -> int:
        return sum(b.size for b in self._blocks(path))

    def orphaned_blocks(self) -> Dict[str, List[int]]:
        """Store bytes no namenode entry references (should always be empty).

        An audit hook: overwrite/delete free replica bytes before touching
        namespace metadata, so no interleaving of those operations can leave
        unreferenced blocks behind.  Returns ``node -> [block ids]`` for any
        that exist anyway.
        """
        referenced = {
            block.block_id for blocks in self._names.values() for block in blocks
        }
        orphans: Dict[str, List[int]] = {}
        for node, store in self._stores.items():
            leaked = sorted(set(store) - referenced)
            if leaked:
                orphans[node] = leaked
        return orphans

    def block_locations(self, path: str) -> List[Block]:
        """The per-block metadata a block-aware reader schedules over."""
        return list(self._blocks(path))

    def _blocks(self, path: str) -> List[Block]:
        try:
            return self._names[path]
        except KeyError:
            raise HdfsError(f"no such file {path!r}") from None

    # -- data -------------------------------------------------------------------
    def write(self, path: str, data: bytes, overwrite: bool = False) -> List[Block]:
        if not path or path.endswith("/"):
            raise HdfsError(f"invalid path {path!r}")
        if path in self._names and not overwrite:
            raise HdfsError(f"file {path!r} already exists")
        if path in self._names:
            # Free the old file's replicas first — an overwrite interrupted
            # after this point can lose the old contents (overwrite is not
            # atomic, as in HDFS) but can never strand their bytes.
            self.delete(path)
        blocks: List[Block] = []
        chunks: List[bytes] = []
        for index in range(0, max(1, -(-len(data) // self.block_size))):
            chunk = data[index * self.block_size : (index + 1) * self.block_size]
            block_id = next(self._block_ids)
            replicas = self._place(block_id)
            blocks.append(Block(block_id, path, index, len(chunk), tuple(replicas)))
            chunks.append(chunk)
        # Register the namenode entry before filling the stores: a crash
        # mid-placement leaves a referenced file with missing replicas (a
        # detectable corrupt read) instead of orphaned store bytes.
        self._names[path] = blocks
        for block, chunk in zip(blocks, chunks):
            for node in block.replicas:
                self._stores[node][block.block_id] = chunk
        return blocks

    def _place(self, block_id: int) -> List[str]:
        """Deterministic replica placement: hash-offset round robin."""
        start = vertica_hash(block_id) % len(self.node_names)
        return [
            self.node_names[(start + i) % len(self.node_names)]
            for i in range(self.replication)
        ]

    # -- datanode liveness --------------------------------------------------------
    def fail_node(self, node: str) -> None:
        """Mark a datanode DOWN: its replicas stay placed but unreadable."""
        if node not in self._stores:
            raise HdfsError(f"unknown datanode {node!r}")
        self._down.add(node)

    def recover_node(self, node: str) -> None:
        if node not in self._stores:
            raise HdfsError(f"unknown datanode {node!r}")
        self._down.discard(node)

    def is_down(self, node: str) -> bool:
        return node in self._down

    def live_replicas(self, block: Block) -> List[str]:
        """The block's replicas on datanodes that are currently UP."""
        return [n for n in block.replicas if n not in self._down]

    def read(self, path: str) -> bytes:
        out = []
        for block in self._blocks(path):
            live = self.live_replicas(block)
            if not live:
                raise HdfsError(
                    f"block {block.block_id} of {path!r} has no live replica: "
                    f"all of {list(block.replicas)} are DOWN"
                )
            out.append(self.read_block(block, live[0]))
        return b"".join(out)

    def read_block(self, block: Block, node: Optional[str] = None) -> bytes:
        """Read one block from a specific replica (default: first live one).

        Failures are spelled out: asking a non-replica, or a replica whose
        datanode is DOWN, names the block, the asked node and the candidate
        replicas (with their liveness) — never an opaque KeyError.
        """
        live = self.live_replicas(block)
        target = node or (live[0] if live else None)
        candidates = ", ".join(
            f"{n}{' (DOWN)' if n in self._down else ''}" for n in block.replicas
        )
        if target is None:
            raise HdfsError(
                f"block {block.block_id} of {block.path!r} has no live "
                f"replica; candidates: {candidates}"
            )
        if target not in block.replicas:
            raise HdfsError(
                f"node {target!r} holds no replica of block {block.block_id} "
                f"of {block.path!r}; candidates: {candidates}"
            )
        if target in self._down:
            raise HdfsError(
                f"replica of block {block.block_id} of {block.path!r} on "
                f"{target!r} is unreadable: datanode is DOWN; "
                f"candidates: {candidates}"
            )
        try:
            return self._stores[target][block.block_id]
        except KeyError:
            raise HdfsError(
                f"block {block.block_id} missing from {target!r} (corrupt "
                f"replica); candidates: {candidates}"
            ) from None

    def total_blocks(self, path: str) -> int:
        return len(self._blocks(path))
