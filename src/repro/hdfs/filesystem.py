"""A namenode/datanode block filesystem.

Files are split into fixed-size blocks; each block is replicated onto
``replication`` distinct datanodes chosen deterministically (hash of the
block id), and the namenode keeps the path → block-list metadata.  Readers
can ask for block locations and read each block from a specific replica —
which is how the Spark-side HDFS data source schedules one partition per
block (the paper's 140 GB dataset became 2240 blocks and hence 2240 Spark
partitions).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, NamedTuple, Optional, Sequence

from repro.vertica.hashring import vertica_hash

#: the paper's HDFS block size
DEFAULT_BLOCK_SIZE = 64 * 1024 * 1024
DEFAULT_REPLICATION = 3


class HdfsError(Exception):
    """Namespace or block errors."""


class Block(NamedTuple):
    block_id: int
    path: str
    index: int
    size: int
    replicas: tuple  # node names holding a copy


class HdfsCluster:
    """The filesystem: namenode metadata plus per-node block stores."""

    _block_ids = itertools.count(1)

    def __init__(
        self,
        node_names: Sequence[str],
        block_size: int = DEFAULT_BLOCK_SIZE,
        replication: int = DEFAULT_REPLICATION,
    ):
        if not node_names:
            raise HdfsError("an HDFS cluster requires at least one datanode")
        if block_size <= 0:
            raise HdfsError(f"block size must be positive: {block_size}")
        if replication <= 0:
            raise HdfsError(f"replication must be positive: {replication}")
        self.node_names = list(node_names)
        self.block_size = block_size
        self.replication = min(replication, len(self.node_names))
        #: namenode: path -> ordered blocks
        self._names: Dict[str, List[Block]] = {}
        #: datanodes: node -> block_id -> bytes
        self._stores: Dict[str, Dict[int, bytes]] = {n: {} for n in self.node_names}

    # -- namespace -------------------------------------------------------------
    def exists(self, path: str) -> bool:
        return path in self._names

    def list(self, prefix: str = "") -> List[str]:
        return sorted(p for p in self._names if p.startswith(prefix))

    def delete(self, path: str) -> None:
        blocks = self._names.pop(path, None)
        if blocks is None:
            raise HdfsError(f"no such file {path!r}")
        for block in blocks:
            for node in block.replicas:
                self._stores[node].pop(block.block_id, None)

    def file_size(self, path: str) -> int:
        return sum(b.size for b in self._blocks(path))

    def block_locations(self, path: str) -> List[Block]:
        """The per-block metadata a block-aware reader schedules over."""
        return list(self._blocks(path))

    def _blocks(self, path: str) -> List[Block]:
        try:
            return self._names[path]
        except KeyError:
            raise HdfsError(f"no such file {path!r}") from None

    # -- data -------------------------------------------------------------------
    def write(self, path: str, data: bytes, overwrite: bool = False) -> List[Block]:
        if not path or path.endswith("/"):
            raise HdfsError(f"invalid path {path!r}")
        if path in self._names and not overwrite:
            raise HdfsError(f"file {path!r} already exists")
        if path in self._names:
            self.delete(path)
        blocks: List[Block] = []
        for index in range(0, max(1, -(-len(data) // self.block_size))):
            chunk = data[index * self.block_size : (index + 1) * self.block_size]
            block_id = next(self._block_ids)
            replicas = self._place(block_id)
            block = Block(block_id, path, index, len(chunk), tuple(replicas))
            for node in replicas:
                self._stores[node][block_id] = chunk
            blocks.append(block)
        self._names[path] = blocks
        return blocks

    def _place(self, block_id: int) -> List[str]:
        """Deterministic replica placement: hash-offset round robin."""
        start = vertica_hash(block_id) % len(self.node_names)
        return [
            self.node_names[(start + i) % len(self.node_names)]
            for i in range(self.replication)
        ]

    def read(self, path: str) -> bytes:
        return b"".join(
            self.read_block(block, block.replicas[0]) for block in self._blocks(path)
        )

    def read_block(self, block: Block, node: Optional[str] = None) -> bytes:
        """Read one block from a specific replica (default: first)."""
        target = node or block.replicas[0]
        if target not in block.replicas:
            raise HdfsError(
                f"node {target!r} holds no replica of block {block.block_id}"
            )
        try:
            return self._stores[target][block.block_id]
        except KeyError:
            raise HdfsError(
                f"block {block.block_id} missing from {target!r} (corrupt replica)"
            ) from None

    def total_blocks(self, path: str) -> int:
        return len(self._blocks(path))
