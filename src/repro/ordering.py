"""Shared NULLS-LAST ordering keys.

Both sort paths in the fabric — the engine's ``ORDER BY`` (now the plan
pipeline's Sort operator) and the Spark-side ``DataFrame.order_by`` —
implement the same rule: **NULLs sort last in both directions**; only the
value ordering reverses, never the null rank.  PR 3 fixed that rule in
two places independently; this module is the single home for it.

``null_last_key`` builds one component of a sort key::

    sorted(rows, key=lambda r: tuple(null_last_key(v, descending=d)
                                     for v, d in zip(r, directions)))

Heterogeneous values that Python refuses to compare directly (e.g. int
vs str, which SQL would have rejected at type-check time) fall back to
comparing their string forms, so a sort never blows up mid-query.
"""

from __future__ import annotations

from typing import Any, Tuple


class AscendingKey:
    """Sort-key wrapper; NULL ordering is decided by the rank element."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "AscendingKey") -> bool:
        a, b = self.value, other.value
        if a is None or b is None:
            return False
        try:
            return a < b
        except TypeError:
            return str(a) < str(b)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AscendingKey) and self.value == other.value


class DescendingKey(AscendingKey):
    def __lt__(self, other: "AscendingKey") -> bool:  # type: ignore[override]
        a, b = self.value, other.value
        if a is None or b is None:
            return False
        try:
            return b < a
        except TypeError:
            return str(b) < str(a)


def null_last_key(value: Any, descending: bool = False) -> Tuple[bool, AscendingKey]:
    """One sort-key component: ``(null rank, direction-aware wrapper)``."""
    wrap = DescendingKey if descending else AscendingKey
    return (value is None, wrap(value))
