"""PMML (Predictive Model Markup Language) support.

The paper's MD component exports Spark MLlib models as PMML documents,
stores them in Vertica's internal DFS, and scores them in-database via a
generic JPMML-style evaluator (§3.3).  This package implements the subset
of PMML 4.1 those models need:

- :mod:`repro.pmml.document` — model classes (regression, k-means
  clustering, linear SVM) plus the data dictionary,
- :mod:`repro.pmml.xmlio` — XML serialisation and parsing,
- :mod:`repro.pmml.evaluator` — the generic "numeric vector in, number
  out" evaluator used by the ``PMMLPredict`` UDF.
"""

from repro.pmml.document import (
    ClusteringModel,
    DataField,
    PmmlDocument,
    PmmlError,
    RegressionModel,
    SupportVectorMachineModel,
)
from repro.pmml.xmlio import parse_pmml, to_xml
from repro.pmml.evaluator import ModelEvaluator

__all__ = [
    "ClusteringModel",
    "DataField",
    "ModelEvaluator",
    "PmmlDocument",
    "PmmlError",
    "RegressionModel",
    "SupportVectorMachineModel",
    "parse_pmml",
    "to_xml",
]
