"""PMML document model.

A :class:`PmmlDocument` pairs a data dictionary (the named input fields)
with exactly one model.  Three model families cover what Spark 1.x could
export to PMML and what the paper's generic evaluator supports — models
whose input is a numeric vector and whose output is a number:

- :class:`RegressionModel` — linear regression, and binary logistic
  regression via the ``logit`` normalization method;
- :class:`ClusteringModel` — k-means (squared-Euclidean nearest centre);
- :class:`SupportVectorMachineModel` — linear SVM classification by the
  sign of the margin.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence


class PmmlError(Exception):
    """Raised for malformed PMML documents or evaluation mismatches."""


class DataField:
    """One named input field in the data dictionary."""

    def __init__(self, name: str, dtype: str = "double", optype: str = "continuous"):
        if not name:
            raise PmmlError("data field requires a name")
        self.name = name
        self.dtype = dtype
        self.optype = optype

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataField):
            return NotImplemented
        return (self.name, self.dtype, self.optype) == (
            other.name,
            other.dtype,
            other.optype,
        )

    def __repr__(self) -> str:
        return f"DataField({self.name!r}, {self.dtype!r})"


class _Model:
    """Shared behaviour: every model maps a numeric vector to a number."""

    model_kind = "model"

    def __init__(self, feature_names: Sequence[str], model_name: str = ""):
        if not feature_names:
            raise PmmlError("a model requires at least one feature")
        self.feature_names = list(feature_names)
        self.model_name = model_name or self.model_kind

    @property
    def num_features(self) -> int:
        return len(self.feature_names)

    def _check_vector(self, vector: Sequence[float]) -> List[float]:
        if len(vector) != self.num_features:
            raise PmmlError(
                f"model {self.model_name!r} expects {self.num_features} "
                f"features, got {len(vector)}"
            )
        try:
            return [float(v) for v in vector]
        except (TypeError, ValueError) as exc:
            raise PmmlError(f"non-numeric feature value: {exc}") from exc

    def predict(self, vector: Sequence[float]) -> float:
        raise NotImplementedError


class RegressionModel(_Model):
    """PMML ``RegressionModel``.

    ``function_name`` is ``"regression"`` (output = linear score) or
    ``"classification"`` with ``normalization="logit"`` (output = positive
    class probability, as Spark's logistic regression exports).
    """

    model_kind = "RegressionModel"

    def __init__(
        self,
        feature_names: Sequence[str],
        coefficients: Sequence[float],
        intercept: float = 0.0,
        function_name: str = "regression",
        normalization: str = "none",
        model_name: str = "",
    ):
        super().__init__(feature_names, model_name)
        if len(coefficients) != len(feature_names):
            raise PmmlError(
                f"{len(coefficients)} coefficients for "
                f"{len(feature_names)} features"
            )
        if function_name not in ("regression", "classification"):
            raise PmmlError(f"unsupported functionName {function_name!r}")
        if normalization not in ("none", "logit"):
            raise PmmlError(f"unsupported normalizationMethod {normalization!r}")
        self.coefficients = [float(c) for c in coefficients]
        self.intercept = float(intercept)
        self.function_name = function_name
        self.normalization = normalization

    def score(self, vector: Sequence[float]) -> float:
        values = self._check_vector(vector)
        return self.intercept + sum(c * v for c, v in zip(self.coefficients, values))

    def predict(self, vector: Sequence[float]) -> float:
        score = self.score(vector)
        if self.normalization == "logit":
            if score >= 0:
                return 1.0 / (1.0 + math.exp(-score))
            expx = math.exp(score)
            return expx / (1.0 + expx)
        return score


class ClusteringModel(_Model):
    """PMML ``ClusteringModel`` with squared-Euclidean comparison (k-means)."""

    model_kind = "ClusteringModel"

    def __init__(
        self,
        feature_names: Sequence[str],
        centers: Sequence[Sequence[float]],
        model_name: str = "",
    ):
        super().__init__(feature_names, model_name)
        if not centers:
            raise PmmlError("clustering model requires at least one cluster")
        self.centers = [[float(v) for v in center] for center in centers]
        for center in self.centers:
            if len(center) != self.num_features:
                raise PmmlError(
                    f"cluster centre has {len(center)} values for "
                    f"{self.num_features} features"
                )

    @property
    def num_clusters(self) -> int:
        return len(self.centers)

    def predict(self, vector: Sequence[float]) -> float:
        """Index of the nearest cluster centre."""
        values = self._check_vector(vector)
        best_index = 0
        best_distance = math.inf
        for index, center in enumerate(self.centers):
            distance = sum((v - c) ** 2 for v, c in zip(values, center))
            if distance < best_distance:
                best_distance = distance
                best_index = index
        return float(best_index)


class SupportVectorMachineModel(_Model):
    """A linear-kernel PMML ``SupportVectorMachineModel`` (binary)."""

    model_kind = "SupportVectorMachineModel"

    def __init__(
        self,
        feature_names: Sequence[str],
        weights: Sequence[float],
        intercept: float = 0.0,
        model_name: str = "",
    ):
        super().__init__(feature_names, model_name)
        if len(weights) != len(feature_names):
            raise PmmlError(f"{len(weights)} weights for {len(feature_names)} features")
        self.weights = [float(w) for w in weights]
        self.intercept = float(intercept)

    def margin(self, vector: Sequence[float]) -> float:
        values = self._check_vector(vector)
        return self.intercept + sum(w * v for w, v in zip(self.weights, values))

    def predict(self, vector: Sequence[float]) -> float:
        """Class label: 1.0 for non-negative margin, else 0.0."""
        return 1.0 if self.margin(vector) >= 0 else 0.0


class PmmlDocument:
    """A complete PMML document: data dictionary + one model."""

    def __init__(
        self,
        model: _Model,
        data_fields: Optional[Sequence[DataField]] = None,
        version: str = "4.1",
        description: str = "",
    ):
        self.model = model
        self.data_fields = (
            list(data_fields)
            if data_fields is not None
            else [DataField(name) for name in model.feature_names]
        )
        dictionary_names = {f.name for f in self.data_fields}
        for name in model.feature_names:
            if name not in dictionary_names:
                raise PmmlError(
                    f"model feature {name!r} missing from the data dictionary"
                )
        self.version = version
        self.description = description

    @property
    def model_type(self) -> str:
        return self.model.model_kind

    @property
    def feature_names(self) -> List[str]:
        return list(self.model.feature_names)

    def predict(self, vector: Sequence[float]) -> float:
        return self.model.predict(vector)
