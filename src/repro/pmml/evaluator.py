"""A generic JPMML-style model evaluator.

The paper (§3.3) describes "a generic model evaluator for models whose
input is a numeric vector and the output is a number (e.g., logistic
regression, k-means, etc)."  :class:`ModelEvaluator` is that component: it
wraps a parsed :class:`~repro.pmml.document.PmmlDocument`, validates the
argument arity against the model's mining schema, and scores one row at a
time — exactly what the ``PMMLPredict`` UDF calls per tuple.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.pmml.document import PmmlDocument, PmmlError
from repro.pmml.xmlio import parse_pmml


class ModelEvaluator:
    """Evaluates a PMML model over numeric feature vectors."""

    def __init__(self, document: PmmlDocument):
        self.document = document

    @classmethod
    def from_xml(cls, text: str) -> "ModelEvaluator":
        return cls(parse_pmml(text))

    @property
    def feature_names(self) -> List[str]:
        return self.document.feature_names

    @property
    def model_type(self) -> str:
        return self.document.model_type

    def evaluate(self, vector: Sequence[float]) -> float:
        """Score one positional numeric vector."""
        return self.document.predict(vector)

    def evaluate_named(self, values: Dict[str, float]) -> float:
        """Score a row given as a name→value mapping."""
        try:
            vector = [values[name] for name in self.feature_names]
        except KeyError as exc:
            raise PmmlError(f"input row missing feature {exc}") from None
        return self.document.predict(vector)

    def evaluate_batch(self, rows: Sequence[Sequence[float]]) -> List[float]:
        """Score many rows; used by the in-database scoring UDF."""
        return [self.document.predict(row) for row in rows]
