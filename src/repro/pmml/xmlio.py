"""PMML XML serialisation and parsing.

Emits the PMML 4.1 element shapes that JPMML-style consumers expect:
``DataDictionary``/``DataField``, ``MiningSchema``/``MiningField``, and the
model-specific elements (``RegressionTable``/``NumericPredictor``,
``Cluster``, ``SupportVectorMachine``).  Parsing is strict about the
structures we emit and tolerant of extra attributes, which is enough for
round-tripping models between the Spark and Vertica sides of the fabric.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import List

from repro.pmml.document import (
    ClusteringModel,
    DataField,
    PmmlDocument,
    PmmlError,
    RegressionModel,
    SupportVectorMachineModel,
)


def to_xml(document: PmmlDocument) -> str:
    """Serialise a :class:`PmmlDocument` to a PMML XML string."""
    root = ET.Element("PMML", {"version": document.version})
    header = ET.SubElement(root, "Header")
    if document.description:
        header.set("description", document.description)
    ET.SubElement(header, "Application", {"name": "repro", "version": "1.0"})

    dictionary = ET.SubElement(
        root, "DataDictionary", {"numberOfFields": str(len(document.data_fields))}
    )
    for field in document.data_fields:
        ET.SubElement(
            dictionary,
            "DataField",
            {"name": field.name, "optype": field.optype, "dataType": field.dtype},
        )

    model = document.model
    if isinstance(model, RegressionModel):
        _write_regression(root, model)
    elif isinstance(model, ClusteringModel):
        _write_clustering(root, model)
    elif isinstance(model, SupportVectorMachineModel):
        _write_svm(root, model)
    else:  # pragma: no cover - construction restricts model types
        raise PmmlError(f"cannot serialise model kind {model.model_kind!r}")

    return ET.tostring(root, encoding="unicode")


def _write_mining_schema(parent: ET.Element, feature_names: List[str]) -> None:
    schema = ET.SubElement(parent, "MiningSchema")
    for name in feature_names:
        ET.SubElement(schema, "MiningField", {"name": name, "usageType": "active"})


def _write_regression(root: ET.Element, model: RegressionModel) -> None:
    element = ET.SubElement(
        root,
        "RegressionModel",
        {
            "modelName": model.model_name,
            "functionName": model.function_name,
            "normalizationMethod": model.normalization,
        },
    )
    _write_mining_schema(element, model.feature_names)
    table = ET.SubElement(
        element, "RegressionTable", {"intercept": repr(model.intercept)}
    )
    for name, coefficient in zip(model.feature_names, model.coefficients):
        ET.SubElement(
            table,
            "NumericPredictor",
            {"name": name, "coefficient": repr(coefficient)},
        )


def _write_clustering(root: ET.Element, model: ClusteringModel) -> None:
    element = ET.SubElement(
        root,
        "ClusteringModel",
        {
            "modelName": model.model_name,
            "functionName": "clustering",
            "modelClass": "centerBased",
            "numberOfClusters": str(model.num_clusters),
        },
    )
    _write_mining_schema(element, model.feature_names)
    ET.SubElement(
        element, "ComparisonMeasure", {"kind": "distance", "compareFunction": "absDiff"}
    )
    for name in model.feature_names:
        ET.SubElement(element, "ClusteringField", {"field": name})
    for index, center in enumerate(model.centers):
        cluster = ET.SubElement(element, "Cluster", {"id": str(index)})
        array = ET.SubElement(cluster, "Array", {"type": "real", "n": str(len(center))})
        array.text = " ".join(repr(v) for v in center)


def _write_svm(root: ET.Element, model: SupportVectorMachineModel) -> None:
    element = ET.SubElement(
        root,
        "SupportVectorMachineModel",
        {"modelName": model.model_name, "functionName": "classification"},
    )
    _write_mining_schema(element, model.feature_names)
    ET.SubElement(element, "LinearKernelType")
    machine = ET.SubElement(
        element, "SupportVectorMachine", {"intercept": repr(model.intercept)}
    )
    coefficients = ET.SubElement(machine, "Coefficients")
    for name, weight in zip(model.feature_names, model.weights):
        ET.SubElement(
            coefficients, "Coefficient", {"name": name, "value": repr(weight)}
        )


def parse_pmml(text: str) -> PmmlDocument:
    """Parse a PMML XML string produced by :func:`to_xml`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise PmmlError(f"malformed PMML XML: {exc}") from exc
    if root.tag != "PMML":
        raise PmmlError(f"root element is {root.tag!r}, expected PMML")
    version = root.get("version", "4.1")
    header = root.find("Header")
    description = header.get("description", "") if header is not None else ""

    dictionary = root.find("DataDictionary")
    if dictionary is None:
        raise PmmlError("PMML document missing DataDictionary")
    data_fields = [
        DataField(
            element.get("name", ""),
            dtype=element.get("dataType", "double"),
            optype=element.get("optype", "continuous"),
        )
        for element in dictionary.findall("DataField")
    ]

    for tag, parser in (
        ("RegressionModel", _parse_regression),
        ("ClusteringModel", _parse_clustering),
        ("SupportVectorMachineModel", _parse_svm),
    ):
        element = root.find(tag)
        if element is not None:
            model = parser(element)
            return PmmlDocument(
                model, data_fields=data_fields, version=version, description=description
            )
    raise PmmlError("PMML document contains no supported model element")


def _parse_mining_fields(element: ET.Element) -> List[str]:
    schema = element.find("MiningSchema")
    if schema is None:
        raise PmmlError(f"{element.tag} missing MiningSchema")
    return [field.get("name", "") for field in schema.findall("MiningField")]


def _parse_regression(element: ET.Element) -> RegressionModel:
    features = _parse_mining_fields(element)
    table = element.find("RegressionTable")
    if table is None:
        raise PmmlError("RegressionModel missing RegressionTable")
    by_name = {
        predictor.get("name", ""): float(predictor.get("coefficient", "0"))
        for predictor in table.findall("NumericPredictor")
    }
    try:
        coefficients = [by_name[name] for name in features]
    except KeyError as exc:
        raise PmmlError(f"RegressionTable missing predictor for {exc}") from None
    return RegressionModel(
        features,
        coefficients,
        intercept=float(table.get("intercept", "0")),
        function_name=element.get("functionName", "regression"),
        normalization=element.get("normalizationMethod", "none"),
        model_name=element.get("modelName", ""),
    )


def _parse_clustering(element: ET.Element) -> ClusteringModel:
    features = _parse_mining_fields(element)
    centers = []
    for cluster in element.findall("Cluster"):
        array = cluster.find("Array")
        if array is None or not array.text:
            raise PmmlError("Cluster missing centre Array")
        centers.append([float(token) for token in array.text.split()])
    return ClusteringModel(features, centers, model_name=element.get("modelName", ""))


def _parse_svm(element: ET.Element) -> SupportVectorMachineModel:
    features = _parse_mining_fields(element)
    machine = element.find("SupportVectorMachine")
    if machine is None:
        raise PmmlError("SupportVectorMachineModel missing SupportVectorMachine")
    coefficients = machine.find("Coefficients")
    if coefficients is None:
        raise PmmlError("SupportVectorMachine missing Coefficients")
    by_name = {
        c.get("name", ""): float(c.get("value", "0"))
        for c in coefficients.findall("Coefficient")
    }
    try:
        weights = [by_name[name] for name in features]
    except KeyError as exc:
        raise PmmlError(f"Coefficients missing weight for {exc}") from None
    return SupportVectorMachineModel(
        features,
        weights,
        intercept=float(machine.get("intercept", "0")),
        model_name=element.get("modelName", ""),
    )
