"""Discrete-event simulation substrate.

This package provides the "cluster hardware" that the rest of the
reproduction runs on: a generator-based discrete-event kernel
(:mod:`repro.sim.kernel`), queued resources (:mod:`repro.sim.resources`),
a max-min fair-share flow network (:mod:`repro.sim.network`), node/cluster
topologies (:mod:`repro.sim.cluster`) and utilisation tracing
(:mod:`repro.sim.trace`).

Protocol code in :mod:`repro.connector` executes *inside* this simulator:
Spark tasks are kernel processes, JDBC transfers are network flows, and
query execution charges CPU time on the owning node.  Unit tests run the
same code with near-zero costs; benchmarks run it with costs calibrated to
the paper's testbed (1 GbE NICs, 16-core machines).
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    KernelStats,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import Mutex, Resource, Store
from repro.sim.network import Link, Network
from repro.sim.cluster import Nic, SimCluster, SimNode
from repro.sim.trace import UsageTrace, bucket_series

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "KernelStats",
    "Link",
    "Mutex",
    "Network",
    "Nic",
    "Process",
    "Resource",
    "SimCluster",
    "SimNode",
    "SimulationError",
    "Store",
    "Timeout",
    "UsageTrace",
    "bucket_series",
]
