"""Node and cluster topology for the simulated testbed.

The paper's hardware: machines with 16 physical / 32 logical cores, 64 GB
RAM, and two 1 GbE interfaces — one carrying Vertica-internal traffic and
one carrying Vertica↔Spark traffic.  :class:`SimNode` models a machine as a
CPU core pool plus named NICs (each NIC being a tx/rx pair of fair-share
links); :class:`SimCluster` wires nodes to a shared :class:`Network` and
routes transfers across the right interfaces.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.kernel import Environment, Event, SimulationError
from repro.sim.network import Link, Network
from repro.sim.resources import Resource

#: 1 GbE in usable bytes/second, matching the paper's ~125 MB/s NIC ceiling.
GBE_BYTES_PER_SEC = 125e6


class Nic:
    """A network interface: one transmit link and one receive link."""

    def __init__(self, env: Environment, name: str, bandwidth: float):
        self.name = name
        self.tx = Link(env, f"{name}.tx", bandwidth)
        self.rx = Link(env, f"{name}.rx", bandwidth)

    @property
    def bytes_sent(self) -> float:
        return self.tx.bytes_total

    @property
    def bytes_received(self) -> float:
        return self.rx.bytes_total


class SimNode:
    """A simulated machine: CPU cores plus one or more NICs."""

    def __init__(
        self,
        env: Environment,
        name: str,
        cores: int = 32,
        nics: Optional[Dict[str, float]] = None,
    ):
        self.env = env
        self.name = name
        self.cores = Resource(env, cores, name=f"{name}.cpu")
        #: slots for long-lived data streams (result/ingest pipelines);
        #: sized like the core count but separate, so streams queue among
        #: themselves without starving short statements of CPU
        self.streams = Resource(env, cores, name=f"{name}.streams")
        self.nics: Dict[str, Nic] = {}
        for nic_name, bandwidth in (nics or {"default": GBE_BYTES_PER_SEC}).items():
            self.add_nic(nic_name, bandwidth)

    def __repr__(self) -> str:
        return f"SimNode({self.name!r})"

    def add_nic(self, name: str, bandwidth: float) -> Nic:
        if name in self.nics:
            raise SimulationError(f"node {self.name!r} already has NIC {name!r}")
        nic = Nic(self.env, f"{self.name}.{name}", bandwidth)
        self.nics[name] = nic
        return nic

    def nic(self, name: str = "default") -> Nic:
        try:
            return self.nics[name]
        except KeyError:
            raise SimulationError(
                f"node {self.name!r} has no NIC {name!r}; "
                f"available: {sorted(self.nics)}"
            ) from None

    def compute(self, seconds: float, ncores: int = 1):
        """Generator: occupy ``ncores`` cores for ``seconds`` of CPU time.

        Use as ``yield from node.compute(...)`` inside a simulation process.
        Zero-duration work returns immediately without queueing, so unit
        tests with null cost models never contend.
        """
        if seconds < 0:
            raise SimulationError(f"negative compute time: {seconds}")
        if seconds == 0:
            return
        request = self.cores.request(ncores)
        yield request
        try:
            yield self.env.timeout(seconds)
        finally:
            self.cores.release(request)


class SimCluster:
    """A set of nodes sharing one flow network."""

    def __init__(self, env: Environment, network: Optional[Network] = None):
        self.env = env
        self.network = network if network is not None else Network(env)
        self.nodes: Dict[str, SimNode] = {}

    def add_node(
        self,
        name: str,
        cores: int = 32,
        nics: Optional[Dict[str, float]] = None,
    ) -> SimNode:
        if name in self.nodes:
            raise SimulationError(f"duplicate node name {name!r}")
        node = SimNode(self.env, name, cores=cores, nics=nics)
        self.nodes[name] = node
        return node

    def node(self, name: str) -> SimNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise SimulationError(f"unknown node {name!r}") from None

    def transfer(
        self,
        src: SimNode,
        dst: SimNode,
        nbytes: float,
        nic: str = "default",
        dst_nic: Optional[str] = None,
        cap: Optional[float] = None,
        name: str = "flow",
    ) -> Event:
        """Move ``nbytes`` from ``src`` to ``dst`` over the named interfaces.

        A node-local transfer (``src is dst``) costs nothing on the network,
        which is exactly the benefit the connector's locality-aware queries
        exploit.
        """
        if src is dst:
            route: List[Link] = []
        else:
            route = [
                self._nic_for(src, nic).tx,
                self._nic_for(dst, dst_nic or nic).rx,
            ]
        return self.network.transfer(route, nbytes, cap=cap, name=name)

    @staticmethod
    def _nic_for(node: SimNode, requested: str) -> Nic:
        """The requested NIC, falling back to ``default``.

        Heterogeneous endpoints (a dual-NIC Vertica node talking to a
        single-NIC Spark worker) each use their own interface naming.
        """
        if requested in node.nics:
            return node.nics[requested]
        if "default" in node.nics:
            return node.nics["default"]
        return node.nic(requested)  # raises with a helpful message

    def links(self, nic: str = "default") -> List[Link]:
        out: List[Link] = []
        for node in self.nodes.values():
            if nic in node.nics:
                out.extend([node.nics[nic].tx, node.nics[nic].rx])
        return out

    def total_bytes(self, nic: str = "default", direction: str = "tx") -> float:
        """Aggregate bytes that crossed the given NIC direction on all nodes."""
        if direction not in ("tx", "rx"):
            raise SimulationError(f"direction must be 'tx' or 'rx': {direction!r}")
        total = 0.0
        for node in self.nodes.values():
            if nic in node.nics:
                total += getattr(node.nics[nic], direction).bytes_total
        return total


def make_nodes(
    cluster: SimCluster,
    prefix: str,
    count: int,
    cores: int = 32,
    nics: Optional[Dict[str, float]] = None,
) -> List[SimNode]:
    """Create ``count`` homogeneous nodes named ``prefix0..prefixN-1``."""
    return [
        cluster.add_node(f"{prefix}{i}", cores=cores, nics=dict(nics or {"default": GBE_BYTES_PER_SEC}))
        for i in range(count)
    ]
