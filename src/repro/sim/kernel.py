"""A small discrete-event simulation kernel.

The kernel follows the classic process-interaction style (as popularised by
SimPy): simulation *processes* are Python generators that ``yield`` events;
the environment advances a virtual clock from event to event.  We implement
only what the reproduction needs — one-shot events, timeouts, processes,
process interruption (used for killing speculative task duplicates), and
``AllOf``/``AnyOf`` condition events — but implement those carefully, since
the Spark scheduler, the network model and every connector protocol run on
top of this file.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed by the interrupter
    (for example the Spark scheduler passes the reason the task attempt is
    being killed).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*, is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`, and then invokes its callbacks when the
    environment processes it.  Failed events re-raise their exception inside
    every waiting process, so errors never pass silently.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        #: set when a failure has been delivered to at least one waiter
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._ok is not None

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env._enqueue(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._enqueue(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run the callback immediately so late
            # waiters (e.g. a process joining a finished process) still
            # resume.
            callback(self)
        else:
            self.callbacks.append(callback)

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is not None and callback in self.callbacks:
            self.callbacks.remove(callback)

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks or ():
            callback(self)
        if self._ok is False and not self._defused:
            raise self._value


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    The timeout only *triggers* when the clock reaches it (not at
    construction), so condition events treat pending timeouts correctly.
    """

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._pending_value = value
        env._enqueue(self, delay)

    def _process(self) -> None:
        if self._ok is None:
            self._ok = True
            self._value = self._pending_value
        super()._process()


class _ConditionMixin(Event):
    """Shared machinery for AllOf/AnyOf condition events."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._pending = 0
        for event in self.events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
        for event in self.events:
            if event.triggered:
                self._check(event)
            else:
                self._pending += 1
                event.add_callback(self._check)
        self._evaluate_initial()

    def _evaluate_initial(self) -> None:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _finish(self) -> None:
        if self._ok is None:
            values = [e.value for e in self.events if e.triggered and e.ok]
            self.succeed(values)


class AllOf(_ConditionMixin):
    """Succeeds when all child events have succeeded; fails on first failure."""

    def _evaluate_initial(self) -> None:
        if self._ok is None and all(e.triggered for e in self.events):
            self._finish()

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            return
        if not event.ok:
            event._defused = True
            self.fail(event.value)
            return
        if all(e.triggered and e.ok for e in self.events):
            self._finish()


class AnyOf(_ConditionMixin):
    """Succeeds as soon as any child event succeeds; fails on first failure."""

    def _evaluate_initial(self) -> None:
        if self._ok is None and any(e.triggered and e.ok for e in self.events):
            self._finish()
        elif self._ok is None and not self.events:
            self.succeed([])

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            return
        if not event.ok:
            event._defused = True
            self.fail(event.value)
            return
        self._finish()


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running simulation process wrapping a generator.

    A :class:`Process` is itself an :class:`Event` that triggers when the
    generator finishes (succeeding with its return value) or raises
    (failing with the exception).  Processes may be interrupted, which
    raises :class:`Interrupt` inside the generator at the current simulated
    time.
    """

    def __init__(self, env: "Environment", generator: ProcessGenerator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process requires a generator, got {generator!r}")
        super().__init__(env)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._target: Optional[Event] = None
        env.stats.processes_started += 1
        # Bootstrap: resume the process at the current time.
        bootstrap = Event(env)
        bootstrap._ok = True
        bootstrap._value = None
        bootstrap.callbacks = []
        bootstrap.add_callback(self._resume)
        env._enqueue(bootstrap)

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            return  # interrupting a finished process is a no-op
        if self._target is self:
            raise SimulationError("a process cannot interrupt itself")
        self.env.stats.interrupts += 1
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks = []
        interrupt_event.add_callback(self._resume)
        self.env._enqueue(interrupt_event, priority=0)

    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            return  # e.g. an interrupt delivered after normal termination
        if self._target is not None:
            self._target.remove_callback(self._resume)
            self._target = None
        self.env._active_process = self
        try:
            if event._ok:
                result = self._generator.send(event._value)
            else:
                # Deliver failures (including interrupts) into the generator.
                event._defused = True
                result = self._generator.throw(event._value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None
        if not isinstance(result, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded a non-event: {result!r}"
            )
            self._generator.close()
            self.fail(exc)
            return
        self._target = result
        result.add_callback(self._resume)


class KernelStats:
    """Always-on counters of kernel scheduling activity.

    Plain integer bumps — cheap enough to leave enabled unconditionally,
    and surfaced through ``telemetry.MetricsSnapshot`` when a registry is
    bound to the environment.
    """

    __slots__ = ("events_processed", "processes_started", "interrupts")

    def __init__(self):
        self.events_processed = 0
        self.processes_started = 0
        self.interrupts = 0

    def as_dict(self) -> dict:
        return {
            "events_processed": self.events_processed,
            "processes_started": self.processes_started,
            "interrupts": self.interrupts,
        }

    def __repr__(self) -> str:
        return (
            f"KernelStats(events={self.events_processed}, "
            f"processes={self.processes_started}, interrupts={self.interrupts})"
        )


class _QueueEntry:
    __slots__ = ("time", "priority", "seq", "event")

    def __init__(self, time: float, priority: int, seq: int, event: Event):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.event = event

    def __lt__(self, other: "_QueueEntry") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )


class Environment:
    """The simulation environment: the clock and the event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[_QueueEntry] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self.stats = KernelStats()

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event construction -------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def call_at(self, time: float, fn: Callable[[], Any]) -> Timeout:
        """Invoke ``fn()`` when the clock reaches ``time`` (absolute).

        The hook the chaos layer uses for one-shot scheduled injections
        that need no process of their own.  Returns the underlying
        timeout event so callers may still wait on it.
        """
        if time < self._now:
            raise SimulationError(
                f"call_at({time}) is in the past (now {self._now})"
            )
        event = self.timeout(time - self._now)
        event.add_callback(lambda _event: fn())
        return event

    # -- scheduling ---------------------------------------------------------
    def _enqueue(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        self._seq += 1
        heapq.heappush(
            self._queue, _QueueEntry(self._now + delay, priority, self._seq, event)
        )

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("attempt to step an exhausted simulation")
        entry = heapq.heappop(self._queue)
        self._now = entry.time
        self.stats.events_processed += 1
        entry.event._process()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when exhausted."""
        return self._queue[0].time if self._queue else float("inf")

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to exhaustion), a number (run until
        the clock reaches it), or an :class:`Event` (run until it triggers,
        returning its value).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError("cannot run backwards in time")

        while self._queue:
            if stop_event is not None and stop_event.triggered:
                break
            if self.peek() > stop_time:
                self._now = stop_time
                return None
            self.step()

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "simulation ran out of events before the awaited event fired"
                )
            stop_event._defused = True
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        if until is not None and stop_time < float("inf"):
            self._now = max(self._now, stop_time) if self._queue else stop_time
        return None
