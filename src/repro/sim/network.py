"""A max-min fair-share flow network for the simulation kernel.

Data movement in the reproduction — JDBC result streams, COPY loads,
intra-Vertica shuffles, HDFS block reads — is modelled at *flow* level:
each transfer is a flow of ``nbytes`` over a route of :class:`Link` objects
(typically the sender's egress NIC and the receiver's ingress NIC).
Concurrent flows share link capacity max-min fairly via progressive
filling, and a flow may carry its own rate cap (used to model
per-connection producer limits, e.g. a single Vertica query pipeline
cannot saturate a 1 GbE NIC on its own — the effect behind Table 2 of the
paper).

Rates are recomputed whenever a flow starts or finishes, so the simulation
remains event-driven and exact (piecewise-constant rates), not sampled.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.sim.kernel import Environment, Event, SimulationError

_EPS = 1e-9


class Link:
    """A unidirectional, capacity-limited channel (e.g. one NIC direction)."""

    def __init__(
        self,
        env: Environment,
        name: str,
        capacity: float,
        rate_log_limit: Optional[int] = None,
    ):
        if capacity <= 0:
            raise SimulationError(f"link capacity must be positive: {capacity}")
        self.env = env
        self.name = name
        self.capacity = float(capacity)
        #: the designed capacity; ``capacity`` may be lowered temporarily by
        #: fault injection (degraded NIC, partition) and restored to this
        self.nominal_capacity = float(capacity)
        #: total bytes that have crossed this link
        self.bytes_total = 0.0
        #: piecewise-constant (time, aggregate rate) samples for tracing;
        #: bounded to roughly ``rate_log_limit`` entries when set (oldest
        #: samples are compacted away), so long chaos soaks stay in memory
        self.rate_log: List[Tuple[float, float]] = [(env.now, 0.0)]
        self.rate_log_limit = rate_log_limit

    def __repr__(self) -> str:
        return f"Link({self.name!r}, {self.capacity:.0f} B/s)"

    def set_capacity(self, capacity: float) -> None:
        """Change the live capacity (0 models a partitioned/black-holed link).

        Callers that change capacity while flows are active must go through
        :meth:`Network.set_link_capacity` so fair shares are recomputed.
        """
        if capacity < 0:
            raise SimulationError(f"link capacity cannot be negative: {capacity}")
        self.capacity = float(capacity)

    def _log_rate(self, rate: float) -> None:
        last_time, last_rate = self.rate_log[-1]
        if abs(last_rate - rate) < _EPS:
            return
        if last_time == self.env.now:
            self.rate_log[-1] = (last_time, rate)
        else:
            self.rate_log.append((self.env.now, rate))
            limit = self.rate_log_limit
            if limit and len(self.rate_log) > 2 * limit:
                # Amortised O(1): halve in one slice, keeping the newest
                # ``limit`` samples.
                del self.rate_log[: len(self.rate_log) - limit]


class Flow:
    """One in-flight transfer over a route of links."""

    __slots__ = ("name", "route", "remaining", "cap", "rate", "event", "nbytes")

    def __init__(
        self,
        name: str,
        route: Sequence[Link],
        nbytes: float,
        cap: Optional[float],
        event: Event,
    ):
        self.name = name
        self.route = tuple(route)
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.cap = cap
        self.rate = 0.0
        self.event = event

    def finish_time(self, now: float) -> float:
        if self.rate <= 0:
            return math.inf
        return now + self.remaining / self.rate


class Network:
    """Tracks active flows and drives their completion events."""

    def __init__(self, env: Environment):
        self.env = env
        self._flows: Set[Flow] = set()
        self._last_update = env.now
        self._timer_seq = 0
        self._prev_busy: Set[Link] = set()

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def transfer(
        self,
        route: Sequence[Link],
        nbytes: float,
        cap: Optional[float] = None,
        name: str = "flow",
    ) -> Event:
        """Start a transfer; the returned event fires with ``nbytes`` when done."""
        if nbytes < 0:
            raise SimulationError(f"cannot transfer a negative byte count: {nbytes}")
        if cap is not None and cap <= 0:
            raise SimulationError(f"flow rate cap must be positive: {cap}")
        event = Event(self.env)
        if nbytes < _EPS or not route:
            # Zero-cost transfers (or transfers with no modelled links, as in
            # unit tests) complete immediately.
            event.succeed(nbytes)
            return event
        flow = Flow(name, route, nbytes, cap, event)
        self._sync_progress()
        self._flows.add(flow)
        self._reschedule()
        return event

    def set_link_capacity(self, link: Link, capacity: float) -> None:
        """Change ``link``'s capacity mid-simulation, refitting active flows.

        The fault-injection entry point for link degradation: progress up to
        now is settled at the old rates, the capacity changes, and fair
        shares are recomputed.  A capacity of ``0`` stalls every flow on the
        link (a network partition) until a later call restores it.
        """
        self._sync_progress()
        link.set_capacity(capacity)
        self._reschedule()

    # -- internals -----------------------------------------------------------
    def _sync_progress(self) -> None:
        """Advance every flow's remaining bytes to the current time."""
        elapsed = self.env.now - self._last_update
        if elapsed > 0:
            for flow in self._flows:
                moved = flow.rate * elapsed
                flow.remaining -= moved
                for link in flow.route:
                    link.bytes_total += moved
        self._last_update = self.env.now

    def _reschedule(self) -> None:
        """Recompute fair-share rates and arm the next completion timer."""
        self._assign_rates()
        self._log_link_rates()
        self._timer_seq += 1
        seq = self._timer_seq
        next_finish = min(
            (flow.finish_time(self.env.now) for flow in self._flows),
            default=math.inf,
        )
        if next_finish is math.inf or math.isinf(next_finish):
            return
        delay = max(0.0, next_finish - self.env.now)
        timeout = self.env.timeout(delay)
        timeout.add_callback(lambda _event: self._on_timer(seq))

    def _on_timer(self, seq: int) -> None:
        if seq != self._timer_seq:
            return  # a newer recompute superseded this timer
        self._sync_progress()
        now = self.env.now
        # A flow is done when its remaining bytes are negligible, or when
        # its residual transfer time is below the clock's float resolution
        # (now + dt == now), which would otherwise starve it forever.
        finished = [
            f
            for f in self._flows
            if f.remaining <= _EPS * max(1.0, f.nbytes)
            or (f.rate > 0 and now + f.remaining / f.rate == now)
        ]
        for flow in finished:
            self._flows.discard(flow)
            flow.remaining = 0.0
            flow.event.succeed(flow.nbytes)
        self._reschedule()

    def _assign_rates(self) -> None:
        """Progressive-filling max-min fair allocation with per-flow caps.

        Caps are modelled as single-flow virtual links, which folds them
        into the standard bottleneck-freezing algorithm.
        """
        links: Dict[Link, List[Flow]] = {}
        for flow in self._flows:
            flow.rate = 0.0
            for link in flow.route:
                links.setdefault(link, []).append(flow)

        remaining = {link: link.capacity for link in links}
        unfrozen: Set[Flow] = set(self._flows)

        while unfrozen:
            # Find the bottleneck: the smallest per-flow share over real
            # links (capacity left / unfrozen flows on it) and flow caps.
            bottleneck_rate = math.inf
            bottleneck_link: Optional[Link] = None
            capped_flow: Optional[Flow] = None
            for link, flows in links.items():
                count = sum(1 for f in flows if f in unfrozen)
                if count == 0:
                    continue
                share = remaining[link] / count
                if share < bottleneck_rate - _EPS:
                    bottleneck_rate = share
                    bottleneck_link = link
                    capped_flow = None
            for flow in unfrozen:
                if flow.cap is not None and flow.cap < bottleneck_rate - _EPS:
                    bottleneck_rate = flow.cap
                    bottleneck_link = None
                    capped_flow = flow

            if capped_flow is not None:
                frozen = [capped_flow]
            elif bottleneck_link is not None:
                frozen = [f for f in links[bottleneck_link] if f in unfrozen]
            else:  # pragma: no cover - defensive: no links and no caps
                frozen = list(unfrozen)
                bottleneck_rate = 0.0

            for flow in frozen:
                flow.rate = max(0.0, bottleneck_rate)
                unfrozen.discard(flow)
                for link in flow.route:
                    remaining[link] = max(0.0, remaining[link] - flow.rate)

    def _log_link_rates(self) -> None:
        touched: Dict[Link, float] = {}
        for flow in self._flows:
            for link in flow.route:
                touched[link] = touched.get(link, 0.0) + flow.rate
        for link, rate in touched.items():
            link._log_rate(rate)
        # Links that just went idle need an explicit zero sample so traces
        # show the drop to zero rather than a dangling nonzero segment.
        for link in self._prev_busy - set(touched):
            link._log_rate(0.0)
        self._prev_busy = set(touched)

    def quiesce_links(self, links: Iterable[Link]) -> None:
        """Record a zero-rate sample on ``links`` that currently carry no flow."""
        busy: Set[Link] = set()
        for flow in self._flows:
            busy.update(flow.route)
        for link in links:
            if link not in busy:
                link._log_rate(0.0)
