"""Queued resources for the simulation kernel.

Provides the primitives the substrates need:

- :class:`Resource` — a counted resource with FIFO queuing (CPU core pools,
  Vertica's MAX-CLIENT-SESSIONS connection slots, resource-pool memory).
- :class:`PriorityResource` — the same, but the wait queue is ordered by a
  per-request priority (higher first), FIFO within equal priority — the
  admission queue of a WLM resource pool.
- :class:`Mutex` — a convenience single-slot resource.
- :class:`Store` — an unbounded FIFO of items with blocking ``get`` (used
  as mailboxes between simulated processes).
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from repro.sim.kernel import Environment, Event, SimulationError


class Request(Event):
    """A pending claim on a :class:`Resource`.

    Usable as a context manager from non-process code paths; simulated
    processes typically ``yield`` the request and later call
    :meth:`Resource.release`.
    """

    def __init__(self, resource: "Resource", amount: int):
        super().__init__(resource.env)
        self.resource = resource
        self.amount = amount

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)


class Resource:
    """A counted resource with FIFO granting.

    ``capacity`` units exist; a request claims ``amount`` units and blocks
    (as a pending event) until they are available.  Grants are strictly
    FIFO, which keeps the simulation deterministic.
    """

    def __init__(self, env: Environment, capacity: int, name: str = "resource"):
        if capacity <= 0:
            raise SimulationError(f"resource capacity must be positive: {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiting: Deque[Request] = deque()
        #: (time, units-in-use) change log for utilisation tracing
        self.usage_log: List[Tuple[float, int]] = [(env.now, 0)]

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self, amount: int = 1) -> Request:
        if amount <= 0 or amount > self.capacity:
            raise SimulationError(
                f"cannot request {amount} units of {self.name!r} "
                f"(capacity {self.capacity})"
            )
        req = Request(self, amount)
        self._waiting.append(req)
        self._grant()
        return req

    def release(self, request: Request) -> None:
        if request.resource is not self:
            raise SimulationError("release of a request from a different resource")
        if not request.triggered:
            # Cancelled while still queued.
            self._waiting.remove(request)
            return
        self._in_use -= request.amount
        self._log()
        self._grant()

    def _grant(self) -> None:
        while self._waiting and self._waiting[0].amount <= self.available:
            req = self._waiting.popleft()
            self._in_use += req.amount
            req.succeed(req)
        self._log()

    def _log(self) -> None:
        last_time, last_use = self.usage_log[-1]
        if last_use == self._in_use:
            return
        if last_time == self.env.now:
            self.usage_log[-1] = (last_time, self._in_use)
        else:
            self.usage_log.append((self.env.now, self._in_use))


class PriorityRequest(Request):
    """A :class:`Request` with an admission priority.

    Higher ``priority`` requests are granted first; requests of equal
    priority keep strict FIFO order via a monotonic sequence number, so
    grants stay deterministic.
    """

    _seq = itertools.count()

    def __init__(self, resource: "Resource", amount: int, priority: int = 0):
        super().__init__(resource, amount)
        self.priority = priority
        self.seq = next(PriorityRequest._seq)

    @property
    def sort_key(self) -> Tuple[int, int]:
        return (-self.priority, self.seq)


class PriorityResource(Resource):
    """A counted resource whose wait queue is priority-ordered.

    The queue stays a deque sorted by ``(-priority, seq)``; the base
    class's head-of-queue granting and queued-cancellation logic then
    work unchanged.  Head-of-line blocking is deliberate: a large
    high-priority claim holds back smaller low-priority ones, exactly
    like a queued high-priority statement in a real resource pool.
    """

    def request(self, amount: int = 1, priority: int = 0) -> PriorityRequest:
        if amount <= 0 or amount > self.capacity:
            raise SimulationError(
                f"cannot request {amount} units of {self.name!r} "
                f"(capacity {self.capacity})"
            )
        req = PriorityRequest(self, amount, priority)
        # Insert before the first queued request that sorts after us.
        index = len(self._waiting)
        while index > 0 and req.sort_key < self._waiting[index - 1].sort_key:
            index -= 1
        self._waiting.insert(index, req)
        self._grant()
        return req


class Mutex(Resource):
    """A single-slot resource."""

    def __init__(self, env: Environment, name: str = "mutex"):
        super().__init__(env, capacity=1, name=name)


class Store:
    """An unbounded FIFO store with blocking ``get``."""

    def __init__(self, env: Environment, name: str = "store"):
        self.env = env
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; ``None`` when the store is empty."""
        return self._items.popleft() if self._items else None
