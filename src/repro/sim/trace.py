"""Utilisation tracing over piecewise-constant resource logs.

Links and core pools record ``(time, value)`` change points.  This module
turns those logs into fixed-width time-bucketed series (time-weighted
averages), which is how we regenerate the paper's Table 2 — per-node CPU%
and network MB/s over the first 300 seconds of a V2S run.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def bucket_series(
    log: Sequence[Tuple[float, float]],
    start: float,
    end: float,
    step: float,
) -> List[float]:
    """Time-weighted average of a piecewise-constant log per bucket.

    ``log`` holds (time, value) change points, with each value holding
    until the next change point.  Points need not arrive sorted —
    change-point logs assembled from several processes can interleave —
    so they are sorted by time here.  Returns one average per bucket of
    width ``step`` covering [start, end).
    """
    if step <= 0:
        raise ValueError(f"bucket step must be positive: {step}")
    if end <= start:
        return []
    points = sorted(log, key=lambda point: point[0])
    buckets: List[float] = []
    t = start
    while t < end - 1e-12:
        t_next = min(t + step, end)
        buckets.append(_window_average(points, t, t_next))
        t = t_next
    return buckets


def _window_average(points: Sequence[Tuple[float, float]], lo: float, hi: float) -> float:
    if not points:
        return 0.0
    total = 0.0
    # Value active at the start of the window.
    current = 0.0
    for time, value in points:
        if time <= lo:
            current = value
        else:
            break
    prev_time = lo
    for time, value in points:
        if time <= lo:
            continue
        if time >= hi:
            break
        total += current * (time - prev_time)
        prev_time = time
        current = value
    total += current * (hi - prev_time)
    return total / (hi - lo)


class UsageTrace:
    """A named utilisation series with convenience statistics."""

    def __init__(self, name: str, times: Sequence[float], values: Sequence[float]):
        if len(times) != len(values):
            raise ValueError("times and values must be the same length")
        self.name = name
        self.times = list(times)
        self.values = list(values)

    @classmethod
    def from_log(
        cls,
        name: str,
        log: Sequence[Tuple[float, float]],
        start: float,
        end: float,
        step: float,
    ) -> "UsageTrace":
        values = bucket_series(log, start, end, step)
        times = [start + step * i for i in range(len(values))]
        return cls(name, times, values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def peak(self) -> float:
        return max(self.values) if self.values else 0.0

    def steady_state(self, skip_fraction: float = 0.25) -> float:
        """Average over the trailing part of the series, past the ramp-up."""
        if not self.values:
            return 0.0
        skip = int(len(self.values) * skip_fraction)
        tail = self.values[skip:] or self.values
        return sum(tail) / len(tail)

    def sparkline(self, width: int = 60, peak: float = 0.0) -> str:
        """Render the series as a one-line ASCII sparkline."""
        if not self.values:
            return ""
        glyphs = " .:-=+*#%@"
        top = peak or self.peak or 1.0
        # Partition the full series into near-equal chunks, one per output
        # column, so trailing values are never dropped when the length is
        # not a multiple of the width.
        n = min(width, len(self.values))
        cells = []
        for k in range(n):
            lo = k * len(self.values) // n
            hi = (k + 1) * len(self.values) // n
            chunk = self.values[lo:hi]
            cells.append(sum(chunk) / len(chunk))
        out = []
        for cell in cells:
            idx = min(len(glyphs) - 1, int(round(cell / top * (len(glyphs) - 1))))
            out.append(glyphs[max(0, idx)])
        return "".join(out)
