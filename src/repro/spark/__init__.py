"""A Spark-like compute engine substrate.

Implements the Spark 1.x machinery the paper's connector is built
against:

- **RDDs** (:mod:`repro.spark.rdd`) — immutable, lazily-evaluated,
  lineage-tracked partitioned collections; failed tasks recompute their
  partition from lineage.
- **A batch task scheduler** (:mod:`repro.spark.scheduler`) — jobs are
  sets of independent, stateless tasks executed on simulated executors,
  with per-task retries, *speculative execution* (duplicate attempts of
  stragglers, both of which may run side effects — exactly what S2V must
  tolerate), fault injection hooks and whole-job cancellation ("total
  Spark failure").
- **DataFrames** (:mod:`repro.spark.dataframe`) — schema'd RDDs with a
  reader/writer implementing **Spark's External Data Source API**
  (:mod:`repro.spark.datasource`): ``df.read.format(...).options(...)
  .load()`` / ``df.write.format(...).mode(...).save()``, with
  column-pruning, filter and count pushdown to the source.
- **MLlib** (:mod:`repro.spark.mllib`) — linear/logistic regression,
  k-means and linear SVM with PMML export.

Tasks execute as :mod:`repro.sim` processes, so connector code can charge
network flows and CPU time while the same code path runs unchanged (at
zero cost) in unit tests.
"""

from repro.spark.context import SparkSession
from repro.spark.dataframe import DataFrame
from repro.spark.datasource import (
    BaseRelation,
    EqualTo,
    Filter,
    GreaterThan,
    GreaterThanOrEqual,
    In,
    IsNotNull,
    IsNull,
    LessThan,
    LessThanOrEqual,
    register_source,
    source_registry,
)
from repro.spark.errors import JobFailedError, SparkError, TaskKilledError
from repro.spark.faults import (
    CompositeFaultPolicy,
    FaultPolicy,
    InjectedFailure,
    ProbeFailurePolicy,
)
from repro.spark.scheduler import ExecutorLost
from repro.spark.rdd import RDD
from repro.spark.row import StructField, StructType

__all__ = [
    "BaseRelation",
    "CompositeFaultPolicy",
    "DataFrame",
    "EqualTo",
    "ExecutorLost",
    "FaultPolicy",
    "Filter",
    "GreaterThan",
    "GreaterThanOrEqual",
    "In",
    "InjectedFailure",
    "IsNotNull",
    "IsNull",
    "JobFailedError",
    "LessThan",
    "LessThanOrEqual",
    "ProbeFailurePolicy",
    "RDD",
    "SparkError",
    "SparkSession",
    "StructField",
    "StructType",
    "TaskKilledError",
    "register_source",
    "source_registry",
]
