"""SparkSession: the driver-side entry point.

Owns the simulation environment, the Spark worker nodes (as
:class:`~repro.sim.cluster.SimNode` objects), the executors and the task
scheduler, and provides ``parallelize`` / ``create_dataframe`` /
``read``.  Mirrors the paper's configuration defaults: one executor per
worker node with ~75% of the machine's logical cores as task slots.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.sim import Environment
from repro.sim.cluster import GBE_BYTES_PER_SEC, SimCluster, SimNode, make_nodes
from repro.spark.dataframe import DataFrame, DataFrameReader
from repro.spark.errors import SparkError
from repro.spark.faults import FaultPolicy
from repro.spark.rdd import RDD, ParallelCollectionRDD
from repro.spark.row import StructType
from repro.spark.scheduler import Executor, TaskScheduler

#: logical cores per machine in the paper's testbed
MACHINE_CORES = 32
#: "we assign roughly 75% of each machine's cores to Spark"
SPARK_CORE_FRACTION = 0.75


class SparkSession:
    """A driver connected to a simulated Spark cluster."""

    def __init__(
        self,
        env: Optional[Environment] = None,
        cluster: Optional[SimCluster] = None,
        num_workers: int = 8,
        cores_per_worker: Optional[int] = None,
        max_failures: int = 4,
        speculation: bool = False,
        kill_speculative_losers: bool = False,
        fault_policy: Optional[FaultPolicy] = None,
        worker_prefix: str = "spark",
        job_launch_overhead: float = 0.0,
        task_launch_overhead: float = 0.0,
    ):
        self.env = env if env is not None else Environment()
        self.cluster = cluster if cluster is not None else SimCluster(self.env)
        if cores_per_worker is None:
            cores_per_worker = int(MACHINE_CORES * SPARK_CORE_FRACTION)
        existing = [
            node for name, node in self.cluster.nodes.items()
            if name.startswith(worker_prefix)
        ]
        if existing:
            self.workers: List[SimNode] = existing
        else:
            self.workers = make_nodes(
                self.cluster,
                worker_prefix,
                num_workers,
                cores=MACHINE_CORES,
                nics={"default": GBE_BYTES_PER_SEC},
            )
        self.executors = [
            Executor(self.env, node, cores_per_worker) for node in self.workers
        ]
        self.scheduler = TaskScheduler(
            self.env,
            self.executors,
            max_failures=max_failures,
            speculation=speculation,
            kill_speculative_losers=kill_speculative_losers,
            fault_policy=fault_policy,
            job_launch_overhead=job_launch_overhead,
            task_launch_overhead=task_launch_overhead,
        )
        self.default_parallelism = len(self.executors) * 2
        self.conf: Dict[str, Any] = {}

    # -- data creation ------------------------------------------------------------
    def parallelize(self, data: Sequence[Any], num_partitions: Optional[int] = None) -> RDD:
        if num_partitions is None:
            num_partitions = min(self.default_parallelism, max(1, len(data)))
        return ParallelCollectionRDD(self, data, num_partitions)

    def create_dataframe(
        self,
        rows: Sequence[Sequence[Any]],
        schema: StructType,
        num_partitions: Optional[int] = None,
    ) -> DataFrame:
        width = len(schema)
        tuples = []
        for row in rows:
            if len(row) != width:
                raise SparkError(
                    f"row arity {len(row)} does not match schema width {width}"
                )
            tuples.append(tuple(row))
        return DataFrame(self, schema, rdd=self.parallelize(tuples, num_partitions))

    @property
    def read(self) -> DataFrameReader:
        return DataFrameReader(self)

    # -- job running ---------------------------------------------------------------
    def run_job(
        self,
        rdd: RDD,
        result_fn: Optional[Callable[[int, List[Any]], Any]] = None,
        name: str = "",
    ) -> List[Any]:
        """Run one task per partition; returns per-partition results.

        Drives the simulation clock until the job completes, so callers
        use it synchronously from driver code.
        """

        def make_thunk(split: int):
            def thunk(ctx):
                rows = yield from _compute(rdd, split, ctx)
                if result_fn is not None:
                    return result_fn(split, rows)
                return rows

            return thunk

        thunks = [make_thunk(i) for i in range(rdd.num_partitions)]
        job = self.scheduler.submit(thunks, name or "collect")
        return self.env.run(job.done)

    def run_thunks(self, thunks: List[Callable], name: str = "") -> List[Any]:
        """Submit raw task thunks (used by save paths) and run to completion."""
        job = self.scheduler.submit(thunks, name)
        return self.env.run(job.done)

    @property
    def now(self) -> float:
        return self.env.now


def _compute(rdd: RDD, split: int, ctx):
    body = rdd.compute(split, ctx)
    if hasattr(body, "__next__"):
        rows = yield from body
    else:  # pragma: no cover
        rows = body
    return rows
