"""DataFrames: schema'd RDDs with the reader/writer API.

A DataFrame is a thin logical plan over either an in-memory RDD or an
external :class:`~repro.spark.datasource.BaseRelation`.  When the
DataFrame wraps a relation directly, ``select``/``filter``/``count`` are
*pushed down* into the source (column pruning, pushdown filters, count
pushdown — the optimisations §3.1.1 of the paper relies on); once any
non-pushable operation intervenes, evaluation falls back to Spark-side
row processing.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.spark.datasource import (
    AggregateSpec,
    BaseRelation,
    Filter,
    SAVE_MODES,
    apply_filters,
    lookup_source,
)
from repro.ordering import null_last_key
from repro.spark.errors import AnalysisError, SparkError
from repro.spark.rdd import RDD
from repro.spark.row import StructField, StructType


class DataFrame:
    """An immutable, lazily-evaluated table of tuples."""

    def __init__(
        self,
        session: "SparkSession",  # noqa: F821
        schema: StructType,
        rdd: Optional[RDD] = None,
        relation: Optional[BaseRelation] = None,
        pushed_filters: Tuple[Filter, ...] = (),
        projected: Optional[Tuple[str, ...]] = None,
        num_partitions: Optional[int] = None,
    ):
        if (rdd is None) == (relation is None):
            raise AnalysisError("a DataFrame wraps exactly one of rdd / relation")
        self.session = session
        self.schema = schema
        self._rdd = rdd
        self._relation = relation
        self._pushed_filters = pushed_filters
        self._projected = projected
        self._num_partitions = num_partitions

    # -- plan info -------------------------------------------------------------
    @property
    def columns(self) -> List[str]:
        return self.schema.names

    @property
    def is_relation_backed(self) -> bool:
        return self._relation is not None

    @property
    def pushed_filters(self) -> Tuple[Filter, ...]:
        return self._pushed_filters

    def __repr__(self) -> str:
        return f"DataFrame({self.schema!r})"

    # -- transformations ----------------------------------------------------------
    def select(self, *names: str) -> "DataFrame":
        """Column pruning; pushed into the relation when possible."""
        wanted = [self.schema.field(n).name for n in names]
        new_schema = self.schema.select(wanted)
        if self._relation is not None:
            return DataFrame(
                self.session,
                new_schema,
                relation=self._relation,
                pushed_filters=self._pushed_filters,
                projected=tuple(wanted),
                num_partitions=self._num_partitions,
            )
        indices = [self.schema.index_of(n) for n in wanted]
        rdd = self._rdd.map(lambda row: tuple(row[i] for i in indices))
        return DataFrame(self.session, new_schema, rdd=rdd)

    def filter(self, condition: Union[Filter, Callable[[Tuple], bool]]) -> "DataFrame":
        """Filter rows; :class:`Filter` conditions are pushed down."""
        if isinstance(condition, Filter):
            self.schema.field(condition.attribute)  # validate column
            if self._relation is not None:
                return DataFrame(
                    self.session,
                    self.schema,
                    relation=self._relation,
                    pushed_filters=self._pushed_filters + (condition,),
                    projected=self._projected,
                    num_partitions=self._num_partitions,
                )
            index = self.schema.index_of(condition.attribute)
            rdd = self._rdd.filter(lambda row: condition.evaluate(row[index]))
            return DataFrame(self.session, self.schema, rdd=rdd)
        if not callable(condition):
            raise AnalysisError("filter requires a Filter or a callable")
        return DataFrame(self.session, self.schema, rdd=self.rdd().filter(condition))

    where = filter

    def with_partitions(self, num_partitions: int) -> "DataFrame":
        """Set the desired scan parallelism for a relation-backed frame."""
        if self._relation is not None:
            return DataFrame(
                self.session,
                self.schema,
                relation=self._relation,
                pushed_filters=self._pushed_filters,
                projected=self._projected,
                num_partitions=num_partitions,
            )
        return self.repartition(num_partitions)

    def repartition(self, num_partitions: int) -> "DataFrame":
        return DataFrame(
            self.session, self.schema, rdd=self.rdd().repartition(num_partitions)
        )

    def coalesce(self, num_partitions: int) -> "DataFrame":
        return DataFrame(
            self.session, self.schema, rdd=self.rdd().coalesce(num_partitions)
        )

    def cache(self) -> "DataFrame":
        """Persist computed partitions in executor block managers.

        Materialises the physical plan (including any relation pushdown)
        and wraps it in a :class:`~repro.spark.rdd.CachedRDD`: the first
        job stores each partition as a columnar block on the executor
        that computed it; later jobs reuse the blocks instead of re-reading
        the source.  Shark-style — byte-accounted, LRU-evicted, recomputed
        from lineage after an executor crash.
        """
        return DataFrame(self.session, self.schema, rdd=self.rdd().cache())

    def unpersist(self) -> "DataFrame":
        """Drop this frame's cached blocks (no-op if never cached)."""
        if self._rdd is not None and hasattr(self._rdd, "unpersist"):
            self._rdd.unpersist()
        return self

    # -- physical plan ------------------------------------------------------------
    def rdd(self) -> RDD:
        """The underlying RDD (materialising relation pushdowns)."""
        if self._rdd is not None:
            return self._rdd
        assert self._relation is not None
        scan = self._relation.build_scan(
            required_columns=self._projected, filters=self._pushed_filters
        )
        residual = self._relation.unhandled_filters(self._pushed_filters)
        if residual:
            schema = self.schema
            rows_filter = lambda row: bool(  # noqa: E731
                apply_filters(residual, schema, [row])
            )
            scan = scan.filter(rows_filter)
        return scan

    @property
    def num_partitions(self) -> int:
        if self._rdd is not None:
            return self._rdd.num_partitions
        return self._num_partitions or self.session.default_parallelism

    # -- actions -----------------------------------------------------------------
    def collect(self) -> List[Tuple[Any, ...]]:
        return self.rdd().collect()

    def take(self, n: int) -> List[Tuple[Any, ...]]:
        return self.rdd().take(n)

    def count(self) -> int:
        """Row count, pushed down into the relation when supported.

        Pushdown requires every filter to be handled by the source: a
        residual filter is re-evaluated Spark-side *after* the scan, so
        a count the source computes alone would include rows the
        residual rejects.
        """
        if (
            self._relation is not None
            and self._projected is None
            and not self._relation.unhandled_filters(self._pushed_filters)
        ):
            pushed = self._relation.count(self._pushed_filters)
            if pushed is not None:
                return pushed
        return self.rdd().count()

    def show(self, n: int = 20) -> str:
        """Render the first ``n`` rows as a text table (returns the text)."""
        rows = self.take(n)
        header = " | ".join(self.columns)
        sep = "-" * len(header)
        body = "\n".join(" | ".join(str(v) for v in row) for row in rows)
        text = f"{header}\n{sep}\n{body}"
        return text

    # -- relational extras ------------------------------------------------------
    def union(self, other: "DataFrame") -> "DataFrame":
        if other.schema != self.schema:
            raise AnalysisError(
                f"union requires matching schemas: {self.schema} vs {other.schema}"
            )
        return DataFrame(self.session, self.schema,
                         rdd=self.rdd().union(other.rdd()))

    def order_by(self, *names: str, descending: bool = False) -> "DataFrame":
        """Globally sort the rows (driver-side, like a final collect sort).

        NULLs sort last in both directions, matching the engine's
        ``ORDER BY`` — only the value ordering reverses, never the null
        rank.
        """
        indices = [self.schema.index_of(n) for n in names]
        rows = sorted(
            self.collect(),
            key=lambda row: tuple(
                null_last_key(row[i], descending) for i in indices
            ),
        )
        return DataFrame(self.session, self.schema,
                         rdd=self.session.parallelize(rows, self.num_partitions))

    def group_by(self, *names: str) -> "GroupedData":
        """Group rows by columns, then :meth:`GroupedData.agg`."""
        if not names:
            raise AnalysisError("group_by requires at least one column")
        return GroupedData(self, [self.schema.field(n).name for n in names])

    # -- writer ---------------------------------------------------------------------
    @property
    def write(self) -> "DataFrameWriter":
        return DataFrameWriter(self)


_AGGREGATES = {
    "count": lambda values: sum(1 for v in values if v is not None),
    "sum": lambda values: _null_or(sum, values),
    "avg": lambda values: _null_or(
        lambda vs: sum(vs) / len(vs), values
    ),
    "min": lambda values: _null_or(min, values),
    "max": lambda values: _null_or(max, values),
}


def _null_or(fn, values):
    present = [v for v in values if v is not None]
    return fn(present) if present else None


def _merge_nullable(fn):
    def merge(a, b):
        if a is None:
            return b
        if b is None:
            return a
        return fn(a, b)
    return merge


#: how two partitions' partial values for one group combine, per
#: partial-aggregate function (counts are never NULL; the rest skip NULLs
#: like the aggregates themselves do)
_PARTIAL_MERGE = {
    "count": lambda a, b: a + b,
    "sum": _merge_nullable(lambda a, b: a + b),
    "min": _merge_nullable(min),
    "max": _merge_nullable(max),
}


class GroupedData:
    """The result of :meth:`DataFrame.group_by`, awaiting aggregations."""

    def __init__(self, dataframe: DataFrame, keys: List[str]):
        self.dataframe = dataframe
        self.keys = keys

    def count(self) -> DataFrame:
        return self.agg(("*", "count"))

    def agg(self, *specs: Tuple[str, str]) -> DataFrame:
        """Aggregate with (column, function) pairs.

        Functions: count, sum, avg, min, max.  ``("*", "count")`` counts
        rows.  Output columns are named ``<fn>_<column>``.

        Relation-backed frames push the aggregation into the source as
        partition-wise partial aggregates (``avg`` decomposed into SUM +
        COUNT) merged by a driver-side combiner; anything the source
        declines — or any residual filter — falls back to collecting raw
        rows and aggregating Spark-side.
        """
        from repro.spark.row import StructField, StructType

        schema = self.dataframe.schema
        key_indices = [schema.index_of(k) for k in self.keys]
        plans = []
        out_fields = [schema.field(k) for k in self.keys]
        for column, function in specs:
            fn_name = function.lower()
            if fn_name not in _AGGREGATES:
                raise AnalysisError(
                    f"unknown aggregate {function!r}; "
                    f"known: {sorted(_AGGREGATES)}"
                )
            if column == "*":
                if fn_name != "count":
                    raise AnalysisError(f"{function}(*) is not valid")
                plans.append((None, fn_name))
                out_fields.append(StructField("count_all", "long"))
            else:
                index = schema.index_of(column)
                plans.append((index, fn_name))
                source = schema.field(column)
                data_type = (
                    "long" if fn_name == "count"
                    else "double" if fn_name == "avg"
                    else source.data_type
                )
                out_fields.append(
                    StructField(f"{fn_name}_{source.name}", data_type)
                )
        out_schema = StructType(out_fields)

        pushed = self._pushdown(plans, out_schema)
        if pushed is not None:
            return pushed

        groups: Dict[Tuple, List[Tuple]] = {}
        for row in self.dataframe.collect():
            groups.setdefault(tuple(row[i] for i in key_indices), []).append(row)
        out_rows = []
        for key, members in groups.items():
            values = list(key)
            for index, fn_name in plans:
                if index is None:
                    values.append(len(members))
                else:
                    values.append(
                        _AGGREGATES[fn_name]([m[index] for m in members])
                    )
            out_rows.append(tuple(values))
        return DataFrame(
            self.dataframe.session,
            out_schema,
            rdd=self.dataframe.session.parallelize(out_rows, 1),
        )

    def _pushdown(
        self, plans: List[Tuple[Optional[int], str]], out_schema: "StructType"
    ) -> Optional[DataFrame]:
        """Try partial-aggregation pushdown; None means fall back.

        Compiles the logical aggregates into the minimal set of partial
        :class:`AggregateSpec` slots (``avg`` needs a SUM and a COUNT
        partial; duplicates share one slot), asks the relation for a
        partial-aggregate scan, then merges the per-partition partial
        rows group-wise and finishes each output column.
        """
        df = self.dataframe
        relation = df._relation
        if relation is None:
            return None
        if relation.unhandled_filters(df._pushed_filters):
            # a residual filter must run before aggregation — not pushable
            return None
        schema = df.schema

        partials: List[AggregateSpec] = []
        slots: Dict[AggregateSpec, int] = {}

        def slot(spec: AggregateSpec) -> int:
            if spec not in slots:
                slots[spec] = len(partials)
                partials.append(spec)
            return slots[spec]

        finishers = []  # map merged partial values -> one output value
        for index, fn_name in plans:
            column = None if index is None else schema.fields[index].name
            if fn_name == "avg":
                sum_at = slot(AggregateSpec("sum", column))
                count_at = slot(AggregateSpec("count", column))
                finishers.append(
                    lambda p, s=sum_at, c=count_at: (
                        p[s] / p[c] if p[c] else None
                    )
                )
            else:
                at = slot(AggregateSpec(fn_name, column))
                finishers.append(lambda p, a=at: p[a])

        scan = relation.build_aggregate_scan(
            list(self.keys), partials, df._pushed_filters
        )
        if scan is None:
            return None

        nkeys = len(self.keys)
        merged: Dict[Tuple, List[Any]] = {}
        for row in scan.collect():
            key = tuple(row[:nkeys])
            values = list(row[nkeys:])
            state = merged.get(key)
            if state is None:
                merged[key] = values
            else:
                for i, spec in enumerate(partials):
                    state[i] = _PARTIAL_MERGE[spec.function](state[i], values[i])
        out_rows = [
            tuple(key) + tuple(finish(state) for finish in finishers)
            for key, state in merged.items()
        ]
        return DataFrame(
            df.session,
            out_schema,
            rdd=df.session.parallelize(out_rows, 1),
        )


class DataFrameReader:
    """``spark.read.format(...).options(...).load()``."""

    def __init__(self, session: "SparkSession"):  # noqa: F821
        self.session = session
        self._format: Optional[str] = None
        self._options: Dict[str, Any] = {}

    def format(self, name: str) -> "DataFrameReader":
        self._format = name
        return self

    def option(self, key: str, value: Any) -> "DataFrameReader":
        self._options[key] = value
        return self

    def options(self, mapping: Optional[Dict[str, Any]] = None, **kwargs: Any) -> "DataFrameReader":
        if mapping:
            self._options.update(mapping)
        self._options.update(kwargs)
        return self

    def load(self) -> DataFrame:
        if self._format is None:
            raise AnalysisError("reader requires .format(<source name>)")
        provider = lookup_source(self._format)
        relation = provider.create_relation(self.session, dict(self._options))
        num_partitions = self._options.get("numpartitions")
        return DataFrame(
            self.session,
            relation.schema,
            relation=relation,
            num_partitions=int(num_partitions) if num_partitions else None,
        )


class DataFrameWriter:
    """``df.write.format(...).options(...).mode(...).save()``."""

    def __init__(self, dataframe: DataFrame):
        self.dataframe = dataframe
        self._format: Optional[str] = None
        self._options: Dict[str, Any] = {}
        self._mode = "errorifexists"

    def format(self, name: str) -> "DataFrameWriter":
        self._format = name
        return self

    def option(self, key: str, value: Any) -> "DataFrameWriter":
        self._options[key] = value
        return self

    def options(self, mapping: Optional[Dict[str, Any]] = None, **kwargs: Any) -> "DataFrameWriter":
        if mapping:
            self._options.update(mapping)
        self._options.update(kwargs)
        return self

    def mode(self, save_mode: str) -> "DataFrameWriter":
        normalized = save_mode.lower()
        if normalized not in SAVE_MODES:
            raise AnalysisError(
                f"unknown save mode {save_mode!r}; expected one of {SAVE_MODES}"
            )
        self._mode = normalized
        return self

    def save(self) -> None:
        if self._format is None:
            raise AnalysisError("writer requires .format(<source name>)")
        provider = lookup_source(self._format)
        provider.save(
            self.dataframe.session, self._mode, dict(self._options), self.dataframe
        )
