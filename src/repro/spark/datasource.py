"""Spark's External Data Source API (the interface the connector implements).

Mirrors Spark 1.x `sources`:

- :class:`RelationProvider` — implements ``load``: given options, return a
  :class:`BaseRelation`;
- :class:`CreatableRelationProvider` — implements ``save``: given a
  DataFrame, a save mode and options, persist it;
- :class:`BaseRelation` — a named scan with schema, supporting column
  pruning and filter pushdown (``build_scan``), and optionally count
  and partial-aggregate pushdown (``count``, ``build_aggregate_scan``
  with :class:`AggregateSpec`).

Filters are the closed set of predicate shapes Spark pushes to sources;
anything else is evaluated Spark-side as a residual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.spark.errors import AnalysisError, SparkError
from repro.spark.row import StructType


# -- pushdown filters ---------------------------------------------------------
@dataclass(frozen=True)
class Filter:
    """Base pushdown filter."""

    attribute: str

    def evaluate(self, value: Any) -> bool:
        raise NotImplementedError

    def to_sql(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class EqualTo(Filter):
    value: Any

    def evaluate(self, value: Any) -> bool:
        return value is not None and value == self.value

    def to_sql(self) -> str:
        return f"{self.attribute} = {_sql_literal(self.value)}"


@dataclass(frozen=True)
class GreaterThan(Filter):
    value: Any

    def evaluate(self, value: Any) -> bool:
        return value is not None and value > self.value

    def to_sql(self) -> str:
        return f"{self.attribute} > {_sql_literal(self.value)}"


@dataclass(frozen=True)
class GreaterThanOrEqual(Filter):
    value: Any

    def evaluate(self, value: Any) -> bool:
        return value is not None and value >= self.value

    def to_sql(self) -> str:
        return f"{self.attribute} >= {_sql_literal(self.value)}"


@dataclass(frozen=True)
class LessThan(Filter):
    value: Any

    def evaluate(self, value: Any) -> bool:
        return value is not None and value < self.value

    def to_sql(self) -> str:
        return f"{self.attribute} < {_sql_literal(self.value)}"


@dataclass(frozen=True)
class LessThanOrEqual(Filter):
    value: Any

    def evaluate(self, value: Any) -> bool:
        return value is not None and value <= self.value

    def to_sql(self) -> str:
        return f"{self.attribute} <= {_sql_literal(self.value)}"


@dataclass(frozen=True)
class In(Filter):
    values: Tuple[Any, ...]

    def evaluate(self, value: Any) -> bool:
        return value is not None and value in self.values

    def to_sql(self) -> str:
        if not self.values:
            # `col IN ()` is a syntax error in Vertica; an empty IN-list
            # matches nothing, which SQL spells FALSE.
            return "FALSE"
        inner = ", ".join(_sql_literal(v) for v in self.values)
        return f"{self.attribute} IN ({inner})"


@dataclass(frozen=True)
class IsNull(Filter):
    def evaluate(self, value: Any) -> bool:
        return value is None

    def to_sql(self) -> str:
        return f"{self.attribute} IS NULL"


@dataclass(frozen=True)
class IsNotNull(Filter):
    def evaluate(self, value: Any) -> bool:
        return value is not None

    def to_sql(self) -> str:
        return f"{self.attribute} IS NOT NULL"


def _sql_literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


def filters_to_sql(filters: Sequence[Filter]) -> str:
    """AND-join filters into a SQL predicate ('' when empty)."""
    return " AND ".join(f.to_sql() for f in filters)


def apply_filters(filters: Sequence[Filter], schema: StructType,
                  rows: Sequence[Tuple[Any, ...]]) -> List[Tuple[Any, ...]]:
    """Evaluate filters Spark-side (used for residuals and testing)."""
    if not filters:
        return list(rows)
    indexed = [(schema.index_of(f.attribute), f) for f in filters]
    return [
        row
        for row in rows
        if all(f.evaluate(row[index]) for index, f in indexed)
    ]


# -- aggregate pushdown -------------------------------------------------------
#: partial-aggregate functions a source may be asked to compute; ``avg``
#: never appears here — the planner decomposes it into SUM + COUNT
#: partials and the driver-side combiner finishes the division
PARTIAL_AGGREGATES = ("count", "sum", "min", "max")


@dataclass(frozen=True)
class AggregateSpec:
    """One partial aggregate a source computes per partition.

    ``column`` of ``None`` means ``COUNT(*)``.  Partial results from
    different partitions of the same group are merged by the driver-side
    combiner (counts add, sums add NULL-aware, min/max compare
    NULL-aware), so a source may evaluate the spec independently per
    hash range.
    """

    function: str
    column: Optional[str] = None

    def __post_init__(self) -> None:
        if self.function not in PARTIAL_AGGREGATES:
            raise AnalysisError(
                f"non-partial aggregate {self.function!r}; "
                f"known: {PARTIAL_AGGREGATES}"
            )
        if self.column is None and self.function != "count":
            raise AnalysisError(f"{self.function}(*) is not valid")

    def to_sql(self) -> str:
        if self.column is None:
            return "COUNT(*)"
        return f"{self.function.upper()}({self.column})"


# -- relations and providers ------------------------------------------------------
class BaseRelation:
    """A scannable external relation with pruning/pushdown support."""

    @property
    def schema(self) -> StructType:
        raise NotImplementedError

    def build_scan(
        self,
        required_columns: Optional[Sequence[str]] = None,
        filters: Sequence[Filter] = (),
    ) -> "RDD":  # noqa: F821
        """Return an RDD of tuples for the (pruned, filtered) scan."""
        raise NotImplementedError

    def count(self, filters: Sequence[Filter] = ()) -> Optional[int]:
        """Pushdown count; None means 'not supported, scan instead'."""
        return None

    def build_aggregate_scan(
        self,
        group_by: Sequence[str],
        aggregates: Sequence[AggregateSpec],
        filters: Sequence[Filter] = (),
    ) -> Optional["RDD"]:  # noqa: F821
        """Partition-wise partial aggregation pushdown.

        Return an RDD whose rows are ``(*group_by values, *partial
        aggregate values)`` — one partial row per group *per partition*,
        merged by the caller — or None to decline (the caller falls back
        to scanning raw rows and aggregating Spark-side).  Only called
        when :meth:`unhandled_filters` is empty for ``filters``, since a
        residual filter would have to run before the aggregation.
        """
        return None

    def unhandled_filters(self, filters: Sequence[Filter]) -> List[Filter]:
        """Filters the source cannot evaluate (re-checked Spark-side)."""
        return []


class RelationProvider:
    """Implements LOAD for one format name."""

    def create_relation(self, session: "SparkSession", options: Dict[str, Any]) -> BaseRelation:  # noqa: F821
        raise NotImplementedError


class CreatableRelationProvider:
    """Implements SAVE for one format name."""

    def save(
        self,
        session: "SparkSession",  # noqa: F821
        mode: str,
        options: Dict[str, Any],
        dataframe: "DataFrame",  # noqa: F821
    ) -> None:
        raise NotImplementedError


SAVE_MODES = ("overwrite", "append", "errorifexists", "ignore")

_REGISTRY: Dict[str, Any] = {}


def register_source(name: str, provider: Any, replace: bool = True) -> None:
    """Register a DefaultSource class/instance under a format name."""
    if name in _REGISTRY and not replace:
        raise SparkError(f"source {name!r} already registered")
    _REGISTRY[name] = provider


def source_registry() -> Dict[str, Any]:
    return dict(_REGISTRY)


def lookup_source(name: str) -> Any:
    try:
        provider = _REGISTRY[name]
    except KeyError:
        raise AnalysisError(
            f"unknown data source format {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None
    return provider() if isinstance(provider, type) else provider
