"""Error types for the Spark substrate."""

from __future__ import annotations


class SparkError(Exception):
    """Base class for Spark-substrate errors."""


class JobFailedError(SparkError):
    """A job failed: some task exhausted its retries, or the job was
    cancelled (total Spark failure)."""

    def __init__(self, message: str, cause: Exception = None):
        super().__init__(message)
        self.cause = cause


class TaskKilledError(SparkError):
    """A task attempt was killed (speculative loser or job cancellation)."""


class AnalysisError(SparkError):
    """Schema/column resolution errors on DataFrames."""
