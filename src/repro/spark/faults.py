"""Fault injection for Spark tasks.

The paper's exactly-once argument has to hold under task failures at any
point, restarts, speculative duplicates and total Spark failure (§2.2.2,
§3.2.1).  To test that, task code announces *probes* — named points in its
execution (``ctx.probe("phase1_committed")``) — and a
:class:`FaultPolicy` decides whether a given attempt dies there.  The
production code path is identical whether or not a policy is installed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple


class InjectedFailure(Exception):
    """A deliberately injected task failure."""


class FaultPolicy:
    """Base policy: never fails anything."""

    def on_probe(self, ctx: "TaskContext", label: str) -> None:  # noqa: F821
        """Called at every probe point; raise :class:`InjectedFailure` to
        kill this attempt there."""

    def on_task_start(self, ctx: "TaskContext") -> None:  # noqa: F821
        """Called when an attempt begins executing."""


class CompositeFaultPolicy(FaultPolicy):
    """Fan probe callbacks out to several policies, in order.

    The composition point the chaos layer uses to ride alongside an
    existing hand-placed policy: the first policy to raise wins, and
    probes observed by earlier policies are still seen by later ones
    only if no failure fired.
    """

    def __init__(self, policies: Iterable[FaultPolicy]):
        self.policies: List[FaultPolicy] = [p for p in policies if p is not None]

    def on_probe(self, ctx, label: str) -> None:
        for policy in self.policies:
            policy.on_probe(ctx, label)

    def on_task_start(self, ctx) -> None:
        for policy in self.policies:
            policy.on_task_start(ctx)


class ProbeFailurePolicy(FaultPolicy):
    """Fail specific (partition, attempt) pairs at specific probe labels.

    ``failures`` maps ``(partition_id, attempt_number)`` to the probe label
    at which that attempt must die.  Attempts not listed run normally, so a
    task scheduled with ``max_failures >= 2`` fails once and then succeeds
    on retry — the scenario the S2V phases must survive.
    """

    def __init__(self, failures: Dict[Tuple[int, int], str]):
        self.failures = dict(failures)
        self.injected: Set[Tuple[int, int, str]] = set()

    def on_probe(self, ctx, label: str) -> None:
        key = (ctx.partition_id, ctx.attempt_number)
        if self.failures.get(key) == label:
            self.injected.add((ctx.partition_id, ctx.attempt_number, label))
            raise InjectedFailure(
                f"injected failure at {label!r} for partition "
                f"{ctx.partition_id} attempt {ctx.attempt_number}"
            )


class FailOncePerTaskPolicy(FaultPolicy):
    """Every task's first attempt dies at the given probe label."""

    def __init__(self, label: str):
        self.label = label
        self.injected: Set[int] = set()

    def on_probe(self, ctx, label: str) -> None:
        if label == self.label and ctx.attempt_number == 0:
            self.injected.add(ctx.partition_id)
            raise InjectedFailure(
                f"injected first-attempt failure at {label!r} for partition "
                f"{ctx.partition_id}"
            )


class FailureRatePolicy(FaultPolicy):
    """Fail a deterministic pseudo-random fraction of attempts at a label.

    Uses a hash of (partition, attempt, label) rather than a RNG so runs
    are reproducible.
    """

    def __init__(self, rate: float, label: str = "", max_attempt: int = 2):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1]: {rate}")
        self.rate = rate
        self.label = label
        self.max_attempt = max_attempt
        self.injected: Set[Tuple[int, int]] = set()

    def on_probe(self, ctx, label: str) -> None:
        from repro.vertica.hashring import HASH_SPACE, vertica_hash

        if self.label and label != self.label:
            return
        if ctx.attempt_number >= self.max_attempt:
            return  # guarantee eventual success
        draw = vertica_hash(ctx.partition_id, ctx.attempt_number, label)
        if draw < self.rate * HASH_SPACE:
            self.injected.add((ctx.partition_id, ctx.attempt_number))
            raise InjectedFailure(
                f"injected random failure at {label!r} for partition "
                f"{ctx.partition_id} attempt {ctx.attempt_number}"
            )
