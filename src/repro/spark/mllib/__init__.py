"""MLlib-lite: the model families the paper's MD component deploys.

Spark 1.x could export linear models, logistic regression, k-means and
linear SVMs to PMML; those are exactly the families implemented here.
Each trainer accepts either a plain sequence or an RDD of
:class:`LabeledPoint`/vectors, trains deterministically (fixed seeds),
and every model supports ``predict`` plus ``to_pmml()`` for deployment
into Vertica.
"""

from repro.spark.mllib.base import LabeledPoint, MllibError
from repro.spark.mllib.regression import LinearRegressionModel, train_linear_regression
from repro.spark.mllib.logistic import LogisticRegressionModel, train_logistic_regression
from repro.spark.mllib.kmeans import KMeansModel, train_kmeans
from repro.spark.mllib.svm import SVMModel, train_svm

__all__ = [
    "KMeansModel",
    "LabeledPoint",
    "LinearRegressionModel",
    "LogisticRegressionModel",
    "MllibError",
    "SVMModel",
    "train_kmeans",
    "train_linear_regression",
    "train_logistic_regression",
    "train_svm",
]
