"""Shared MLlib types and helpers."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np


class MllibError(Exception):
    """Training/validation errors."""


class LabeledPoint:
    """A (label, features) training example, like MLlib's LabeledPoint."""

    __slots__ = ("label", "features")

    def __init__(self, label: float, features: Sequence[float]):
        self.label = float(label)
        self.features = [float(v) for v in features]

    def __repr__(self) -> str:
        return f"LabeledPoint({self.label}, {self.features})"


def collect_points(data: Any) -> List[LabeledPoint]:
    """Accept an RDD, a list of LabeledPoint, or (label, features) pairs."""
    if hasattr(data, "collect"):
        data = data.collect()
    points: List[LabeledPoint] = []
    for item in data:
        if isinstance(item, LabeledPoint):
            points.append(item)
        else:
            label, features = item
            points.append(LabeledPoint(label, features))
    if not points:
        raise MllibError("training requires at least one example")
    width = len(points[0].features)
    for point in points:
        if len(point.features) != width:
            raise MllibError("inconsistent feature dimensionality")
    return points


def collect_vectors(data: Any) -> np.ndarray:
    """Accept an RDD or sequence of feature vectors; returns a 2-D array."""
    if hasattr(data, "collect"):
        data = data.collect()
    matrix = np.asarray([[float(v) for v in row] for row in data], dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise MllibError("training requires a non-empty 2-D dataset")
    return matrix


def design_matrix(points: Sequence[LabeledPoint]) -> Tuple[np.ndarray, np.ndarray]:
    features = np.asarray([p.features for p in points], dtype=float)
    labels = np.asarray([p.label for p in points], dtype=float)
    return features, labels


def feature_names(num_features: int, names: Optional[Sequence[str]]) -> List[str]:
    if names is not None:
        if len(names) != num_features:
            raise MllibError(
                f"{len(names)} feature names for {num_features} features"
            )
        return list(names)
    return [f"field_{i}" for i in range(num_features)]
