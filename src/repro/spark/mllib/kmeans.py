"""K-means clustering (Lloyd's algorithm, deterministic seeding)."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

from repro.pmml import ClusteringModel, PmmlDocument, to_xml
from repro.spark.mllib.base import MllibError, collect_vectors, feature_names


class KMeansModel:
    """k cluster centres; predict returns the nearest centre's index."""

    def __init__(self, centers: Sequence[Sequence[float]],
                 names: Optional[Sequence[str]] = None):
        self.centers = np.asarray([[float(v) for v in c] for c in centers], dtype=float)
        if self.centers.ndim != 2 or self.centers.shape[0] == 0:
            raise MllibError("a k-means model requires at least one centre")
        self.names = feature_names(self.centers.shape[1], names)

    @property
    def k(self) -> int:
        return self.centers.shape[0]

    def predict(self, features: Sequence[float]) -> int:
        point = np.asarray(features, dtype=float)
        distances = np.sum((self.centers - point) ** 2, axis=1)
        return int(np.argmin(distances))

    def predict_all(self, rows: Sequence[Sequence[float]]) -> List[int]:
        return [self.predict(row) for row in rows]

    def cost(self, rows: Sequence[Sequence[float]]) -> float:
        """Within-cluster sum of squared distances."""
        total = 0.0
        for row in rows:
            point = np.asarray(row, dtype=float)
            total += float(np.min(np.sum((self.centers - point) ** 2, axis=1)))
        return total

    def to_pmml(self, model_name: str = "kmeans") -> str:
        document = PmmlDocument(
            ClusteringModel(
                self.names,
                [list(c) for c in self.centers],
                model_name=model_name,
            ),
            description="trained by repro.spark.mllib",
        )
        return to_xml(document)


def train_kmeans(
    data: Any,
    k: int,
    iterations: int = 50,
    seed: int = 7,
    names: Optional[Sequence[str]] = None,
) -> KMeansModel:
    """Lloyd's algorithm with deterministic k-means++ style seeding."""
    matrix = collect_vectors(data)
    count = matrix.shape[0]
    if k <= 0 or k > count:
        raise MllibError(f"k must be in [1, {count}]: {k}")
    rng = np.random.RandomState(seed)
    # k-means++ seeding
    centers = [matrix[rng.randint(count)]]
    while len(centers) < k:
        distances = np.min(
            [np.sum((matrix - c) ** 2, axis=1) for c in centers], axis=0
        )
        total = float(distances.sum())
        if total <= 0:
            centers.append(matrix[rng.randint(count)])
            continue
        draw = rng.rand() * total
        index = int(np.searchsorted(np.cumsum(distances), draw))
        centers.append(matrix[min(index, count - 1)])
    centers = np.asarray(centers, dtype=float)
    for __ in range(iterations):
        distances = np.stack(
            [np.sum((matrix - c) ** 2, axis=1) for c in centers], axis=1
        )
        assignment = np.argmin(distances, axis=1)
        moved = False
        for j in range(k):
            members = matrix[assignment == j]
            if len(members):
                new_center = members.mean(axis=0)
                if not np.allclose(new_center, centers[j]):
                    centers[j] = new_center
                    moved = True
        if not moved:
            break
    return KMeansModel(centers, names=names)
