"""Binary logistic regression via batch gradient descent, with PMML export."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

from repro.pmml import PmmlDocument, RegressionModel, to_xml
from repro.spark.mllib.base import MllibError, collect_points, design_matrix, feature_names


class LogisticRegressionModel:
    """P(y=1 | x) = sigmoid(intercept + w · x)."""

    def __init__(self, weights: Sequence[float], intercept: float,
                 names: Optional[Sequence[str]] = None, threshold: float = 0.5):
        self.weights = np.asarray(weights, dtype=float)
        self.intercept = float(intercept)
        self.names = feature_names(len(self.weights), names)
        self.threshold = threshold

    def predict_probability(self, features: Sequence[float]) -> float:
        score = self.intercept + float(
            np.dot(self.weights, np.asarray(features, dtype=float))
        )
        if score >= 0:
            return 1.0 / (1.0 + np.exp(-score))
        expx = np.exp(score)
        return float(expx / (1.0 + expx))

    def predict(self, features: Sequence[float]) -> float:
        """Class label (0.0 / 1.0) at the configured threshold."""
        return 1.0 if self.predict_probability(features) >= self.threshold else 0.0

    def predict_all(self, rows: Sequence[Sequence[float]]) -> List[float]:
        return [self.predict(row) for row in rows]

    def to_pmml(self, model_name: str = "logistic_regression") -> str:
        document = PmmlDocument(
            RegressionModel(
                self.names,
                list(self.weights),
                intercept=self.intercept,
                function_name="classification",
                normalization="logit",
                model_name=model_name,
            ),
            description="trained by repro.spark.mllib",
        )
        return to_xml(document)


def train_logistic_regression(
    data: Any,
    iterations: int = 200,
    step: float = 0.5,
    regularization: float = 0.0,
    names: Optional[Sequence[str]] = None,
) -> LogisticRegressionModel:
    """Full-batch gradient descent on the logistic loss (deterministic)."""
    points = collect_points(data)
    for point in points:
        if point.label not in (0.0, 1.0):
            raise MllibError(f"labels must be 0/1, got {point.label}")
    features, labels = design_matrix(points)
    count, width = features.shape
    weights = np.zeros(width)
    intercept = 0.0
    for __ in range(iterations):
        scores = features @ weights + intercept
        probs = 1.0 / (1.0 + np.exp(-np.clip(scores, -30, 30)))
        error = probs - labels
        grad_w = features.T @ error / count + regularization * weights
        grad_b = float(np.mean(error))
        weights -= step * grad_w
        intercept -= step * grad_b
    return LogisticRegressionModel(weights, intercept, names=names)
