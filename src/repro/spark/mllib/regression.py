"""Linear regression (least squares), with PMML export."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

from repro.pmml import PmmlDocument, RegressionModel, to_xml
from repro.spark.mllib.base import collect_points, design_matrix, feature_names


class LinearRegressionModel:
    """y = intercept + w · x."""

    def __init__(self, weights: Sequence[float], intercept: float,
                 names: Optional[Sequence[str]] = None):
        self.weights = [float(w) for w in weights]
        self.intercept = float(intercept)
        self.names = feature_names(len(self.weights), names)

    def predict(self, features: Sequence[float]) -> float:
        return self.intercept + float(
            np.dot(self.weights, np.asarray(features, dtype=float))
        )

    def predict_all(self, rows: Sequence[Sequence[float]]) -> List[float]:
        return [self.predict(row) for row in rows]

    def to_pmml(self, model_name: str = "linear_regression") -> str:
        document = PmmlDocument(
            RegressionModel(
                self.names,
                self.weights,
                intercept=self.intercept,
                function_name="regression",
                model_name=model_name,
            ),
            description="trained by repro.spark.mllib",
        )
        return to_xml(document)


def train_linear_regression(
    data: Any, names: Optional[Sequence[str]] = None
) -> LinearRegressionModel:
    """Ordinary least squares with an intercept term (deterministic)."""
    points = collect_points(data)
    features, labels = design_matrix(points)
    design = np.hstack([np.ones((features.shape[0], 1)), features])
    solution, *__ = np.linalg.lstsq(design, labels, rcond=None)
    return LinearRegressionModel(solution[1:], solution[0], names=names)
