"""Linear SVM (hinge loss, batch sub-gradient descent), with PMML export."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

from repro.pmml import PmmlDocument, SupportVectorMachineModel, to_xml
from repro.spark.mllib.base import MllibError, collect_points, design_matrix, feature_names


class SVMModel:
    """Binary classification by the sign of intercept + w · x."""

    def __init__(self, weights: Sequence[float], intercept: float,
                 names: Optional[Sequence[str]] = None):
        self.weights = np.asarray(weights, dtype=float)
        self.intercept = float(intercept)
        self.names = feature_names(len(self.weights), names)

    def margin(self, features: Sequence[float]) -> float:
        return self.intercept + float(
            np.dot(self.weights, np.asarray(features, dtype=float))
        )

    def predict(self, features: Sequence[float]) -> float:
        return 1.0 if self.margin(features) >= 0 else 0.0

    def predict_all(self, rows: Sequence[Sequence[float]]) -> List[float]:
        return [self.predict(row) for row in rows]

    def to_pmml(self, model_name: str = "svm") -> str:
        document = PmmlDocument(
            SupportVectorMachineModel(
                self.names,
                list(self.weights),
                intercept=self.intercept,
                model_name=model_name,
            ),
            description="trained by repro.spark.mllib",
        )
        return to_xml(document)


def train_svm(
    data: Any,
    iterations: int = 200,
    step: float = 0.1,
    regularization: float = 0.01,
    names: Optional[Sequence[str]] = None,
) -> SVMModel:
    """Batch sub-gradient descent on the L2-regularised hinge loss."""
    points = collect_points(data)
    for point in points:
        if point.label not in (0.0, 1.0):
            raise MllibError(f"labels must be 0/1, got {point.label}")
    features, labels = design_matrix(points)
    signs = labels * 2.0 - 1.0  # {0,1} -> {-1,+1}
    count, width = features.shape
    weights = np.zeros(width)
    intercept = 0.0
    for iteration in range(iterations):
        margins = signs * (features @ weights + intercept)
        active = margins < 1.0
        grad_w = regularization * weights - (
            features[active].T @ signs[active]
        ) / count
        grad_b = -float(np.sum(signs[active])) / count
        rate = step / (1.0 + 0.01 * iteration)
        weights -= rate * grad_w
        intercept -= rate * grad_b
    return SVMModel(weights, intercept, names=names)
