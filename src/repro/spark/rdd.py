"""Resilient Distributed Datasets.

An RDD is an immutable, partitioned collection evaluated lazily: each RDD
remembers its parent and a per-partition compute function (its *lineage*),
so a failed task simply recomputes its partition from scratch — there is
no checkpointing and no partial state (§2.1.2).

``compute(split, ctx)`` is a *generator* so data sources can yield
simulation events (network transfers, CPU work) while producing rows;
pure in-memory transformations yield nothing and are free.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Sequence

from repro import telemetry
from repro.spark.errors import SparkError


class RDD:
    """Base class; subclasses define partitioning and compute."""

    _rdd_ids = itertools.count(1)

    def __init__(self, context: "SparkContext", num_partitions: int):  # noqa: F821
        if num_partitions <= 0:
            raise SparkError(f"an RDD needs >= 1 partition: {num_partitions}")
        self.context = context
        self.num_partitions = num_partitions
        #: unique lineage id; cached blocks key on (rdd_id, partition)
        self.rdd_id = next(RDD._rdd_ids)

    # -- lineage node ---------------------------------------------------------
    def compute(self, split: int, ctx) -> Generator:
        """Yield sim events; return the list of rows of partition ``split``."""
        raise NotImplementedError
        yield  # pragma: no cover

    # -- transformations (lazy) --------------------------------------------------
    def map(self, fn: Callable[[Any], Any]) -> "RDD":
        return MapPartitionsRDD(self, lambda split, rows: [fn(r) for r in rows])

    def filter(self, fn: Callable[[Any], bool]) -> "RDD":
        return MapPartitionsRDD(self, lambda split, rows: [r for r in rows if fn(r)])

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "RDD":
        return MapPartitionsRDD(
            self, lambda split, rows: [o for r in rows for o in fn(r)]
        )

    def map_partitions(self, fn: Callable[[List[Any]], Iterable[Any]]) -> "RDD":
        return MapPartitionsRDD(self, lambda split, rows: list(fn(rows)))

    def map_partitions_with_index(
        self, fn: Callable[[int, List[Any]], Iterable[Any]]
    ) -> "RDD":
        return MapPartitionsRDD(self, lambda split, rows: list(fn(split, rows)))

    def union(self, other: "RDD") -> "RDD":
        return UnionRDD(self, other)

    def coalesce(self, num_partitions: int) -> "RDD":
        """Reduce partition count without shuffling (§3.2 setup phase)."""
        if num_partitions >= self.num_partitions:
            return self
        return CoalescedRDD(self, num_partitions)

    def repartition(self, num_partitions: int) -> "RDD":
        """Change partition count, redistributing rows round-robin."""
        if num_partitions == self.num_partitions:
            return self
        if num_partitions < self.num_partitions:
            return self.coalesce(num_partitions)
        return RepartitionedRDD(self, num_partitions)

    def partition_by(self, num_partitions: int, key_fn: Callable[[Any], int]) -> "RDD":
        """Hash-partition rows by ``key_fn`` (used by pre-hashed S2V)."""
        return RepartitionedRDD(self, num_partitions, key_fn=key_fn)

    # -- actions (eager) -----------------------------------------------------------
    def collect(self) -> List[Any]:
        parts = self.context.run_job(self)
        return [row for part in parts for row in part]

    def count(self) -> int:
        parts = self.context.run_job(
            self, result_fn=lambda split, rows: len(rows)
        )
        return sum(parts)

    def take(self, n: int) -> List[Any]:
        out: List[Any] = []
        for part in self.context.run_job(self):
            out.extend(part)
            if len(out) >= n:
                break
        return out[:n]

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        parts = [p for p in self.collect_partitions() if p]
        if not parts:
            raise SparkError("reduce() on an empty RDD")
        accumulator: Optional[Any] = None
        for part in parts:
            for row in part:
                accumulator = row if accumulator is None else fn(accumulator, row)
        return accumulator

    def collect_partitions(self) -> List[List[Any]]:
        return self.context.run_job(self)

    def glom(self) -> List[List[Any]]:
        return self.collect_partitions()

    def cache(self) -> "RDD":
        """Persist computed partitions (like ``RDD.cache()``).

        The first computation of each partition stores its rows in the
        computing executor's block manager; later jobs (and retried
        tasks) reuse the stored block — fetching it from a peer executor
        when placement lands elsewhere — instead of recomputing the
        lineage, including any data-source reads.
        """
        return CachedRDD(self)


class CachedRDD(RDD):
    """Caches a parent RDD's partitions in executor block managers.

    Shark-style: each materialized partition lives as a columnar
    :class:`~repro.cache.blocks.ColumnBlock` in the block manager of the
    executor that computed it, byte-accounted with LRU eviction — no
    unbounded driver-side state.  A task placed on an executor without
    the block fetches it from any live peer holding one; if no replica
    survives (crash, eviction, ``unpersist``), lineage recompute rebuilds
    it and re-stores the result locally.
    """

    def __init__(self, parent: RDD):
        super().__init__(parent.context, parent.num_partitions)
        self.parent = parent

    def _block_managers(self) -> List[Any]:
        return [
            executor.block_manager
            for executor in getattr(self.context, "executors", [])
            if hasattr(executor, "block_manager")
        ]

    @property
    def cached_partitions(self) -> int:
        """Distinct partitions resident somewhere in the cluster."""
        seen = set()
        for manager in self._block_managers():
            seen.update(manager.partitions_of(self.rdd_id))
        return len(seen)

    @property
    def cached_bytes(self) -> int:
        """Total resident bytes of this RDD's blocks (replicas included)."""
        total = 0
        for manager in self._block_managers():
            for split in manager.partitions_of(self.rdd_id):
                block = manager.get((self.rdd_id, split))
                if block is not None:
                    total += block.nbytes
        return total

    def unpersist(self) -> None:
        """Drop every block on every executor, releasing accounted bytes."""
        for manager in self._block_managers():
            manager.drop_rdd(self.rdd_id)

    def compute(self, split: int, ctx) -> Generator:
        key = (self.rdd_id, split)
        local = getattr(getattr(ctx, "executor", None), "block_manager", None)
        if local is not None:
            block = local.get(key)
            if block is not None:
                telemetry.counter("spark.cache.hits").inc()
                return block.rows()
            # Remote fetch: any live peer holding the block serves it.
            for executor in getattr(self.context, "executors", []):
                if getattr(executor, "down", False):
                    continue
                manager = getattr(executor, "block_manager", None)
                if manager is local or manager is None:
                    continue
                block = manager.get(key)
                if block is not None:
                    telemetry.counter("spark.cache.remote_hits").inc()
                    return block.rows()
        telemetry.counter("spark.cache.misses").inc()
        rows = yield from _materialize(self.parent, split, ctx)
        if local is not None:
            local.put(key, rows)
        return list(rows)


class ParallelCollectionRDD(RDD):
    """An RDD over an in-memory list, split into even slices."""

    def __init__(self, context, data: Sequence[Any], num_partitions: int):
        super().__init__(context, num_partitions)
        self._slices: List[List[Any]] = []
        data = list(data)
        count = len(data)
        for i in range(num_partitions):
            lo = (count * i) // num_partitions
            hi = (count * (i + 1)) // num_partitions
            self._slices.append(data[lo:hi])

    def compute(self, split: int, ctx) -> Generator:
        return list(self._slices[split])
        yield  # pragma: no cover


class MapPartitionsRDD(RDD):
    def __init__(self, parent: RDD, fn: Callable[[int, List[Any]], List[Any]]):
        super().__init__(parent.context, parent.num_partitions)
        self.parent = parent
        self.fn = fn

    def compute(self, split: int, ctx) -> Generator:
        rows = yield from _materialize(self.parent, split, ctx)
        return self.fn(split, rows)


class UnionRDD(RDD):
    def __init__(self, left: RDD, right: RDD):
        super().__init__(left.context, left.num_partitions + right.num_partitions)
        self.left = left
        self.right = right

    def compute(self, split: int, ctx) -> Generator:
        if split < self.left.num_partitions:
            rows = yield from _materialize(self.left, split, ctx)
        else:
            rows = yield from _materialize(
                self.right, split - self.left.num_partitions, ctx
            )
        return rows


class CoalescedRDD(RDD):
    """Merges parent partitions into fewer, without moving rows between
    nodes (each output partition simply concatenates a contiguous group)."""

    def __init__(self, parent: RDD, num_partitions: int):
        super().__init__(parent.context, num_partitions)
        self.parent = parent

    def parent_splits(self, split: int) -> List[int]:
        total = self.parent.num_partitions
        lo = (total * split) // self.num_partitions
        hi = (total * (split + 1)) // self.num_partitions
        return list(range(lo, hi))

    def compute(self, split: int, ctx) -> Generator:
        out: List[Any] = []
        for parent_split in self.parent_splits(split):
            rows = yield from _materialize(self.parent, parent_split, ctx)
            out.extend(rows)
        return out


class RepartitionedRDD(RDD):
    """Round-robin (or keyed) redistribution across more partitions.

    This is a narrow simulation of a shuffle: each output partition
    recomputes every parent partition it draws from.  With ``key_fn`` the
    destination is ``key_fn(row) % num_partitions`` (hash partitioning);
    otherwise rows go round-robin by position.
    """

    def __init__(self, parent: RDD, num_partitions: int,
                 key_fn: Optional[Callable[[Any], int]] = None):
        super().__init__(parent.context, num_partitions)
        self.parent = parent
        self.key_fn = key_fn

    def compute(self, split: int, ctx) -> Generator:
        out: List[Any] = []
        position = 0
        for parent_split in range(self.parent.num_partitions):
            rows = yield from _materialize(self.parent, parent_split, ctx)
            for row in rows:
                if self.key_fn is not None:
                    destination = self.key_fn(row) % self.num_partitions
                else:
                    destination = position % self.num_partitions
                if destination == split:
                    out.append(row)
                position += 1
        return out


def _materialize(rdd: RDD, split: int, ctx) -> Generator:
    """Run a parent's compute, tolerating plain-value returns."""
    body = rdd.compute(split, ctx)
    if hasattr(body, "__next__"):
        rows = yield from body
    else:  # pragma: no cover - all built-in RDDs are generators
        rows = body
    return list(rows) if rows is not None else []
