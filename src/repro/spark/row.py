"""DataFrame schemas: StructType/StructField, and type conversions.

Field data types use a compact string vocabulary (``long``, ``double``,
``string``, ``boolean``), with converters to/from the Vertica SQL types
and the Avro-like schema language, since rows cross all three systems.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Sequence, Tuple

from repro.avrolite.schema import Schema
from repro.spark.errors import AnalysisError
from repro.vertica.types import BOOLEAN, FLOAT, INTEGER, SqlType, VARCHAR, VarcharType

DATA_TYPES = ("long", "double", "string", "boolean")

_TO_SQL = {"long": INTEGER, "double": FLOAT, "boolean": BOOLEAN}
_FROM_SQL = {"INTEGER": "long", "FLOAT": "double", "BOOLEAN": "boolean"}
_TO_AVRO = {"long": "long", "double": "double", "string": "string", "boolean": "boolean"}


class StructField:
    """One named, typed DataFrame column."""

    def __init__(self, name: str, data_type: str, nullable: bool = True):
        if data_type not in DATA_TYPES:
            raise AnalysisError(
                f"unknown data type {data_type!r}; expected one of {DATA_TYPES}"
            )
        if not name:
            raise AnalysisError("field name must be non-empty")
        self.name = name
        self.data_type = data_type
        self.nullable = nullable

    def __repr__(self) -> str:
        return f"StructField({self.name!r}, {self.data_type!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StructField):
            return NotImplemented
        return (self.name, self.data_type) == (other.name, other.data_type)

    def to_sql_type(self, varchar_length: int = 65000) -> SqlType:
        if self.data_type == "string":
            return VARCHAR(varchar_length)
        return _TO_SQL[self.data_type]

    def to_avro(self) -> Schema:
        return Schema.primitive(_TO_AVRO[self.data_type], nullable=self.nullable)


class StructType:
    """An ordered collection of fields — a DataFrame's schema."""

    def __init__(self, fields: Sequence[StructField]):
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise AnalysisError(f"duplicate column names: {names}")
        self.fields = list(fields)

    def __iter__(self) -> Iterator[StructField]:
        return iter(self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StructType):
            return NotImplemented
        return self.fields == other.fields

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}:{f.data_type}" for f in self.fields)
        return f"StructType({inner})"

    @property
    def names(self) -> List[str]:
        return [f.name for f in self.fields]

    def field(self, name: str) -> StructField:
        for field in self.fields:
            if field.name.upper() == name.upper():
                return field
        raise AnalysisError(f"no column {name!r} in schema {self!r}")

    def index_of(self, name: str) -> int:
        for index, field in enumerate(self.fields):
            if field.name.upper() == name.upper():
                return index
        raise AnalysisError(f"no column {name!r} in schema {self!r}")

    def select(self, names: Sequence[str]) -> "StructType":
        return StructType([self.field(n) for n in names])

    def to_avro(self, record_name: str = "row") -> Schema:
        return Schema.record(
            record_name, [(f.name.lower(), f.to_avro()) for f in self.fields]
        )

    @classmethod
    def from_sql_types(cls, pairs: Sequence[Tuple[str, SqlType]]) -> "StructType":
        fields = []
        for name, sql_type in pairs:
            if isinstance(sql_type, VarcharType):
                data_type = "string"
            else:
                data_type = _FROM_SQL[repr(sql_type)]
            fields.append(StructField(name, data_type))
        return cls(fields)

    def create_table_sql(
        self, table: str, segmented_by: Sequence[str] = (),
        varchar_length: int = 65000,
    ) -> str:
        """Render CREATE TABLE DDL for this schema (used by S2V)."""
        columns = ", ".join(
            f"{f.name} {f.to_sql_type(varchar_length).name}" for f in self.fields
        )
        ddl = f"CREATE TABLE {table} ({columns})"
        if segmented_by:
            ddl += f" SEGMENTED BY HASH({', '.join(segmented_by)}) ALL NODES"
        return ddl

    def row_width(self, row: Sequence[Any]) -> int:
        """Estimated bytes of one row (for transfer cost accounting)."""
        total = 0
        for field, value in zip(self.fields, row):
            if field.data_type == "string":
                total += len(value.encode("utf-8")) if isinstance(value, str) else 1
            elif field.data_type == "boolean":
                total += 1
            else:
                total += 8
        return total
