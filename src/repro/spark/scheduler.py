"""The batch task scheduler.

Jobs are sets of independent, stateless tasks (§2.1.2): the scheduler
assigns attempts to executor slots, retries failed tasks up to
``max_failures`` total attempts, optionally launches *speculative*
duplicate attempts of stragglers once most of the job has finished, and
supports whole-job cancellation (modelling total Spark failure).

Two behaviours matter for the paper's protocol and are modelled
faithfully:

- a task that fails *after* performing side effects is re-run in full —
  the new attempt repeats the side effects;
- by default, speculative losers are **not** killed: both duplicate
  attempts run to completion with their side effects, and only one result
  is kept.  S2V's staging-table protocol must make those duplicates
  harmless.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, List, Optional

from repro import telemetry
from repro.sim import Environment, Event, Interrupt
from repro.sim.cluster import SimNode
from repro.sim.resources import Resource, Store
from repro.spark.errors import JobFailedError
from repro.spark.faults import FaultPolicy, InjectedFailure

#: Spark's spark.task.maxFailures default
DEFAULT_MAX_FAILURES = 4
#: fraction of finished tasks before speculation kicks in
SPECULATION_THRESHOLD = 0.75

TaskThunk = Callable[["TaskContext"], Any]


class ExecutorLost:
    """Interrupt cause delivered to attempts when their executor crashes.

    Unlike a plain kill (speculative-loser cleanup, job cancellation), an
    executor loss is not the task's fault: the driver relaunches the
    attempt elsewhere without charging it against ``max_failures`` —
    mirroring Spark's handling of executor loss.
    """

    def __init__(self, node_name: str, reason: str = "executor crashed"):
        self.node_name = node_name
        self.reason = reason

    def __repr__(self) -> str:
        return f"ExecutorLost({self.node_name!r}, {self.reason!r})"


class Executor:
    """One executor: a node, a pool of task slots, and a block store."""

    def __init__(
        self,
        env: Environment,
        node: SimNode,
        cores: int,
        cache_budget_bytes: Optional[int] = None,
    ):
        from repro.cache.blocks import DEFAULT_EXECUTOR_CACHE_BYTES, BlockManager

        self.env = env
        self.node = node
        self.slots = Resource(env, cores, name=f"{node.name}.slots")
        #: set while crashed; a down executor receives no new attempts
        self.down = False
        #: cached RDD partition blocks (columnar, byte-accounted LRU);
        #: soft state — emptied when the executor crashes
        self.block_manager = BlockManager(
            f"{node.name}.blocks",
            budget_bytes=(
                cache_budget_bytes
                if cache_budget_bytes is not None
                else DEFAULT_EXECUTOR_CACHE_BYTES
            ),
        )

    def __repr__(self) -> str:
        return f"Executor({self.node.name}, {self.slots.capacity} slots)"


class TaskContext:
    """What a running task attempt knows about itself."""

    _attempt_ids = itertools.count(1)

    def __init__(
        self,
        scheduler: "TaskScheduler",
        job: "Job",
        task: "_Task",
        attempt_number: int,
        speculative: bool,
        executor: Executor,
    ):
        self.scheduler = scheduler
        self.env = scheduler.env
        self.job = job
        self.partition_id = task.index
        self.num_partitions = len(job.tasks)
        self.attempt_number = attempt_number
        self.attempt_id = next(self._attempt_ids)
        self.speculative = speculative
        self.executor = executor

    @property
    def node(self) -> SimNode:
        return self.executor.node

    def probe(self, label: str) -> None:
        """A named failure-injection point; production no-op."""
        self.scheduler.fault_policy.on_probe(self, label)

    def __repr__(self) -> str:
        spec = " (speculative)" if self.speculative else ""
        return (
            f"TaskContext(partition={self.partition_id}, "
            f"attempt={self.attempt_number}{spec})"
        )


class _Task:
    __slots__ = (
        "index",
        "thunk",
        "completed",
        "result",
        "failures",
        "attempts_started",
        "speculated",
        "live_attempts",
        "finish_time",
    )

    def __init__(self, index: int, thunk: TaskThunk):
        self.index = index
        self.thunk = thunk
        self.completed = False
        self.result: Any = None
        self.failures = 0
        self.attempts_started = 0
        self.speculated = False
        #: attempt_id -> (TaskContext, Process) for every in-flight attempt
        self.live_attempts: Dict[int, Any] = {}
        self.finish_time: Optional[float] = None


class Job:
    """A submitted job; ``done`` fires with the list of task results."""

    _job_ids = itertools.count(1)

    def __init__(self, env: Environment, name: str, tasks: List[_Task]):
        self.job_id = next(self._job_ids)
        self.name = name or f"job-{self.job_id}"
        self.tasks = tasks
        self.mailbox = Store(env, name=f"{self.name}.mailbox")
        self.done: Optional[Event] = None  # the driver process
        self.cancelled = False
        self.submit_time = env.now

    @property
    def completed_count(self) -> int:
        return sum(1 for t in self.tasks if t.completed)

    def cancel(self, reason: str = "job cancelled") -> None:
        """Total Spark failure: kill every live attempt, fail the job."""
        self.cancelled = True
        self.mailbox.put(("cancelled", None, None, reason))
        for task in self.tasks:
            for __, process in list(task.live_attempts.values()):
                process.interrupt(reason)


class TaskScheduler:
    """Schedules task attempts onto executors."""

    def __init__(
        self,
        env: Environment,
        executors: List[Executor],
        max_failures: int = DEFAULT_MAX_FAILURES,
        speculation: bool = False,
        speculation_threshold: float = SPECULATION_THRESHOLD,
        kill_speculative_losers: bool = False,
        fault_policy: Optional[FaultPolicy] = None,
        job_launch_overhead: float = 0.0,
        task_launch_overhead: float = 0.0,
    ):
        if not executors:
            raise JobFailedError("a scheduler requires at least one executor")
        if max_failures < 1:
            raise JobFailedError(f"max_failures must be >= 1: {max_failures}")
        self.env = env
        self.executors = executors
        self.max_failures = max_failures
        self.speculation = speculation
        self.speculation_threshold = speculation_threshold
        self.kill_speculative_losers = kill_speculative_losers
        self.fault_policy = fault_policy or FaultPolicy()
        #: fixed latency to submit/launch a job (driver/JVM overheads)
        self.job_launch_overhead = job_launch_overhead
        #: per-attempt scheduling/serialisation latency
        self.task_launch_overhead = task_launch_overhead
        self._round_robin = 0
        #: every job ever submitted (chaos walks this to find live attempts)
        self.jobs: List[Job] = []

    # -- public API -----------------------------------------------------------
    def submit(self, thunks: List[TaskThunk], name: str = "") -> Job:
        """Submit one task per thunk; returns the Job (await ``job.done``)."""
        tasks = [_Task(i, thunk) for i, thunk in enumerate(thunks)]
        job = Job(self.env, name, tasks)
        telemetry.counter("spark.jobs_submitted").inc()
        self.jobs.append(job)
        job.done = self.env.process(self._driver(job), name=f"{job.name}.driver")
        return job

    def crash_executor(self, executor: Executor, reason: str = "chaos") -> int:
        """Kill an executor: interrupt its live attempts, stop placement.

        Every attempt running (or queued) on the executor dies with an
        :class:`ExecutorLost` cause, which the driver relaunches elsewhere
        without counting toward ``max_failures``.  Returns the number of
        attempts killed.  The executor takes no new attempts until
        :meth:`restart_executor`.
        """
        executor.down = True
        # Cached blocks are soft state in executor memory: a crash loses
        # them all, and lineage recompute rebuilds partitions on demand.
        executor.block_manager.drop_all()
        lost = ExecutorLost(executor.node.name, reason)
        killed = 0
        for job in self.jobs:
            if job.done is not None and job.done.triggered:
                continue
            for task in job.tasks:
                for ctx, process in list(task.live_attempts.values()):
                    if ctx.executor is executor:
                        process.interrupt(lost)
                        killed += 1
        telemetry.counter("spark.executor_crashes").inc()
        telemetry.counter("spark.attempts_lost").inc(killed)
        return killed

    def restart_executor(self, executor: Executor) -> None:
        """Bring a crashed executor back into the placement rotation."""
        executor.down = False

    # -- internals --------------------------------------------------------------
    def _next_executor(self, exclude: Optional[Executor] = None) -> Executor:
        up = [e for e in self.executors if not e.down]
        if not up:
            # Everything crashed at once: keep scheduling (the simulated
            # processes still run); placement realism resumes on restart.
            up = self.executors
        for __ in range(len(self.executors)):
            executor = self.executors[self._round_robin % len(self.executors)]
            self._round_robin += 1
            if executor not in up:
                continue
            if executor is not exclude or len(up) == 1:
                return executor
        return up[0]

    def _launch(self, job: Job, task: _Task, speculative: bool = False,
                exclude: Optional[Executor] = None) -> None:
        executor = self._next_executor(exclude=exclude)
        ctx = TaskContext(
            self, job, task, task.attempts_started, speculative, executor
        )
        task.attempts_started += 1
        telemetry.counter("spark.attempts_launched").inc()
        if speculative:
            telemetry.counter("spark.attempts_speculative").inc()
        process = self.env.process(
            self._attempt(job, task, ctx), name=f"{job.name}.t{task.index}.a{ctx.attempt_number}"
        )
        task.live_attempts[ctx.attempt_id] = (ctx, process)

    def _attempt(self, job: Job, task: _Task, ctx: TaskContext) -> Generator:
        executor = ctx.executor
        request = executor.slots.request()
        slot_wait_started = self.env.now
        try:
            yield request
            telemetry.histogram("spark.slot_wait_seconds").observe(
                self.env.now - slot_wait_started
            )
            if self.task_launch_overhead:
                yield self.env.timeout(self.task_launch_overhead)
            self.fault_policy.on_task_start(ctx)
            body = task.thunk(ctx)
            if hasattr(body, "__next__"):
                result = yield from body
            else:
                result = body
            job.mailbox.put(("ok", task, ctx, result))
        except Interrupt as interrupt:
            job.mailbox.put(("killed", task, ctx, interrupt))
        except Exception as exc:  # noqa: BLE001 - reported to the driver
            if isinstance(exc, InjectedFailure):
                # Counted here, not in the driver: zombie duplicates can
                # fail after the job finished, when nothing drains the
                # mailbox, and each injection must still be visible.
                telemetry.counter("spark.task_failures_injected").inc()
            job.mailbox.put(("fail", task, ctx, exc))
        finally:
            # Deregister here too: after the driver has returned, nothing
            # reads the mailbox, but liveness tracking must stay accurate
            # (S2V's finalisation quiesces on it).
            task.live_attempts.pop(ctx.attempt_id, None)
            executor.slots.release(request)

    def _driver(self, job: Job) -> Generator:
        if self.job_launch_overhead:
            yield self.env.timeout(self.job_launch_overhead)
        for task in job.tasks:
            self._launch(job, task)
        total = len(job.tasks)
        completed = 0
        while completed < total:
            message = yield job.mailbox.get()
            kind = message[0]
            if kind == "cancelled":
                raise JobFailedError(f"{job.name}: {message[3]}")
            kind, task, ctx, payload = message
            task.live_attempts.pop(ctx.attempt_id, None)
            if kind == "ok":
                if task.completed:
                    continue  # a duplicate finished later; result discarded
                task.completed = True
                task.result = payload
                task.finish_time = self.env.now
                completed += 1
                telemetry.counter("spark.tasks_completed").inc()
                if self.kill_speculative_losers:
                    for __, process in list(task.live_attempts.values()):
                        process.interrupt("task already completed")
                if self.speculation:
                    self._maybe_speculate(job, completed, total)
            elif kind == "fail":
                if task.completed:
                    continue  # duplicate failed after success; irrelevant
                task.failures += 1
                telemetry.counter("spark.task_failures").inc()
                if task.live_attempts:
                    # Another attempt of this task — typically the original
                    # of a failed speculative duplicate — is still running;
                    # relaunching here would spawn a third concurrent copy,
                    # and counting toward max_failures would let a flaky
                    # duplicate cancel an otherwise-healthy job.
                    continue
                if task.failures >= self.max_failures:
                    job.cancel(
                        f"task {task.index} failed {task.failures} times: {payload}"
                    )
                    # the cancelled message arrives next iteration
                    continue
                self._launch(job, task, exclude=ctx.executor)
            elif kind == "killed":
                cause = getattr(payload, "cause", None)
                if (
                    isinstance(cause, ExecutorLost)
                    and not task.completed
                    and not task.live_attempts
                ):
                    # Executor loss is not the task's fault: relaunch on a
                    # surviving executor without consuming a failure.
                    self._launch(job, task, exclude=ctx.executor)
                # other kills (speculative losers, cancellation) are
                # deliberate; nothing to do
        return [t.result for t in job.tasks]

    def _maybe_speculate(self, job: Job, completed: int, total: int) -> None:
        if completed < self.speculation_threshold * total or completed == total:
            return
        for task in job.tasks:
            if task.completed or task.speculated or not task.live_attempts:
                continue
            task.speculated = True
            self._launch(job, task, speculative=True)

    # convenience used by tests and the bench harness ----------------------------
    def run(self, thunks: List[TaskThunk], name: str = "") -> List[Any]:
        """Submit and run to completion (drives the sim clock)."""
        job = self.submit(thunks, name)
        return self.env.run(job.done)
