"""Fabric telemetry: counters, gauges, histograms, timers and spans.

The paper's claims are quantitative — Table 2's resource utilisation,
Figures 6–12's runtime curves, §3.2's exactly-once behaviour under
retries and speculation — yet measuring *why* the fabric behaves as it
does requires observing connector-internal events: attempts launched,
speculative duplicates, COPY chunks, lock contention, per-phase S2V
latencies.  This package is that observation layer.

Design:

- **Disabled by default, near-zero overhead when off.**  A single global
  :class:`~repro.telemetry.registry.MetricsRegistry` is consulted through
  the module-level helpers below.  While disabled, every helper returns a
  shared no-op instrument, so instrumented code pays only a couple of
  attribute lookups per event and allocates nothing.
- **Sim-time aware.**  A registry is *bound* to a simulation
  :class:`~repro.sim.Environment`; timers and spans read the simulated
  clock, so durations are simulated seconds, not wall time.
- **Hierarchical spans.**  ``with telemetry.span("s2v.phase1", task=i):``
  records a timed interval; nesting is tracked per simulation process, so
  interleaved task attempts do not corrupt each other's ancestry.
- **One reporting path.**  :class:`~repro.telemetry.snapshot.MetricsSnapshot`
  freezes counters, histogram summaries, span records, registered
  :class:`~repro.sim.UsageTrace` series and the kernel's scheduling stats
  into a single object that ``bench.report`` renders as the telemetry
  section of every benchmark result file.

Typical use (the bench harness does this via ``Fabric(telemetry=True)``)::

    from repro import telemetry

    registry = telemetry.MetricsRegistry(enabled=True)
    registry.bind(env)
    telemetry.install(registry)
    ...            # run the workload
    snapshot = registry.snapshot()
    telemetry.reset()
"""

from __future__ import annotations

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_SPAN,
    NULL_TIMER,
)
from repro.telemetry.snapshot import MetricsSnapshot
from repro.telemetry.spans import Span, SpanRecord

#: the process-global registry; starts disabled so plain unit tests and
#: cost-model runs never pay for metric bookkeeping
_REGISTRY = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The currently installed global registry (possibly disabled)."""
    return _REGISTRY


def install(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the global registry; returns it."""
    global _REGISTRY
    _REGISTRY = registry
    return registry


def reset() -> None:
    """Replace the global registry with a fresh disabled one."""
    global _REGISTRY
    _REGISTRY = MetricsRegistry(enabled=False)


def enabled() -> bool:
    return _REGISTRY.enabled


# -- instrument accessors on the global registry -----------------------------
def counter(name: str) -> Counter:
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return _REGISTRY.histogram(name)


def timer(name: str):
    return _REGISTRY.timer(name)


def span(name: str, **tags):
    return _REGISTRY.span(name, **tags)


def now() -> float:
    return _REGISTRY.now()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_SPAN",
    "NULL_TIMER",
    "Span",
    "SpanRecord",
    "counter",
    "enabled",
    "gauge",
    "get_registry",
    "histogram",
    "install",
    "now",
    "reset",
    "span",
    "timer",
]
