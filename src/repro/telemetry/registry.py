"""The metrics registry: counters, gauges, histograms, timers, spans.

Instruments are created lazily by name.  A *disabled* registry returns
shared null instruments whose mutators do nothing, so instrumentation
left in production paths costs only the dispatch to this module — the
repo's "disabled-by-default, near-zero overhead" requirement.

Time comes from :meth:`MetricsRegistry.now`: a registry bound to a
simulation :class:`~repro.sim.Environment` reads the simulated clock, so
timers and spans measure simulated seconds.  An unbound registry reads a
monotonically increasing call counter (useful for plain unit tests, where
ordering matters but durations do not).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.telemetry.spans import Span, SpanRecord


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A value that goes up and down (queue depths, live attempts)."""

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def inc(self, amount: float = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Summary statistics over observed values (latencies, sizes)."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.4g})"


class Timer:
    """Context manager recording an elapsed duration into a histogram."""

    __slots__ = ("_registry", "_histogram", "_start")

    def __init__(self, registry: "MetricsRegistry", histogram: Histogram):
        self._registry = registry
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = self._registry.now()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._histogram.observe(self._registry.now() - self._start)


class _NullInstrument:
    """Shared do-nothing stand-in for every instrument while disabled.

    Reentrant as a context manager, so it can serve as the null timer and
    the null span simultaneously (including nested uses).
    """

    __slots__ = ()

    name = "<disabled>"
    value = 0.0
    peak = 0.0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def tag(self, **tags: Any) -> "_NullInstrument":
        return self

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


NULL_COUNTER = _NullInstrument()
NULL_GAUGE = _NullInstrument()
NULL_HISTOGRAM = _NullInstrument()
NULL_TIMER = _NullInstrument()
NULL_SPAN = _NullInstrument()


class MetricsRegistry:
    """A named collection of instruments plus the span log."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._env = None
        self._tick = 0
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: finished span records, in completion order
        self.spans: List[SpanRecord] = []
        #: open-span stacks, keyed by the active simulation process (so
        #: interleaved processes each keep a correct ancestry chain)
        self._span_stacks: Dict[Any, List[Span]] = {}
        #: named utilisation series registered for the snapshot
        self._traces: List["repro.sim.trace.UsageTrace"] = []  # noqa: F821

    # -- clock ---------------------------------------------------------------
    def bind(self, env: "repro.sim.Environment") -> "MetricsRegistry":  # noqa: F821
        """Read time (and the active process) from a sim environment."""
        self._env = env
        return self

    @property
    def env(self):
        return self._env

    def now(self) -> float:
        if self._env is not None:
            return self._env.now
        self._tick += 1
        return float(self._tick)

    # -- instruments ---------------------------------------------------------
    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def timer(self, name: str) -> Timer:
        if not self.enabled:
            return NULL_TIMER
        return Timer(self, self.histogram(name))

    # -- spans ---------------------------------------------------------------
    def span(self, name: str, **tags: Any) -> Span:
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, tags)

    def _track_key(self) -> Any:
        """The key identifying the current logical thread of execution."""
        if self._env is not None and self._env.active_process is not None:
            return self._env.active_process
        return None

    def _open_span(self, span: Span) -> None:
        stack = self._span_stacks.setdefault(self._track_key(), [])
        span.parent = stack[-1] if stack else None
        stack.append(span)

    def _close_span(self, span: Span) -> None:
        key = self._track_key()
        stack = self._span_stacks.get(key)
        if stack and span in stack:
            stack.remove(span)
            if not stack:
                del self._span_stacks[key]
        self.spans.append(span.record())

    # -- traces --------------------------------------------------------------
    def add_trace(self, trace: "repro.sim.trace.UsageTrace") -> None:  # noqa: F821
        """Register a utilisation series for inclusion in snapshots."""
        if self.enabled:
            self._traces.append(trace)

    def trace_from_log(
        self, name: str, log, start: float, end: float, step: float
    ) -> "repro.sim.trace.UsageTrace":  # noqa: F821
        """Bucket a (time, value) change log and register the trace."""
        from repro.sim.trace import UsageTrace

        trace = UsageTrace.from_log(name, log, start, end, step)
        self.add_trace(trace)
        return trace

    # -- export --------------------------------------------------------------
    def snapshot(self) -> "repro.telemetry.snapshot.MetricsSnapshot":  # noqa: F821
        """Freeze the registry's current state into a MetricsSnapshot."""
        from repro.telemetry.snapshot import MetricsSnapshot

        kernel: Dict[str, float] = {}
        if self._env is not None and hasattr(self._env, "stats"):
            kernel = self._env.stats.as_dict()
        return MetricsSnapshot(
            counters={n: c.value for n, c in self._counters.items()},
            gauges={n: (g.value, g.peak) for n, g in self._gauges.items()},
            histograms={n: h.summary() for n, h in self._histograms.items()},
            spans=list(self.spans),
            traces=list(self._traces),
            kernel=kernel,
        )

    def clear(self) -> None:
        """Drop all recorded state but keep the binding and enablement."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self.spans.clear()
        self._span_stacks.clear()
        self._traces.clear()
