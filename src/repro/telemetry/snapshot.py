"""A frozen export of a registry's state, ready for reporting.

``MetricsRegistry.snapshot()`` produces one of these; ``bench.report``
renders it as the telemetry section of a benchmark result file.  The
snapshot owns plain data (dicts, tuples, SpanRecords) so it stays valid
after the registry is reset or the simulation torn down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.spans import SpanRecord


@dataclass
class MetricsSnapshot:
    """Counters, gauges, histogram summaries, spans, traces, kernel stats."""

    counters: Dict[str, float] = field(default_factory=dict)
    #: name -> (final value, peak value)
    gauges: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    #: name -> {count, total, mean, min, max}
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)
    spans: List[SpanRecord] = field(default_factory=list)
    traces: List[Any] = field(default_factory=list)
    kernel: Dict[str, float] = field(default_factory=dict)

    # -- queries -------------------------------------------------------------
    def counter(self, name: str, default: float = 0.0) -> float:
        return self.counters.get(name, default)

    def span_names(self) -> List[str]:
        """Distinct span names, in first-completion order."""
        seen: Dict[str, None] = {}
        for record in self.spans:
            seen.setdefault(record.name, None)
        return list(seen)

    def spans_named(self, name: str) -> List[SpanRecord]:
        return [record for record in self.spans if record.name == name]

    def span_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-name aggregate: count, total/min/max/mean duration."""
        summary: Dict[str, Dict[str, float]] = {}
        for record in self.spans:
            entry = summary.setdefault(
                record.name,
                {"count": 0, "total": 0.0, "min": float("inf"), "max": float("-inf")},
            )
            entry["count"] += 1
            entry["total"] += record.duration
            entry["min"] = min(entry["min"], record.duration)
            entry["max"] = max(entry["max"], record.duration)
        for entry in summary.values():
            entry["mean"] = entry["total"] / entry["count"]
        return summary

    # -- serialisation -------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "gauges": {n: list(v) for n, v in self.gauges.items()},
            "histograms": {n: dict(s) for n, s in self.histograms.items()},
            "spans": {
                name: {k: round(v, 6) for k, v in entry.items()}
                for name, entry in self.span_summary().items()
            },
            "kernel": dict(self.kernel),
        }

    def render(self) -> str:
        """A human-readable telemetry section (plain text)."""
        lines: List[str] = ["telemetry"]

        if self.counters:
            lines.append("  counters:")
            for name in sorted(self.counters):
                lines.append(f"    {name:<40} {_fmt_num(self.counters[name])}")

        if self.gauges:
            lines.append("  gauges (final / peak):")
            for name in sorted(self.gauges):
                value, peak = self.gauges[name]
                lines.append(f"    {name:<40} {_fmt_num(value)} / {_fmt_num(peak)}")

        if self.histograms:
            lines.append("  histograms:")
            for name in sorted(self.histograms):
                s = self.histograms[name]
                lines.append(
                    f"    {name:<40} n={s['count']:<6g} "
                    f"mean={s['mean']:.4g} min={s['min']:.4g} max={s['max']:.4g}"
                )

        summary = self.span_summary()
        if summary:
            lines.append("  spans:")
            for name in sorted(summary):
                s = summary[name]
                lines.append(
                    f"    {name:<40} n={s['count']:<6g} "
                    f"mean={s['mean']:.4g}s total={s['total']:.4g}s"
                )

        if self.kernel:
            lines.append("  kernel:")
            for name in sorted(self.kernel):
                lines.append(f"    {name:<40} {_fmt_num(self.kernel[name])}")

        for trace in self.traces:
            lines.append(f"  trace {trace.name}: {trace.sparkline()}")

        if len(lines) == 1:
            lines.append("  (no instruments recorded)")
        return "\n".join(lines)


def _fmt_num(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.4g}"
