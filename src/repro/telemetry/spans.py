"""Hierarchical timed spans.

A span is a named, tagged interval of (simulated) time::

    with telemetry.span("s2v.phase1", task=task_index):
        yield from phase1(...)

Spans nest: while a span is open, further spans opened by the *same
simulation process* become its children.  Nesting is tracked per active
process — interleaved task attempts running in the same environment each
maintain an independent stack, so concurrency does not corrupt ancestry.

A span works across ``yield from`` inside generator-based sim processes
because the registry consults ``env.active_process`` at open/close time,
not at resume time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

_span_ids = itertools.count(1)


@dataclass(frozen=True)
class SpanRecord:
    """An immutable record of one finished span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: float
    tags: Tuple[Tuple[str, Any], ...] = ()
    error: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def tag_dict(self) -> Dict[str, Any]:
        return dict(self.tags)

    def __str__(self) -> str:
        tags = " ".join(f"{k}={v}" for k, v in self.tags)
        label = f"{self.name} [{tags}]" if tags else self.name
        suffix = f" ERROR({self.error})" if self.error else ""
        return f"{label} {self.start:.4f}s..{self.end:.4f}s ({self.duration:.4f}s){suffix}"


class Span:
    """An open span; use as a context manager."""

    __slots__ = ("span_id", "name", "tags", "parent", "start", "end", "error", "_registry")

    def __init__(self, registry, name: str, tags: Dict[str, Any]):
        self.span_id = next(_span_ids)
        self.name = name
        self.tags = tags
        self.parent: Optional["Span"] = None
        self.start = 0.0
        self.end = 0.0
        self.error: Optional[str] = None
        self._registry = registry

    def tag(self, **tags: Any) -> "Span":
        """Attach extra tags; returns self for chaining."""
        self.tags.update(tags)
        return self

    def __enter__(self) -> "Span":
        self.start = self._registry.now()
        self._registry._open_span(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = self._registry.now()
        if exc is not None:
            self.error = f"{exc_type.__name__}: {exc}"
        self._registry._close_span(self)

    def record(self) -> SpanRecord:
        return SpanRecord(
            span_id=self.span_id,
            parent_id=self.parent.span_id if self.parent is not None else None,
            name=self.name,
            start=self.start,
            end=self.end,
            tags=tuple(sorted(self.tags.items())),
            error=self.error,
        )

    def __repr__(self) -> str:
        return f"Span({self.name!r}, id={self.span_id})"
