"""An MPP columnar database substrate modelled on HPE Vertica.

This package implements, from scratch, the Vertica behaviours the paper's
connector relies on:

- **Segmentation / hash ring** — tables are hash-segmented into contiguous
  hash ranges, one segment per node (:mod:`repro.vertica.hashring`);
  unsegmented tables are replicated on every node.
- **Columnar storage** — per-node ROS containers with container commit
  epochs and delete vectors, plus a WOS staging area per transaction
  (:mod:`repro.vertica.storage`).
- **Epochs + ACID** — MVCC snapshot reads (``AT EPOCH n``), table-level
  two-phase locking, atomic commits that advance the epoch counter
  (:mod:`repro.vertica.txn`).
- **SQL** — a lexer/parser/executor for the dialect the connector speaks:
  CREATE/DROP/ALTER RENAME, INSERT (incl. INSERT..SELECT), UPDATE, DELETE,
  SELECT with WHERE / joins / GROUP BY / ORDER BY / LIMIT / AT EPOCH,
  COPY, views, system catalog queries and UDF invocation
  (:mod:`repro.vertica.sql`, :mod:`repro.vertica.engine`).
- **COPY** — the bulk-load path with Avro and CSV sources, rejected-row
  accounting and REJECTMAX (:mod:`repro.vertica.copyload`), programmable
  via a ``VerticaCopyStream``-style API.
- **UDx** — a user-defined-function registry so ``PMMLPredict`` can run
  in-database (:mod:`repro.vertica.udx`).
- **Internal DFS** — the distributed file store the MD component deploys
  PMML models into (:mod:`repro.vertica.dfs`).

The database itself is synchronous and deterministic; every statement also
returns a :class:`~repro.vertica.engine.CostReport` describing rows/bytes
touched and their node locality, which the simulation bridge turns into
simulated time and network flows.
"""

from repro.vertica.errors import (
    CatalogError,
    CopyRejectError,
    LockContention,
    SqlError,
    TransactionError,
    TypeMismatchError,
    VerticaError,
)
from repro.vertica.types import BOOLEAN, FLOAT, INTEGER, SqlType, VARCHAR, parse_type
from repro.vertica.hashring import HASH_SPACE, HashRing, Segment, vertica_hash
from repro.vertica.database import VerticaDatabase
from repro.vertica.session import Session

__all__ = [
    "BOOLEAN",
    "CatalogError",
    "CopyRejectError",
    "FLOAT",
    "HASH_SPACE",
    "HashRing",
    "INTEGER",
    "LockContention",
    "Segment",
    "Session",
    "SqlError",
    "SqlType",
    "TransactionError",
    "TypeMismatchError",
    "VARCHAR",
    "VerticaDatabase",
    "VerticaError",
    "parse_type",
    "vertica_hash",
]
