"""The system catalog: table definitions, segmentation metadata, views.

The catalog is also queryable through virtual system tables, exactly the
mechanism the paper's V2S uses to discover the hash-ring layout ("this
information is stored in the Vertica system catalog and can be queried",
§3.1.2):

- ``v_catalog.nodes`` — node_name, node_state
- ``v_catalog.segments`` — table_name, segment_lower_bound,
  segment_upper_bound, node_name
- ``v_catalog.tables`` — table_name, is_segmented, row_segmentation
- ``v_catalog.epochs`` — current_epoch
- ``v_catalog.resource_pools`` — WLM pool definitions (memory,
  planned/max concurrency, priority, queue timeout, cascade)
- ``v_catalog.column_statistics`` — optimizer statistics collected by
  ``ANALYZE`` (row/null counts, NDV, min/max, histogram buckets)
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.vertica.errors import CatalogError, SqlError
from repro.vertica.hashring import HashRing, vertica_hash
from repro.vertica.sql import ast_nodes as ast
from repro.vertica.types import SqlType


class TableDef:
    """One table: schema, segmentation, and its hash ring."""

    def __init__(
        self,
        name: str,
        columns: Sequence[ast.ColumnDef],
        node_names: Sequence[str],
        segmented_by: Optional[List[str]] = None,
        unsegmented: bool = False,
    ):
        if not columns:
            raise CatalogError(f"table {name!r} requires at least one column")
        self.name = name
        self.columns = list(columns)
        names = self.column_names()
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in table {name!r}")
        self.unsegmented = unsegmented
        if unsegmented:
            self.segmentation_columns: List[str] = []
            self.ring: Optional[HashRing] = None
        else:
            if segmented_by:
                missing = [c for c in segmented_by if c not in names]
                if missing:
                    raise CatalogError(
                        f"segmentation columns {missing} not in table {name!r}"
                    )
                self.segmentation_columns = list(segmented_by)
            else:
                # Vertica's default: segment by (several) columns; we use all.
                self.segmentation_columns = list(names)
            self.ring = HashRing.even(list(node_names))

    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def column_types(self) -> List[SqlType]:
        return [c.sql_type for c in self.columns]

    def type_of(self, column: str) -> SqlType:
        for column_def in self.columns:
            if column_def.name == column:
                return column_def.sql_type
        raise CatalogError(f"table {self.name!r} has no column {column!r}")

    def has_column(self, column: str) -> bool:
        return any(c.name == column for c in self.columns)

    def row_hash(self, row: Dict[str, Any]) -> int:
        """Segmentation hash of one row (0 for unsegmented tables)."""
        if self.unsegmented:
            return 0
        values = [row[c] for c in self.segmentation_columns]
        return vertica_hash(*values)

    def node_for_row(self, row: Dict[str, Any]) -> Optional[str]:
        """Owning node, or ``None`` for unsegmented (replicated) tables."""
        if self.unsegmented or self.ring is None:
            return None
        return self.ring.node_for(self.row_hash(row))

    def row_width(self, row: Dict[str, Any]) -> int:
        total = 0
        for column_def in self.columns:
            total += column_def.sql_type.value_width(row.get(column_def.name))
        return total


class ViewDef:
    """A named stored query."""

    def __init__(self, name: str, query: ast.Select, sql_text: str = ""):
        self.name = name
        self.query = query
        self.sql_text = sql_text


class Catalog:
    """Tables and views, plus virtual system-table generation."""

    def __init__(self, node_names: Sequence[str]):
        from repro.vertica.stats import TableStats
        from repro.wlm.pools import ResourcePool, general_pool

        self.node_names = list(node_names)
        self.tables: Dict[str, TableDef] = {}
        self.views: Dict[str, ViewDef] = {}
        #: WLM pool definitions; every database is born with GENERAL
        self.resource_pools: Dict[str, "ResourcePool"] = {
            "GENERAL": general_pool()
        }
        #: optimizer statistics, keyed by upper-cased table name (ANALYZE)
        self.statistics: Dict[str, "TableStats"] = {}
        #: monotonically increasing catalog version: bumped by every DDL
        #: change and by ANALYZE, because those mutate query-visible state
        #: *without* advancing an epoch.  The plan and result caches fold
        #: this into their keys, so epoch keying alone stays exact.
        self.version = 0

    def bump_version(self) -> int:
        """Invalidate version-keyed caches (DDL/ANALYZE happened)."""
        self.version += 1
        return self.version

    # -- tables ----------------------------------------------------------------
    def create_table(
        self,
        name: str,
        columns: Sequence[ast.ColumnDef],
        segmented_by: Optional[List[str]] = None,
        unsegmented: bool = False,
        if_not_exists: bool = False,
    ) -> Optional[TableDef]:
        key = name.upper()
        if key in self.tables or key in self.views:
            if if_not_exists:
                return None
            raise CatalogError(f"relation {name!r} already exists")
        table = TableDef(
            key,
            columns,
            self.node_names,
            segmented_by=[c.upper() for c in segmented_by] if segmented_by else None,
            unsegmented=unsegmented,
        )
        self.tables[key] = table
        self.bump_version()
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> bool:
        key = name.upper()
        if key not in self.tables:
            if if_exists:
                return False
            raise CatalogError(f"table {name!r} does not exist")
        del self.tables[key]
        self.statistics.pop(key, None)
        self.bump_version()
        return True

    def rename_table(self, name: str, new_name: str) -> None:
        key = name.upper()
        new_key = new_name.upper()
        if key not in self.tables:
            raise CatalogError(f"table {name!r} does not exist")
        if new_key in self.tables or new_key in self.views:
            raise CatalogError(f"relation {new_name!r} already exists")
        table = self.tables.pop(key)
        table.name = new_key
        self.tables[new_key] = table
        stats = self.statistics.pop(key, None)
        if stats is not None:
            stats.table = new_key
            self.statistics[new_key] = stats
        self.bump_version()

    def table(self, name: str) -> TableDef:
        try:
            return self.tables[name.upper()]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def has_table(self, name: str) -> bool:
        return name.upper() in self.tables

    # -- views ------------------------------------------------------------------
    def create_view(self, name: str, query: ast.Select, or_replace: bool = False,
                    sql_text: str = "") -> ViewDef:
        key = name.upper()
        if key in self.tables:
            raise CatalogError(f"a table named {name!r} already exists")
        if key in self.views and not or_replace:
            raise CatalogError(f"view {name!r} already exists")
        view = ViewDef(key, query, sql_text)
        self.views[key] = view
        self.bump_version()
        return view

    def drop_view(self, name: str, if_exists: bool = False) -> bool:
        key = name.upper()
        if key not in self.views:
            if if_exists:
                return False
            raise CatalogError(f"view {name!r} does not exist")
        del self.views[key]
        self.bump_version()
        return True

    def has_view(self, name: str) -> bool:
        return name.upper() in self.views

    def view(self, name: str) -> ViewDef:
        try:
            return self.views[name.upper()]
        except KeyError:
            raise CatalogError(f"view {name!r} does not exist") from None

    # -- resource pools ---------------------------------------------------------
    def create_resource_pool(self, pool, or_replace: bool = False):
        """Register a :class:`~repro.wlm.pools.ResourcePool` definition."""
        key = pool.name  # already uppercased by the dataclass
        if key in self.resource_pools and not or_replace:
            raise CatalogError(f"resource pool {pool.name!r} already exists")
        if pool.cascade is not None and pool.cascade not in self.resource_pools:
            raise CatalogError(
                f"resource pool {pool.name!r} cascades to unknown pool "
                f"{pool.cascade!r}"
            )
        self.resource_pools[key] = pool
        return pool

    def drop_resource_pool(self, name: str, if_exists: bool = False) -> bool:
        key = name.upper()
        if key == "GENERAL":
            raise CatalogError("the GENERAL pool cannot be dropped")
        if key not in self.resource_pools:
            if if_exists:
                return False
            raise CatalogError(f"resource pool {name!r} does not exist")
        dependents = [
            p.name for p in self.resource_pools.values() if p.cascade == key
        ]
        if dependents:
            raise CatalogError(
                f"resource pool {name!r} is the cascade target of "
                f"{', '.join(sorted(dependents))}"
            )
        del self.resource_pools[key]
        return True

    def resource_pool(self, name: str):
        try:
            return self.resource_pools[name.upper()]
        except KeyError:
            raise CatalogError(f"resource pool {name!r} does not exist") from None

    def has_resource_pool(self, name: str) -> bool:
        return name.upper() in self.resource_pools

    # -- system tables ---------------------------------------------------------------
    def is_system_table(self, name: str) -> bool:
        return name.upper().startswith(("V_CATALOG.", "V_MONITOR."))

    def system_table_rows(
        self, name: str, current_epoch: int, node_states: Dict[str, str]
    ) -> Tuple[List[str], List[Dict[str, Any]]]:
        """Columns and rows for one virtual system table."""
        key = name.upper()
        if key == "V_CATALOG.NODES":
            columns = ["NODE_NAME", "NODE_STATE"]
            rows = [
                {"NODE_NAME": n, "NODE_STATE": node_states.get(n, "UP")}
                for n in self.node_names
            ]
            return columns, rows
        if key == "V_CATALOG.SEGMENTS":
            columns = [
                "TABLE_NAME",
                "SEGMENT_LOWER_BOUND",
                "SEGMENT_UPPER_BOUND",
                "NODE_NAME",
            ]
            rows = []
            for table in self.tables.values():
                if table.ring is None:
                    continue
                for segment in table.ring.segments:
                    rows.append(
                        {
                            "TABLE_NAME": table.name,
                            "SEGMENT_LOWER_BOUND": segment.lo,
                            "SEGMENT_UPPER_BOUND": segment.hi,
                            "NODE_NAME": segment.node,
                        }
                    )
            return columns, rows
        if key == "V_CATALOG.TABLES":
            columns = ["TABLE_NAME", "IS_SEGMENTED", "ROW_SEGMENTATION"]
            rows = [
                {
                    "TABLE_NAME": t.name,
                    "IS_SEGMENTED": not t.unsegmented,
                    "ROW_SEGMENTATION": ",".join(t.segmentation_columns),
                }
                for t in self.tables.values()
            ]
            return columns, rows
        if key == "V_CATALOG.COLUMNS":
            columns = ["TABLE_NAME", "COLUMN_NAME", "DATA_TYPE", "ORDINAL_POSITION"]
            rows = []
            for table in self.tables.values():
                for position, column_def in enumerate(table.columns):
                    rows.append(
                        {
                            "TABLE_NAME": table.name,
                            "COLUMN_NAME": column_def.name,
                            "DATA_TYPE": column_def.sql_type.name,
                            "ORDINAL_POSITION": position,
                        }
                    )
            return columns, rows
        if key == "V_CATALOG.EPOCHS":
            return ["CURRENT_EPOCH"], [{"CURRENT_EPOCH": current_epoch}]
        if key == "V_CATALOG.COLUMN_STATISTICS":
            from repro.vertica import stats as stats_module

            return stats_module.system_table_rows(self.statistics)
        if key == "V_CATALOG.RESOURCE_POOLS":
            columns = [
                "POOL_NAME",
                "MEMORY_MB",
                "PLANNED_CONCURRENCY",
                "MAX_CONCURRENCY",
                "PRIORITY",
                "QUEUE_TIMEOUT",
                "CASCADE_TO",
            ]
            rows = [
                {
                    "POOL_NAME": p.name,
                    "MEMORY_MB": p.memory_mb,
                    "PLANNED_CONCURRENCY": p.planned_concurrency,
                    "MAX_CONCURRENCY": p.max_concurrency,
                    "PRIORITY": p.priority,
                    "QUEUE_TIMEOUT": p.queue_timeout,
                    "CASCADE_TO": p.cascade,
                }
                for _, p in sorted(self.resource_pools.items())
            ]
            return columns, rows
        raise SqlError(f"unknown system table {name!r}")
