"""COPY: Vertica's bulk-load path.

Implements the ``COPY <table> FROM STDIN`` statement for CSV and Avro
payloads, with per-row rejection accounting: a malformed row does not fail
the load, it is *rejected*; if the count of rejected rows exceeds
``REJECTMAX`` the whole load fails (and the enclosing transaction aborts).
The paper's S2V leans on exactly this machinery — each Spark task streams
its partition as Avro into COPY, and the connector exposes the rejected-row
tolerance to the user (§3.2).

:class:`VerticaCopyStream` mirrors the Java API of the same name: a
programmatic handle for streaming chunks into one COPY statement.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.avrolite import SchemaError, decode_rows
from repro.avrolite.schema import Schema
from repro.vertica.catalog import TableDef
from repro.vertica.errors import CopyRejectError, SqlError, TypeMismatchError

#: how many rejected rows are kept as a sample for the user
REJECT_SAMPLE_SIZE = 10


class RejectedRow:
    """One rejected input row and the reason it was rejected."""

    __slots__ = ("line", "reason")

    def __init__(self, line: Any, reason: str):
        self.line = line
        self.reason = reason

    def __repr__(self) -> str:
        return f"RejectedRow({self.line!r}, {self.reason!r})"


class CopyResult:
    """Outcome of a COPY: loaded/rejected counts and a rejection sample."""

    def __init__(self, loaded: int, rejected: int, sample: List[RejectedRow]):
        self.loaded = loaded
        self.rejected = rejected
        self.sample = sample

    def __repr__(self) -> str:
        return f"CopyResult(loaded={self.loaded}, rejected={self.rejected})"


def avro_schema_for_table(table: TableDef) -> Schema:
    """The Avro record schema a COPY FORMAT AVRO payload must carry."""
    fields = [
        (column.name.lower(),
         Schema.primitive(column.sql_type.avro_kind, nullable=True))
        for column in table.columns
    ]
    return Schema.record(table.name.lower(), fields)


def parse_csv_rows(
    table: TableDef, text: str, delimiter: str = ","
) -> Tuple[List[Dict[str, Any]], List[RejectedRow]]:
    """Parse delimited text into coerced row dicts plus rejections."""
    good: List[Dict[str, Any]] = []
    bad: List[RejectedRow] = []
    columns = table.columns
    for line in text.splitlines():
        if not line.strip():
            continue
        tokens = line.split(delimiter)
        if len(tokens) != len(columns):
            bad.append(
                RejectedRow(line, f"expected {len(columns)} fields, got {len(tokens)}")
            )
            continue
        row: Dict[str, Any] = {}
        try:
            for column, token in zip(columns, tokens):
                row[column.name] = column.sql_type.from_csv(token)
        except TypeMismatchError as exc:
            bad.append(RejectedRow(line, str(exc)))
            continue
        good.append(row)
    return good, bad


def parse_avro_rows(
    table: TableDef, payload: bytes
) -> Tuple[List[Dict[str, Any]], List[RejectedRow]]:
    """Decode an Avro container into coerced row dicts plus rejections."""
    good: List[Dict[str, Any]] = []
    bad: List[RejectedRow] = []
    try:
        rows = decode_rows(payload)
    except SchemaError as exc:
        raise SqlError(f"COPY: cannot decode Avro payload: {exc}") from exc
    columns = table.columns
    for values in rows:
        if not isinstance(values, tuple) or len(values) != len(columns):
            bad.append(
                RejectedRow(values, f"expected {len(columns)} fields")
            )
            continue
        row: Dict[str, Any] = {}
        try:
            for column, value in zip(columns, values):
                row[column.name] = column.sql_type.coerce(value)
        except TypeMismatchError as exc:
            bad.append(RejectedRow(values, str(exc)))
            continue
        good.append(row)
    return good, bad


def parse_columnar_rows(
    table: TableDef, payload: bytes
) -> Tuple[List[Dict[str, Any]], List[RejectedRow]]:
    """Decode concatenated columnar frames into coerced row dicts.

    The staging transport's bulk loads concatenate many task-attempt files
    into one COPY payload, so the decoder must read *every* frame.
    """
    from repro.hdfs.columnar import read_columnar_concat

    try:
        __, rows = read_columnar_concat(payload)
    except SchemaError as exc:
        raise SqlError(f"COPY: cannot decode columnar payload: {exc}") from exc
    good: List[Dict[str, Any]] = []
    bad: List[RejectedRow] = []
    columns = table.columns
    for values in rows:
        if len(values) != len(columns):
            bad.append(RejectedRow(values, f"expected {len(columns)} fields"))
            continue
        row: Dict[str, Any] = {}
        try:
            for column, value in zip(columns, values):
                row[column.name] = column.sql_type.coerce(value)
        except TypeMismatchError as exc:
            bad.append(RejectedRow(values, str(exc)))
            continue
        good.append(row)
    return good, bad


def run_copy(
    engine: "repro.vertica.engine.Engine",  # noqa: F821
    statement,
    txn,
    payload: Union[bytes, str, None],
) -> Tuple[Any, CopyResult]:
    """Execute a parsed COPY statement with its out-of-band payload.

    Returns ``(ResultSet, CopyResult)``.  Raises :class:`CopyRejectError`
    if rejections exceed REJECTMAX (default: zero tolerance).
    """
    from repro import telemetry
    from repro.vertica.engine import CostReport, ResultSet

    table = engine.database.catalog.table(statement.table)
    if payload is None:
        raise SqlError("COPY FROM STDIN requires a data payload")
    telemetry.counter("vertica.copy.statements").inc()
    telemetry.counter("vertica.copy.bytes").inc(
        len(payload) if isinstance(payload, (bytes, bytearray, str)) else 0
    )
    if statement.file_format == "AVRO":
        if not isinstance(payload, (bytes, bytearray)):
            raise SqlError("COPY FORMAT AVRO requires a bytes payload")
        good, bad = parse_avro_rows(table, bytes(payload))
    elif statement.file_format == "COLUMNAR":
        if not isinstance(payload, (bytes, bytearray)):
            raise SqlError("COPY FORMAT COLUMNAR requires a bytes payload")
        good, bad = parse_columnar_rows(table, bytes(payload))
    else:
        if isinstance(payload, (bytes, bytearray)):
            payload = bytes(payload).decode("utf-8")
        good, bad = parse_csv_rows(table, payload, statement.delimiter)

    limit = statement.reject_max if statement.reject_max is not None else 0
    telemetry.counter("vertica.copy.rows_rejected").inc(len(bad))
    if len(bad) > limit:
        raise CopyRejectError(len(bad), limit, bad[:REJECT_SAMPLE_SIZE])

    cost = CostReport()
    loaded = engine.insert_rows(table.name, good, txn, cost)
    telemetry.counter("vertica.copy.rows_loaded").inc(loaded)
    # Keep optimizer statistics roughly current as loads stream in; only
    # tables that have been ANALYZEd carry stats worth maintaining.
    from repro.vertica.stats import update_stats_for_load

    update_stats_for_load(engine.database, table.name, good)
    result = ResultSet(
        columns=["ROWS_LOADED"], rows=[(loaded,)], rowcount=loaded, cost=cost
    )
    return result, CopyResult(loaded, len(bad), bad[:REJECT_SAMPLE_SIZE])


class VerticaCopyStream:
    """Programmatic access to COPY, like the VerticaCopyStream Java API.

    Buffers one or more Avro containers (or CSV chunks) and executes a
    single COPY statement over them inside the session's transaction::

        stream = VerticaCopyStream(session, "staging", reject_max=10)
        stream.add_avro(container_bytes)
        result = stream.execute()
    """

    def __init__(
        self,
        session: "repro.vertica.session.Session",  # noqa: F821
        table: str,
        reject_max: Optional[int] = None,
        file_format: str = "AVRO",
    ):
        if file_format not in ("AVRO", "CSV"):
            raise SqlError(f"unsupported copy stream format {file_format!r}")
        self.session = session
        self.table = table
        self.reject_max = reject_max
        self.file_format = file_format
        self._avro_chunks: List[bytes] = []
        self._csv_chunks: List[str] = []
        self.result: Optional[CopyResult] = None

    def add_avro(self, payload: bytes) -> None:
        if self.file_format != "AVRO":
            raise SqlError("this stream is not in AVRO format")
        self._avro_chunks.append(bytes(payload))

    def add_csv(self, text: str) -> None:
        if self.file_format != "CSV":
            raise SqlError("this stream is not in CSV format")
        self._csv_chunks.append(text)

    def execute(self) -> CopyResult:
        """Run the buffered COPY; returns the cumulative result."""
        reject_clause = (
            f" REJECTMAX {self.reject_max}" if self.reject_max is not None else ""
        )
        sql = (
            f"COPY {self.table} FROM STDIN FORMAT {self.file_format}"
            f"{reject_clause} DIRECT"
        )
        total_loaded = 0
        total_rejected = 0
        sample: List[RejectedRow] = []
        chunks: Sequence[Union[bytes, str]]
        if self.file_format == "AVRO":
            chunks = self._avro_chunks
        else:
            chunks = self._csv_chunks
        if not chunks:
            raise SqlError("copy stream has no buffered data")
        for chunk in chunks:
            self.session.execute(sql, copy_data=chunk)
            copy_result = self.session.last_copy_result
            assert copy_result is not None
            total_loaded += copy_result.loaded
            total_rejected += copy_result.rejected
            sample.extend(copy_result.sample)
        self._avro_chunks = []
        self._csv_chunks = []
        self.result = CopyResult(
            total_loaded, total_rejected, sample[:REJECT_SAMPLE_SIZE]
        )
        return self.result
