"""The database facade: a whole Vertica cluster in one object.

``VerticaDatabase`` owns the catalog, per-node storage, the epoch/lock
managers, the UDx registry and the internal DFS, and exposes
``connect()`` returning JDBC-like :class:`~repro.vertica.session.Session`
objects bound to a specific node (connection-per-node is what lets the
connector balance load and exploit locality).

DDL statements (CREATE/DROP/ALTER/TRUNCATE) auto-commit, as in Vertica.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache import PlanCache, ResultCache
from repro.vertica.catalog import Catalog
from repro.vertica.dfs import DistributedFileSystem
from repro.vertica.engine import Engine
from repro.vertica.errors import CatalogError, ConnectionLimitError, SqlError
from repro.vertica.sql import ast_nodes as ast
from repro.vertica.txn import EpochManager, LockManager, Transaction
from repro.vertica.storage import NodeStorage
from repro.vertica.udx import UdxRegistry

#: the paper raised MAX-CLIENT-SESSIONS to 100 for its parallelism sweeps
DEFAULT_MAX_CLIENT_SESSIONS = 100


class VerticaDatabase:
    """An MPP cluster: nodes, catalog, storage, transactions."""

    def __init__(
        self,
        num_nodes: int = 4,
        node_names: Optional[List[str]] = None,
        k_safety: int = 0,
        max_client_sessions: int = DEFAULT_MAX_CLIENT_SESSIONS,
    ):
        if node_names is None:
            node_names = [f"node{i + 1:04d}" for i in range(num_nodes)]
        if not node_names:
            raise CatalogError("a cluster requires at least one node")
        if k_safety not in (0, 1):
            raise CatalogError(f"k-safety {k_safety} is not supported (0 or 1)")
        if k_safety == 1 and len(node_names) < 2:
            raise CatalogError("k-safety 1 requires at least two nodes")
        self.node_names = list(node_names)
        self.k_safety = k_safety
        self.max_client_sessions = max_client_sessions
        self.catalog = Catalog(self.node_names)
        self.storage: Dict[str, NodeStorage] = {
            name: NodeStorage(name) for name in self.node_names
        }
        self.epochs = EpochManager()
        self.locks = LockManager()
        self.engine = Engine(self)
        self.udx = UdxRegistry()
        self.dfs = DistributedFileSystem(self.node_names)
        self.node_states: Dict[str, str] = {name: "UP" for name in self.node_names}
        self._session_counts: Dict[str, int] = {name: 0 for name in self.node_names}
        #: join-strategy override (SET JOIN_STRATEGY): 'auto' lets the cost
        #: model pick; 'hash'/'merge'/'nested-loop' force one for debugging
        self.join_strategy = "auto"
        #: prepared-statement / optimized-plan cache (always on: keyed by
        #: canonical text + catalog version, so reuse is always exact)
        self.plan_cache = PlanCache()
        #: server-side result cache, keyed by (digest, epoch, catalog version)
        self.result_cache = ResultCache()
        #: default RESULT_CACHE setting new sessions start with; individual
        #: sessions override it via ``SET RESULT_CACHE = 'on'|'off'``
        self.result_cache_default = False
        #: cost-based join reordering (SET JOIN_REORDER): replace the
        #: binder's left-deep join order with a greedy cheapest-pair order
        self.join_reorder = False
        #: adaptive execution (SET ADAPTIVE_EXECUTION): join operators may
        #: replan mid-query from observed row counts, and executed queries
        #: feed estimated-vs-actual deltas back into ``stats_corrections``
        self.adaptive_execution = False
        #: per-table cardinality correction factors from the feedback loop
        from repro.vertica.stats.feedback import CorrectionStore

        self.stats_corrections = CorrectionStore()
        from repro.vertica.tuplemover import TupleMover

        self.tuple_mover = TupleMover(self)

    # -- topology ------------------------------------------------------------
    def buddy_of(self, node: str) -> str:
        """The node holding ``node``'s k-safety replicas (next on the ring)."""
        index = self.node_names.index(node)
        return self.node_names[(index + 1) % len(self.node_names)]

    def fail_node(self, node: str) -> None:
        if node not in self.node_states:
            raise CatalogError(f"unknown node {node!r}")
        self.node_states[node] = "DOWN"

    def recover_node(self, node: str) -> None:
        if node not in self.node_states:
            raise CatalogError(f"unknown node {node!r}")
        self.node_states[node] = "UP"

    # -- connections -----------------------------------------------------------
    def _accepting(self, node: str) -> bool:
        """True when ``node`` is UP with a free MAX-CLIENT-SESSIONS slot."""
        return (
            self.node_states[node] == "UP"
            and self._session_counts[node] < self.max_client_sessions
        )

    def connect(
        self,
        node: Optional[str] = None,
        failover: bool = False,
        resource_pool: Optional[str] = None,
    ) -> "Session":
        """Open a session bound to ``node`` (default: the first node).

        With ``failover=True`` a connection aimed at a node that cannot
        accept it — DOWN, or already at ``max_client_sessions`` — is
        transparently redirected to the first node that can, modelling
        client-side connection failover — what keeps driver metadata
        queries and retried tasks alive while chaos restarts a node, and
        what spreads tenants off a saturated node under serving load.

        ``resource_pool`` pre-selects the session's WLM pool (as if the
        first statement were ``SET RESOURCE_POOL``); it must exist in the
        catalog.
        """
        from repro import telemetry
        from repro.vertica.session import Session

        target = node or self.node_names[0]
        if target not in self.node_states:
            raise CatalogError(f"unknown node {target!r}")
        if failover and not self._accepting(target):
            for candidate in self.node_names:
                if self._accepting(candidate):
                    target = candidate
                    break
        if self.node_states[target] != "UP":
            raise CatalogError(f"node {target!r} is down")
        if self._session_counts[target] >= self.max_client_sessions:
            raise ConnectionLimitError(
                f"node {target!r} is at MAX-CLIENT-SESSIONS "
                f"({self.max_client_sessions})"
            )
        self._session_counts[target] += 1
        telemetry.gauge(f"db.sessions.active.{target}").set(
            self._session_counts[target]
        )
        session = Session(self, target)
        if resource_pool is not None:
            session.set_resource_pool(resource_pool)
        return session

    def _release_connection(self, node: str) -> None:
        if self._session_counts.get(node, 0) > 0:
            self._session_counts[node] -= 1
            from repro import telemetry

            telemetry.gauge(f"db.sessions.active.{node}").set(
                self._session_counts[node]
            )

    def session_count(self, node: str) -> int:
        return self._session_counts.get(node, 0)

    # -- resource pools ---------------------------------------------------------
    def create_resource_pool(self, pool, or_replace: bool = False):
        """Register a WLM :class:`~repro.wlm.pools.ResourcePool`.

        Sessions select it with ``SET RESOURCE_POOL = '<name>'`` (or the
        connector's ``resource_pool`` option); it is visible through
        ``V_CATALOG.RESOURCE_POOLS``.
        """
        return self.catalog.create_resource_pool(pool, or_replace=or_replace)

    def begin(self) -> Transaction:
        return Transaction(self.epochs, self.locks)

    # -- DDL (auto-committing) ----------------------------------------------------
    def execute_ddl(self, statement) -> int:
        """Apply one DDL statement immediately; returns affected count."""
        if isinstance(statement, ast.CreateTable):
            created = self.catalog.create_table(
                statement.table,
                statement.columns,
                segmented_by=statement.segmented_by,
                unsegmented=statement.unsegmented,
                if_not_exists=statement.if_not_exists,
            )
            return 1 if created else 0
        if isinstance(statement, ast.DropTable):
            self._check_unlocked(statement.table)
            dropped = self.catalog.drop_table(statement.table, statement.if_exists)
            if dropped:
                for storage in self.storage.values():
                    storage.drop_table(statement.table.upper())
            return 1 if dropped else 0
        if isinstance(statement, ast.RenameTable):
            self._check_unlocked(statement.table)
            self._check_unlocked(statement.new_name)
            self.catalog.rename_table(statement.table, statement.new_name)
            for storage in self.storage.values():
                storage.rename_table(
                    statement.table.upper(), statement.new_name.upper()
                )
            return 1
        if isinstance(statement, ast.TruncateTable):
            self._check_unlocked(statement.table)
            table = self.catalog.table(statement.table)
            for storage in self.storage.values():
                storage.drop_table(table.name)
            # TRUNCATE discards rows without advancing an epoch, so the
            # epoch-keyed caches only stay exact through a version bump.
            self.catalog.bump_version()
            return 1
        if isinstance(statement, ast.CreateView):
            self.catalog.create_view(
                statement.view, statement.query, or_replace=statement.or_replace
            )
            return 1
        if isinstance(statement, ast.DropView):
            dropped = self.catalog.drop_view(statement.view, statement.if_exists)
            return 1 if dropped else 0
        raise SqlError(f"not a DDL statement: {type(statement).__name__}")

    def _check_unlocked(self, table: str) -> None:
        holder = self.locks.holder(table.upper())
        if holder is not None:
            from repro.vertica.errors import LockContention

            raise LockContention(table.upper(), holder, -1)

    # -- convenience -----------------------------------------------------------------
    def table_row_count(self, table: str) -> int:
        """Committed live row count (one logical copy) at the latest epoch."""
        table_def = self.catalog.table(table)
        epoch = self.epochs.current
        if table_def.unsegmented:
            first = self.storage[self.node_names[0]]
            return first.live_row_count(table_def.name, epoch)
        return sum(
            self.storage[node].live_row_count(table_def.name, epoch)
            for node in self.node_names
        )
