"""Vertica's internal distributed file system.

The paper stores PMML models "in an internal distributed file system (DFS)
and hence ... accessible to the database query engine and User-Defined
Functions" (§3.3).  This module provides that store: whole files keyed by
path, placed on a node chosen by hashing the path, and readable from any
node (a read from a non-owning node counts as an internal transfer, which
the cost model can charge).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Sequence

from repro.vertica.errors import CatalogError
from repro.vertica.hashring import vertica_hash


class DfsFile(NamedTuple):
    path: str
    data: bytes
    node: str


class DistributedFileSystem:
    """A path → bytes store spread over the cluster's nodes."""

    def __init__(self, node_names: Sequence[str]):
        if not node_names:
            raise CatalogError("DFS requires at least one node")
        self.node_names = list(node_names)
        self._files: Dict[str, DfsFile] = {}

    def _node_for(self, path: str) -> str:
        return self.node_names[vertica_hash(path) % len(self.node_names)]

    def write(self, path: str, data: bytes, overwrite: bool = False) -> DfsFile:
        if not path or path.endswith("/"):
            raise CatalogError(f"invalid DFS path {path!r}")
        if path in self._files and not overwrite:
            raise CatalogError(f"DFS file {path!r} already exists")
        entry = DfsFile(path, bytes(data), self._node_for(path))
        self._files[path] = entry
        return entry

    def read(self, path: str) -> bytes:
        return self._entry(path).data

    def owner_node(self, path: str) -> str:
        return self._entry(path).node

    def _entry(self, path: str) -> DfsFile:
        try:
            return self._files[path]
        except KeyError:
            raise CatalogError(f"DFS file {path!r} does not exist") from None

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> None:
        if path not in self._files:
            raise CatalogError(f"DFS file {path!r} does not exist")
        del self._files[path]

    def list(self, prefix: str = "") -> List[str]:
        return sorted(p for p in self._files if p.startswith(prefix))

    def size(self, path: str) -> int:
        return len(self._entry(path).data)
