"""Statement execution: scans, DML, queries, and cost accounting.

Every executed statement returns a :class:`ResultSet` whose
:class:`CostReport` records how many rows were scanned on which node and
how many output bytes each node produced.  The simulation bridge uses that
locality information to decide which bytes cross the Vertica-internal
network (shuffle) versus flow straight out to the client — the effect at
the heart of the paper's locality-aware V2S design.

Notable behaviours:

- **Segment pruning** — a WHERE clause containing ``HASH(seg_cols) >= lo
  AND HASH(seg_cols) < hi`` conjuncts is recognised and nodes whose
  segment does not intersect ``[lo, hi)`` are skipped entirely, so a
  hash-range query touches exactly one node's storage.
- **Epoch snapshots** — ``AT EPOCH n SELECT ...`` reads the table as of
  epoch ``n``; otherwise a transaction's first read pins its snapshot.
- **Unsegmented tables** are replicated on every node; queries read the
  initiator node's copy (zero shuffle), DML touches every copy.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.vertica.errors import CatalogError, SqlError
from repro.vertica.expr import (
    Between,
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
)
from repro.vertica.hashring import HASH_SPACE
from repro.vertica.sql import ast_nodes as ast
from repro.vertica.storage import RosContainer
from repro.vertica.txn import Transaction


class CostReport:
    """Rows/bytes touched by a statement, attributed to storage nodes."""

    def __init__(self) -> None:
        self.rows_scanned = 0
        self.rows_output = 0
        self.bytes_output = 0.0
        self.node_rows_scanned: Dict[str, int] = {}
        self.node_output_bytes: Dict[str, float] = {}
        self.node_rows_output: Dict[str, int] = {}
        self.rows_written = 0
        self.node_rows_written: Dict[str, int] = {}
        self.rows_aggregated = 0
        self.node_rows_aggregated: Dict[str, int] = {}
        #: seconds spent queued in WLM admission before execution began
        self.queue_wait_seconds = 0.0
        #: name of the resource pool the statement executed in (None when
        #: the cluster runs without WLM admission)
        self.resource_pool: Optional[str] = None
        #: True when the result cache served this statement.  The other
        #: fields are replayed from the memoised execution, so a hit's
        #: report is byte-identical to its cold replay modulo this flag —
        #: the JDBC bridge uses it to skip scan/aggregate CPU charges.
        self.cache_hit = False

    def scanned(self, node: str, rows: int = 1) -> None:
        self.rows_scanned += rows
        self.node_rows_scanned[node] = self.node_rows_scanned.get(node, 0) + rows

    def aggregated(self, node: str, rows: int = 1) -> None:
        """Rows consumed by a GROUP BY/aggregate, on their producing node."""
        self.rows_aggregated += rows
        self.node_rows_aggregated[node] = (
            self.node_rows_aggregated.get(node, 0) + rows
        )

    def output(self, node: str, nbytes: float, rows: int = 1) -> None:
        self.rows_output += rows
        self.bytes_output += nbytes
        self.node_output_bytes[node] = self.node_output_bytes.get(node, 0.0) + nbytes
        self.node_rows_output[node] = self.node_rows_output.get(node, 0) + rows

    def wrote(self, node: str, rows: int = 1) -> None:
        self.rows_written += rows
        self.node_rows_written[node] = self.node_rows_written.get(node, 0) + rows

    def merge(self, other: "CostReport") -> None:
        self.cache_hit = self.cache_hit or other.cache_hit
        self.rows_scanned += other.rows_scanned
        self.rows_output += other.rows_output
        self.bytes_output += other.bytes_output
        self.rows_written += other.rows_written
        self.rows_aggregated += other.rows_aggregated
        self.queue_wait_seconds += other.queue_wait_seconds
        if other.resource_pool is not None:
            self.resource_pool = other.resource_pool
        for node, rows in other.node_rows_aggregated.items():
            self.node_rows_aggregated[node] = (
                self.node_rows_aggregated.get(node, 0) + rows
            )
        for node, rows in other.node_rows_scanned.items():
            self.node_rows_scanned[node] = self.node_rows_scanned.get(node, 0) + rows
        for node, nbytes in other.node_output_bytes.items():
            self.node_output_bytes[node] = (
                self.node_output_bytes.get(node, 0.0) + nbytes
            )
        for node, rows in other.node_rows_output.items():
            self.node_rows_output[node] = self.node_rows_output.get(node, 0) + rows
        for node, rows in other.node_rows_written.items():
            self.node_rows_written[node] = self.node_rows_written.get(node, 0) + rows


class ResultSet:
    """Columns + rows + affected-row count + cost of one statement."""

    #: set by ``PROFILE <query>``: the PlanProfile with per-operator stats
    profile = None
    #: set by ``PROFILE <query>``: the profiled query's own ResultSet
    query_result = None
    #: set by SELECT execution: the snapshot epoch the rows were read at
    #: (what the chaos stale-read checker replays against)
    snapshot_epoch = None

    def __init__(
        self,
        columns: Optional[List[str]] = None,
        rows: Optional[List[Tuple[Any, ...]]] = None,
        rowcount: int = 0,
        cost: Optional[CostReport] = None,
    ):
        self.columns = columns or []
        self.rows = rows or []
        self.rowcount = rowcount if rowcount else len(self.rows)
        self.cost = cost or CostReport()

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result.

        Raises :class:`~repro.vertica.errors.SqlError` (a
        :class:`~repro.vertica.errors.VerticaError`) when the result is
        empty or not exactly one row by one column — never a bare
        ``IndexError``.
        """
        if not self.rows:
            raise SqlError(
                "scalar() on an empty result "
                "(expected exactly one row with one column)"
            )
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise SqlError(
                f"scalar() on a {len(self.rows)}x{len(self.rows[0])} result "
                "(expected exactly one row with one column)"
            )
        return self.rows[0][0]

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __repr__(self) -> str:
        return f"ResultSet({self.columns}, {len(self.rows)} rows)"


class HashRange:
    """An extracted ``[lo, hi)`` restriction on the segmentation hash."""

    def __init__(self, lo: int = 0, hi: int = HASH_SPACE):
        self.lo = lo
        self.hi = hi

    def intersects(self, lo: int, hi: int) -> bool:
        return self.lo < hi and lo < self.hi

    @property
    def is_full(self) -> bool:
        return self.lo <= 0 and self.hi >= HASH_SPACE


def _value_bytes(value: Any) -> int:
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    return 8


def extract_hash_range(
    where: Optional[Expression], segmentation_columns: Sequence[str]
) -> HashRange:
    """Find hash-range bounds over the segmentation columns in ``where``.

    Only top-level AND conjuncts are considered (a disjunction cannot be
    pruned safely).  Recognises ``HASH(cols) <op> literal`` in either
    orientation and ``HASH(cols) BETWEEN a AND b``.
    """
    hash_range = HashRange()
    if where is None or not segmentation_columns:
        return hash_range
    for conjunct in _conjuncts(where):
        _tighten(conjunct, list(segmentation_columns), hash_range)
    return hash_range


def _conjuncts(expression: Expression) -> Iterator[Expression]:
    if isinstance(expression, BinaryOp) and expression.op == "AND":
        yield from _conjuncts(expression.left)
        yield from _conjuncts(expression.right)
    else:
        yield expression


def _is_seg_hash(expression: Expression, seg_cols: List[str]) -> bool:
    return (
        isinstance(expression, FunctionCall)
        and expression.name == "HASH"
        and all(isinstance(a, ColumnRef) for a in expression.args)
        and [a.name for a in expression.args] == seg_cols
    )


def _tighten(conjunct: Expression, seg_cols: List[str], hash_range: HashRange) -> None:
    if isinstance(conjunct, Between) and _is_seg_hash(conjunct.operand, seg_cols):
        if isinstance(conjunct.low, Literal) and isinstance(conjunct.low.value, int):
            hash_range.lo = max(hash_range.lo, conjunct.low.value)
        if isinstance(conjunct.high, Literal) and isinstance(conjunct.high.value, int):
            hash_range.hi = min(hash_range.hi, conjunct.high.value + 1)
        return
    if not isinstance(conjunct, BinaryOp):
        return
    op = conjunct.op
    left, right = conjunct.left, conjunct.right
    if _is_seg_hash(left, seg_cols) and isinstance(right, Literal):
        bound = right.value
    elif _is_seg_hash(right, seg_cols) and isinstance(left, Literal):
        bound = left.value
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        left = right
    else:
        return
    if not isinstance(bound, int):
        return
    if op == ">=":
        hash_range.lo = max(hash_range.lo, bound)
    elif op == ">":
        hash_range.lo = max(hash_range.lo, bound + 1)
    elif op == "<":
        hash_range.hi = min(hash_range.hi, bound)
    elif op == "<=":
        hash_range.hi = min(hash_range.hi, bound + 1)
    elif op == "=":
        hash_range.lo = max(hash_range.lo, bound)
        hash_range.hi = min(hash_range.hi, bound + 1)


class ScanRow:
    """One visible row with its physical location (for DML staging)."""

    __slots__ = ("node", "data", "container", "row_index")

    def __init__(
        self,
        node: str,
        data: Dict[str, Any],
        container: Optional[RosContainer] = None,
        row_index: int = -1,
    ):
        self.node = node
        self.data = data
        self.container = container
        self.row_index = row_index


class Engine:
    """Executes parsed statements against a database's storage."""

    def __init__(self,
                 database: "repro.vertica.database.VerticaDatabase"):  # noqa: F821
        self.database = database

    # ---------------------------------------------------------------- dispatch
    def execute(
        self,
        statement,
        txn: Transaction,
        initiator: str,
        copy_data=None,
        resource_pool: Optional[str] = None,
        use_result_cache: bool = False,
    ) -> Tuple[ResultSet, Optional[Any]]:
        """Run one parsed DML/query statement; returns (result, copy_result).

        The single entry point the session layer dispatches through, so
        every statement's :class:`CostReport` is stamped with the resource
        pool it ran in (``copy_result`` is non-None only for COPY).
        ``use_result_cache`` carries the session's RESULT_CACHE setting;
        only top-level SELECT/EXPLAIN/PROFILE consult the cache (never the
        inner query of INSERT ... SELECT, which must see staged writes).
        """
        copy_result = None
        if isinstance(statement, ast.Select):
            result = self.select(statement, txn, initiator, use_cache=use_result_cache)
        elif isinstance(statement, ast.Explain):
            result = self.explain(statement, txn, initiator, use_cache=use_result_cache)
        elif isinstance(statement, ast.Profile):
            result = self.profile(statement, txn, initiator, use_cache=use_result_cache)
        elif isinstance(statement, ast.InsertValues):
            result = self.insert_values(statement, txn, initiator)
        elif isinstance(statement, ast.InsertSelect):
            result = self.insert_select(statement, txn, initiator)
        elif isinstance(statement, ast.Update):
            result = self.update(statement, txn, initiator)
        elif isinstance(statement, ast.Delete):
            result = self.delete(statement, txn, initiator)
        elif isinstance(statement, ast.Analyze):
            result = self.analyze(statement)
        elif isinstance(statement, ast.CopyStatement):
            from repro.vertica.copyload import run_copy

            result, copy_result = run_copy(self, statement, txn, copy_data)
        else:
            raise SqlError(f"unhandled statement {type(statement).__name__}")
        result.cost.resource_pool = resource_pool
        return result, copy_result

    # ------------------------------------------------------------------ scans
    def scan(
        self,
        table_name: str,
        snapshot_epoch: int,
        txn: Optional[Transaction],
        initiator: str,
        hash_range: Optional[HashRange] = None,
        cost: Optional[CostReport] = None,
        for_update: bool = False,
    ) -> Iterator[ScanRow]:
        """Yield visible rows of a table at a snapshot.

        ``for_update`` scans every physical copy (so DML can touch each
        replica of an unsegmented table); plain reads scan the initiator's
        copy of unsegmented tables and all (pruned) segments of segmented
        tables.
        """
        db = self.database
        table = db.catalog.table(table_name)
        hash_range = hash_range or HashRange()
        if table.unsegmented:
            nodes = db.node_names if for_update else [initiator]
        else:
            nodes = []
            assert table.ring is not None
            for segment in table.ring.segments:
                if hash_range.intersects(segment.lo, segment.hi):
                    nodes.append(segment.node)
        for node in nodes:
            storage, attributed = self._storage_for(node, table_name)
            for container in storage:
                for row_index in container.live_rows(snapshot_epoch):
                    if txn is not None and txn.is_deleted_by_self(container, row_index):
                        continue
                    if cost is not None:
                        cost.scanned(attributed)
                    row_hash = container.row_hashes[row_index]
                    if not table.unsegmented and not (
                        hash_range.lo <= row_hash < hash_range.hi
                    ):
                        continue
                    yield ScanRow(attributed, container.row(row_index),
                                  container, row_index)
        # Read-your-writes: rows staged by this transaction.
        if txn is not None:
            pending_nodes = set(nodes)
            for (wos_table, node), buffer in list(txn.wos.items()):
                if wos_table != table.name or node not in pending_nodes:
                    continue
                for index, row in enumerate(buffer.rows):
                    if cost is not None:
                        cost.scanned(node)
                    row_hash = buffer.row_hashes[index]
                    if not table.unsegmented and not (
                        hash_range.lo <= row_hash < hash_range.hi
                    ):
                        continue
                    yield ScanRow(node, dict(zip(buffer.column_names, row)))

    def _storage_for(self, node: str, table_name: str):
        """Containers for ``table_name`` on ``node``, with failover.

        When the node is down and k-safety >= 1, the buddy node serves its
        replica containers; scanned rows are attributed to the buddy.
        """
        db = self.database
        key = table_name.upper()
        if db.node_states.get(node, "UP") == "UP":
            return db.storage[node].table_containers(key), node
        if db.k_safety >= 1:
            buddy = db.buddy_of(node)
            if db.node_states.get(buddy, "UP") == "UP":
                return db.storage[buddy].replica_containers(key), buddy
        raise CatalogError(
            f"node {node!r} is down and no replica is available (k-safety "
            f"{db.k_safety})"
        )

    # ------------------------------------------------------------------- SELECT
    def select(
        self,
        statement: ast.Select,
        txn: Transaction,
        initiator: str,
        cost: Optional[CostReport] = None,
        use_cache: bool = False,
    ) -> ResultSet:
        """Run one SELECT through the bind → optimize → execute pipeline."""
        return self._run_select(statement, txn, initiator, cost, use_cache)[0]

    def _cache_bypass_reason(
        self, txn: Transaction, canonical: str
    ) -> Optional[str]:
        """Why this SELECT must not touch the result cache (None = cacheable).

        Read-your-writes makes staged transaction state part of the
        query's input but not of its epoch; system tables change without
        epochs (node states, pool occupancy); UDx calls are opaque.
        """
        if txn.wos or txn.replica_wos or txn.deletes:
            return "txn_writes"
        if "V_CATALOG" in canonical or "V_MONITOR" in canonical:
            return "system_table"
        udx_names = self.database.udx.names()
        if udx_names:
            tokens = set(canonical.split(" "))
            if any(name in tokens for name in udx_names):
                return "udx"
        return None

    def _run_select(
        self,
        statement: ast.Select,
        txn: Transaction,
        initiator: str,
        cost: Optional[CostReport] = None,
        use_cache: bool = False,
    ):
        """Shared SELECT entry: returns (ResultSet, PipelineExecution).

        With ``use_cache`` the result cache is consulted under
        (canonical statement, snapshot epoch, catalog version); a hit
        replays the memoised rows and cost attribution without running
        any operator (the returned execution is ``None``).
        """
        cost = cost if cost is not None else CostReport()
        telemetry.counter("vertica.queries.select").inc()
        if statement.at_epoch is not None:
            telemetry.counter("vertica.epoch_reads").inc()
        if (
            statement.at_epoch is not None
            and statement.at_epoch < self.database.tuple_mover.ahm_epoch
        ):
            from repro.vertica.errors import TransactionError

            raise TransactionError(
                f"epoch {statement.at_epoch} is below the Ancient History "
                f"Mark ({self.database.tuple_mover.ahm_epoch}); its history "
                "has been merged out"
            )
        snapshot = txn.snapshot_epoch(statement.at_epoch)

        db = self.database
        cache = db.result_cache
        canonical = getattr(statement, "cache_key", None)
        cacheable = use_cache and canonical is not None
        if cacheable:
            reason = self._cache_bypass_reason(txn, canonical)
            if reason is not None:
                cache.bypass(reason)
                cacheable = False
        if cacheable:
            from repro.cache.result import replay_cost

            entry = cache.lookup(canonical, snapshot, db.catalog.version)
            if entry is not None:
                replay_cost(entry.cost_snapshot, cost)
                cost.cache_hit = True
                result = ResultSet(
                    list(entry.columns), list(entry.rows), cost=cost
                )
                result.snapshot_epoch = snapshot
                return result, None

        # Imported lazily: plan modules import this module at their top.
        from repro.vertica.plan import execute_select

        result, execution = execute_select(
            self, statement, txn, initiator, snapshot, cost
        )
        result.snapshot_epoch = snapshot
        if cacheable:
            cache.store(
                canonical,
                snapshot,
                db.catalog.version,
                result.columns,
                result.rows,
                cost,
            )
        return result, execution

    def explain(
        self,
        statement: ast.Explain,
        txn: Transaction,
        initiator: str,
        use_cache: bool = False,
    ) -> ResultSet:
        """Render the optimized plan: access path, pruning, pushdowns.

        Binds and optimizes through the real pipeline but executes
        nothing (row estimates come from storage metadata only).  When
        the session has RESULT_CACHE on, a trailing line reports whether
        the query would be served from the result cache at the current
        snapshot (the probe neither stores nor touches LRU order).
        """
        from repro.vertica.plan import explain_lines

        lines = explain_lines(self, statement.query, initiator)
        canonical = getattr(statement.query, "cache_key", None)
        if use_cache and canonical is not None:
            from repro.cache.keys import statement_digest

            db = self.database
            query = statement.query
            probe_epoch = (
                query.at_epoch if query.at_epoch is not None else db.epochs.current
            )
            held = (canonical, probe_epoch, db.catalog.version) in db.result_cache
            lines.append(
                f"RESULT CACHE: {'hit' if held else 'miss'} "
                f"(digest {statement_digest(canonical)}, epoch {probe_epoch})"
            )
        return ResultSet(["QUERY_PLAN"], [(line,) for line in lines])

    def profile(
        self,
        statement: ast.Profile,
        txn: Transaction,
        initiator: str,
        use_cache: bool = False,
    ) -> ResultSet:
        """Execute the query and report per-operator execution stats.

        The report rows are the rendered profile; the profiled query's
        own result hangs off ``query_result`` and the structured stats
        off ``profile``.  The report carries the real query's
        CostReport, so WLM accounting charges PROFILE like the query it
        ran.  A result-cache hit has no operator tree: the report then
        shows the hit and the replayed cost summary (``profile`` stays
        ``None``).
        """
        from repro.vertica.plan.pipeline import PlanProfile

        telemetry.counter("vertica.queries.profile").inc()
        result, execution = self._run_select(
            statement.query, txn, initiator, use_cache=use_cache
        )
        if execution is None:
            cost = result.cost
            lines = [
                f"RESULT CACHE: hit (epoch {result.snapshot_epoch})",
                "COST: "
                f"rows scanned: {cost.rows_scanned}, "
                f"rows aggregated: {cost.rows_aggregated}, "
                f"rows output: {cost.rows_output}, "
                f"bytes output: {int(cost.bytes_output)}",
            ]
            report = ResultSet(["PROFILE"], [(line,) for line in lines], cost=cost)
            report.query_result = result
            return report
        prof = PlanProfile(execution, result)
        report = ResultSet(
            ["PROFILE"], [(line,) for line in prof.lines()], cost=result.cost
        )
        report.profile = prof
        report.query_result = result
        return report

    def analyze(self, statement: ast.Analyze) -> ResultSet:
        """Collect optimizer statistics for one table (``ANALYZE <table>``).

        Scans the committed data at the current epoch, rebuilds row/NDV/
        min-max/histogram statistics, and persists them in the catalog
        (visible through ``V_CATALOG.COLUMN_STATISTICS``).
        """
        from repro.vertica.stats import DEFAULT_BUCKETS, collect_table_stats

        db = self.database
        table = db.catalog.table(statement.table)
        buckets = (statement.buckets if statement.buckets is not None
                   else DEFAULT_BUCKETS)
        if buckets <= 0:
            raise SqlError(f"ANALYZE bucket count must be positive, got {buckets}")
        stats = collect_table_stats(db, table.name, buckets)
        db.catalog.statistics[table.name] = stats
        # Fresh statistics supersede any feedback correction accumulated
        # against the stale ones.
        corrections = getattr(db, "stats_corrections", None)
        if corrections is not None:
            corrections.forget(table.name)
        # New statistics change plan choice without advancing an epoch:
        # bump the catalog version so plan/result caches re-key.
        db.catalog.bump_version()
        telemetry.counter("vertica.queries.analyze").inc()
        return ResultSet(
            ["TABLE_NAME", "ROW_COUNT", "COLUMNS_ANALYZED"],
            [(table.name, stats.row_count, len(stats.columns))],
        )

    # ------------------------------------------------------------------- DML
    def insert_rows(
        self,
        table_name: str,
        rows: List[Dict[str, Any]],
        txn: Transaction,
        cost: Optional[CostReport] = None,
    ) -> int:
        """Stage coerced rows into the transaction's WOS, routed by segment."""
        db = self.database
        table = db.catalog.table(table_name)
        txn.lock(table.name, mode="I")
        cost = cost if cost is not None else CostReport()
        column_names = table.column_names()
        for row in rows:
            coerced = {}
            for column_def in table.columns:
                value = row.get(column_def.name)
                coerced[column_def.name] = column_def.sql_type.coerce(value)
            ordered = [coerced[c] for c in column_names]
            if table.unsegmented:
                for node in db.node_names:
                    txn.wos_for(table.name, node, column_names).append(ordered, 0)
                cost.wrote(db.node_names[0])
            else:
                row_hash = table.row_hash(coerced)
                assert table.ring is not None
                node = table.ring.node_for(row_hash)
                txn.wos_for(table.name, node, column_names).append(ordered, row_hash)
                cost.wrote(node)
                if db.k_safety >= 1:
                    buddy = db.buddy_of(node)
                    txn.replica_wos_for(table.name, buddy, column_names).append(
                        ordered, row_hash
                    )
        return len(rows)

    def insert_values(
        self, statement: ast.InsertValues, txn: Transaction, initiator: str
    ) -> ResultSet:
        table = self.database.catalog.table(statement.table)
        target_columns = (
            [c.upper() for c in statement.columns]
            if statement.columns
            else table.column_names()
        )
        telemetry.counter("vertica.queries.insert").inc()
        rows = []
        for value_exprs in statement.rows:
            if len(value_exprs) != len(target_columns):
                raise SqlError(
                    f"INSERT has {len(value_exprs)} values for "
                    f"{len(target_columns)} columns"
                )
            values = [e.evaluate({}) for e in value_exprs]
            rows.append(dict(zip(target_columns, values)))
        cost = CostReport()
        count = self.insert_rows(table.name, rows, txn, cost)
        return ResultSet(rowcount=count, cost=cost)

    def insert_select(
        self, statement: ast.InsertSelect, txn: Transaction, initiator: str
    ) -> ResultSet:
        table = self.database.catalog.table(statement.table)
        telemetry.counter("vertica.queries.insert").inc()
        cost = CostReport()
        result = self.select(statement.query, txn, initiator, cost=cost)
        target_columns = (
            [c.upper() for c in statement.columns]
            if statement.columns
            else table.column_names()
        )
        if result.columns and len(result.columns) != len(target_columns):
            raise SqlError(
                f"INSERT SELECT arity mismatch: query yields "
                f"{len(result.columns)} columns for {len(target_columns)}"
            )
        rows = [dict(zip(target_columns, row)) for row in result.rows]
        count = self.insert_rows(table.name, rows, txn, cost)
        return ResultSet(rowcount=count, cost=cost)

    def update(
        self, statement: ast.Update, txn: Transaction, initiator: str
    ) -> ResultSet:
        db = self.database
        table = db.catalog.table(statement.table)
        txn.lock(table.name)
        telemetry.counter("vertica.queries.update").inc()
        cost = CostReport()
        snapshot = db.epochs.current
        assignments = [(c.upper(), e) for c, e in statement.assignments]
        for column, __ in assignments:
            if not table.has_column(column):
                raise SqlError(f"table {table.name!r} has no column {column!r}")
        from repro.vertica.plan import dml_matching_rows

        matched: List[Dict[str, Any]] = []
        seen_keys = set()
        for scan_row in dml_matching_rows(
            self, table.name, statement.where, txn, initiator, snapshot, cost
        ):
            if scan_row.container is not None:
                txn.stage_delete(scan_row.container, scan_row.row_index)
            if table.unsegmented:
                # Replicated copies: update counts once per logical row.
                key = tuple(sorted(scan_row.data.items()))
                if key in seen_keys:
                    continue
                seen_keys.add(key)
            updated = dict(scan_row.data)
            for column, expression in assignments:
                updated[column] = expression.evaluate(scan_row.data)
            matched.append(updated)
        if matched:
            self.insert_rows(table.name, matched, txn, cost)
        return ResultSet(rowcount=len(matched), cost=cost)

    def delete(
        self, statement: ast.Delete, txn: Transaction, initiator: str
    ) -> ResultSet:
        db = self.database
        table = db.catalog.table(statement.table)
        txn.lock(table.name)
        telemetry.counter("vertica.queries.delete").inc()
        cost = CostReport()
        snapshot = db.epochs.current
        from repro.vertica.plan import dml_matching_rows

        count = 0
        seen_keys = set()
        for scan_row in dml_matching_rows(
            self, table.name, statement.where, txn, initiator, snapshot, cost
        ):
            if scan_row.container is not None:
                txn.stage_delete(scan_row.container, scan_row.row_index)
            if table.unsegmented:
                key = tuple(sorted(scan_row.data.items()))
                if key in seen_keys:
                    continue
                seen_keys.add(key)
            count += 1
        return ResultSet(rowcount=count, cost=cost)
