"""Statement execution: scans, DML, queries, and cost accounting.

Every executed statement returns a :class:`ResultSet` whose
:class:`CostReport` records how many rows were scanned on which node and
how many output bytes each node produced.  The simulation bridge uses that
locality information to decide which bytes cross the Vertica-internal
network (shuffle) versus flow straight out to the client — the effect at
the heart of the paper's locality-aware V2S design.

Notable behaviours:

- **Segment pruning** — a WHERE clause containing ``HASH(seg_cols) >= lo
  AND HASH(seg_cols) < hi`` conjuncts is recognised and nodes whose
  segment does not intersect ``[lo, hi)`` are skipped entirely, so a
  hash-range query touches exactly one node's storage.
- **Epoch snapshots** — ``AT EPOCH n SELECT ...`` reads the table as of
  epoch ``n``; otherwise a transaction's first read pins its snapshot.
- **Unsegmented tables** are replicated on every node; queries read the
  initiator node's copy (zero shuffle), DML touches every copy.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.vertica.errors import CatalogError, SqlError
from repro.vertica.expr import (
    Between,
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
    predicate_holds,
)
from repro.vertica.hashring import HASH_SPACE
from repro.vertica.sql import ast_nodes as ast
from repro.vertica.storage import RosContainer
from repro.vertica.txn import Transaction


class CostReport:
    """Rows/bytes touched by a statement, attributed to storage nodes."""

    def __init__(self) -> None:
        self.rows_scanned = 0
        self.rows_output = 0
        self.bytes_output = 0.0
        self.node_rows_scanned: Dict[str, int] = {}
        self.node_output_bytes: Dict[str, float] = {}
        self.node_rows_output: Dict[str, int] = {}
        self.rows_written = 0
        self.node_rows_written: Dict[str, int] = {}
        self.rows_aggregated = 0
        self.node_rows_aggregated: Dict[str, int] = {}
        #: seconds spent queued in WLM admission before execution began
        self.queue_wait_seconds = 0.0
        #: name of the resource pool the statement executed in (None when
        #: the cluster runs without WLM admission)
        self.resource_pool: Optional[str] = None

    def scanned(self, node: str, rows: int = 1) -> None:
        self.rows_scanned += rows
        self.node_rows_scanned[node] = self.node_rows_scanned.get(node, 0) + rows

    def aggregated(self, node: str, rows: int = 1) -> None:
        """Rows consumed by a GROUP BY/aggregate, on their producing node."""
        self.rows_aggregated += rows
        self.node_rows_aggregated[node] = (
            self.node_rows_aggregated.get(node, 0) + rows
        )

    def output(self, node: str, nbytes: float, rows: int = 1) -> None:
        self.rows_output += rows
        self.bytes_output += nbytes
        self.node_output_bytes[node] = self.node_output_bytes.get(node, 0.0) + nbytes
        self.node_rows_output[node] = self.node_rows_output.get(node, 0) + rows

    def wrote(self, node: str, rows: int = 1) -> None:
        self.rows_written += rows
        self.node_rows_written[node] = self.node_rows_written.get(node, 0) + rows

    def merge(self, other: "CostReport") -> None:
        self.rows_scanned += other.rows_scanned
        self.rows_output += other.rows_output
        self.bytes_output += other.bytes_output
        self.rows_written += other.rows_written
        self.rows_aggregated += other.rows_aggregated
        self.queue_wait_seconds += other.queue_wait_seconds
        if other.resource_pool is not None:
            self.resource_pool = other.resource_pool
        for node, rows in other.node_rows_aggregated.items():
            self.node_rows_aggregated[node] = (
                self.node_rows_aggregated.get(node, 0) + rows
            )
        for node, rows in other.node_rows_scanned.items():
            self.node_rows_scanned[node] = self.node_rows_scanned.get(node, 0) + rows
        for node, nbytes in other.node_output_bytes.items():
            self.node_output_bytes[node] = (
                self.node_output_bytes.get(node, 0.0) + nbytes
            )
        for node, rows in other.node_rows_output.items():
            self.node_rows_output[node] = self.node_rows_output.get(node, 0) + rows
        for node, rows in other.node_rows_written.items():
            self.node_rows_written[node] = self.node_rows_written.get(node, 0) + rows


class ResultSet:
    """Columns + rows + affected-row count + cost of one statement."""

    def __init__(
        self,
        columns: Optional[List[str]] = None,
        rows: Optional[List[Tuple[Any, ...]]] = None,
        rowcount: int = 0,
        cost: Optional[CostReport] = None,
    ):
        self.columns = columns or []
        self.rows = rows or []
        self.rowcount = rowcount if rowcount else len(self.rows)
        self.cost = cost or CostReport()

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise SqlError(
                f"scalar() on a {len(self.rows)}x"
                f"{len(self.rows[0]) if self.rows else 0} result"
            )
        return self.rows[0][0]

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __repr__(self) -> str:
        return f"ResultSet({self.columns}, {len(self.rows)} rows)"


class HashRange:
    """An extracted ``[lo, hi)`` restriction on the segmentation hash."""

    def __init__(self, lo: int = 0, hi: int = HASH_SPACE):
        self.lo = lo
        self.hi = hi

    def intersects(self, lo: int, hi: int) -> bool:
        return self.lo < hi and lo < self.hi

    @property
    def is_full(self) -> bool:
        return self.lo <= 0 and self.hi >= HASH_SPACE


def _value_bytes(value: Any) -> int:
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    return 8


def extract_hash_range(
    where: Optional[Expression], segmentation_columns: Sequence[str]
) -> HashRange:
    """Find hash-range bounds over the segmentation columns in ``where``.

    Only top-level AND conjuncts are considered (a disjunction cannot be
    pruned safely).  Recognises ``HASH(cols) <op> literal`` in either
    orientation and ``HASH(cols) BETWEEN a AND b``.
    """
    hash_range = HashRange()
    if where is None or not segmentation_columns:
        return hash_range
    for conjunct in _conjuncts(where):
        _tighten(conjunct, list(segmentation_columns), hash_range)
    return hash_range


def _conjuncts(expression: Expression) -> Iterator[Expression]:
    if isinstance(expression, BinaryOp) and expression.op == "AND":
        yield from _conjuncts(expression.left)
        yield from _conjuncts(expression.right)
    else:
        yield expression


def _is_seg_hash(expression: Expression, seg_cols: List[str]) -> bool:
    return (
        isinstance(expression, FunctionCall)
        and expression.name == "HASH"
        and all(isinstance(a, ColumnRef) for a in expression.args)
        and [a.name for a in expression.args] == seg_cols
    )


def _tighten(conjunct: Expression, seg_cols: List[str], hash_range: HashRange) -> None:
    if isinstance(conjunct, Between) and _is_seg_hash(conjunct.operand, seg_cols):
        if isinstance(conjunct.low, Literal) and isinstance(conjunct.low.value, int):
            hash_range.lo = max(hash_range.lo, conjunct.low.value)
        if isinstance(conjunct.high, Literal) and isinstance(conjunct.high.value, int):
            hash_range.hi = min(hash_range.hi, conjunct.high.value + 1)
        return
    if not isinstance(conjunct, BinaryOp):
        return
    op = conjunct.op
    left, right = conjunct.left, conjunct.right
    if _is_seg_hash(left, seg_cols) and isinstance(right, Literal):
        bound = right.value
    elif _is_seg_hash(right, seg_cols) and isinstance(left, Literal):
        bound = left.value
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        left = right
    else:
        return
    if not isinstance(bound, int):
        return
    if op == ">=":
        hash_range.lo = max(hash_range.lo, bound)
    elif op == ">":
        hash_range.lo = max(hash_range.lo, bound + 1)
    elif op == "<":
        hash_range.hi = min(hash_range.hi, bound)
    elif op == "<=":
        hash_range.hi = min(hash_range.hi, bound + 1)
    elif op == "=":
        hash_range.lo = max(hash_range.lo, bound)
        hash_range.hi = min(hash_range.hi, bound + 1)


class ScanRow:
    """One visible row with its physical location (for DML staging)."""

    __slots__ = ("node", "data", "container", "row_index")

    def __init__(
        self,
        node: str,
        data: Dict[str, Any],
        container: Optional[RosContainer] = None,
        row_index: int = -1,
    ):
        self.node = node
        self.data = data
        self.container = container
        self.row_index = row_index


class Engine:
    """Executes parsed statements against a database's storage."""

    def __init__(self, database: "repro.vertica.database.VerticaDatabase"):  # noqa: F821
        self.database = database

    # ---------------------------------------------------------------- dispatch
    def execute(
        self,
        statement,
        txn: Transaction,
        initiator: str,
        copy_data=None,
        resource_pool: Optional[str] = None,
    ) -> Tuple[ResultSet, Optional[Any]]:
        """Run one parsed DML/query statement; returns (result, copy_result).

        The single entry point the session layer dispatches through, so
        every statement's :class:`CostReport` is stamped with the resource
        pool it ran in (``copy_result`` is non-None only for COPY).
        """
        copy_result = None
        if isinstance(statement, ast.Select):
            result = self.select(statement, txn, initiator)
        elif isinstance(statement, ast.Explain):
            result = self.explain(statement, txn, initiator)
        elif isinstance(statement, ast.InsertValues):
            result = self.insert_values(statement, txn, initiator)
        elif isinstance(statement, ast.InsertSelect):
            result = self.insert_select(statement, txn, initiator)
        elif isinstance(statement, ast.Update):
            result = self.update(statement, txn, initiator)
        elif isinstance(statement, ast.Delete):
            result = self.delete(statement, txn, initiator)
        elif isinstance(statement, ast.CopyStatement):
            from repro.vertica.copyload import run_copy

            result, copy_result = run_copy(self, statement, txn, copy_data)
        else:
            raise SqlError(f"unhandled statement {type(statement).__name__}")
        result.cost.resource_pool = resource_pool
        return result, copy_result

    # ------------------------------------------------------------------ scans
    def scan(
        self,
        table_name: str,
        snapshot_epoch: int,
        txn: Optional[Transaction],
        initiator: str,
        hash_range: Optional[HashRange] = None,
        cost: Optional[CostReport] = None,
        for_update: bool = False,
    ) -> Iterator[ScanRow]:
        """Yield visible rows of a table at a snapshot.

        ``for_update`` scans every physical copy (so DML can touch each
        replica of an unsegmented table); plain reads scan the initiator's
        copy of unsegmented tables and all (pruned) segments of segmented
        tables.
        """
        db = self.database
        table = db.catalog.table(table_name)
        hash_range = hash_range or HashRange()
        if table.unsegmented:
            nodes = db.node_names if for_update else [initiator]
        else:
            nodes = []
            assert table.ring is not None
            for segment in table.ring.segments:
                if hash_range.intersects(segment.lo, segment.hi):
                    nodes.append(segment.node)
        for node in nodes:
            storage, attributed = self._storage_for(node, table_name)
            for container in storage:
                for row_index in container.live_rows(snapshot_epoch):
                    if txn is not None and txn.is_deleted_by_self(container, row_index):
                        continue
                    if cost is not None:
                        cost.scanned(attributed)
                    row_hash = container.row_hashes[row_index]
                    if not table.unsegmented and not (
                        hash_range.lo <= row_hash < hash_range.hi
                    ):
                        continue
                    yield ScanRow(attributed, container.row(row_index), container, row_index)
        # Read-your-writes: rows staged by this transaction.
        if txn is not None:
            pending_nodes = set(nodes)
            for (wos_table, node), buffer in list(txn.wos.items()):
                if wos_table != table.name or node not in pending_nodes:
                    continue
                for index, row in enumerate(buffer.rows):
                    if cost is not None:
                        cost.scanned(node)
                    row_hash = buffer.row_hashes[index]
                    if not table.unsegmented and not (
                        hash_range.lo <= row_hash < hash_range.hi
                    ):
                        continue
                    yield ScanRow(node, dict(zip(buffer.column_names, row)))

    def _storage_for(self, node: str, table_name: str):
        """Containers for ``table_name`` on ``node``, with failover.

        When the node is down and k-safety >= 1, the buddy node serves its
        replica containers; scanned rows are attributed to the buddy.
        """
        db = self.database
        key = table_name.upper()
        if db.node_states.get(node, "UP") == "UP":
            return db.storage[node].table_containers(key), node
        if db.k_safety >= 1:
            buddy = db.buddy_of(node)
            if db.node_states.get(buddy, "UP") == "UP":
                return db.storage[buddy].replica_containers(key), buddy
        raise CatalogError(
            f"node {node!r} is down and no replica is available (k-safety "
            f"{db.k_safety})"
        )

    # ------------------------------------------------------------------- SELECT
    def select(
        self,
        statement: ast.Select,
        txn: Transaction,
        initiator: str,
        cost: Optional[CostReport] = None,
    ) -> ResultSet:
        cost = cost if cost is not None else CostReport()
        telemetry.counter("vertica.queries.select").inc()
        if statement.at_epoch is not None:
            telemetry.counter("vertica.epoch_reads").inc()
        if (
            statement.at_epoch is not None
            and statement.at_epoch < self.database.tuple_mover.ahm_epoch
        ):
            from repro.vertica.errors import TransactionError

            raise TransactionError(
                f"epoch {statement.at_epoch} is below the Ancient History "
                f"Mark ({self.database.tuple_mover.ahm_epoch}); its history "
                "has been merged out"
            )
        snapshot = txn.snapshot_epoch(statement.at_epoch)
        rows, source_columns = self._source_rows(statement, txn, initiator, snapshot, cost)

        if statement.where is not None:
            rows = [r for r in rows if predicate_holds(statement.where, r[1])]

        has_aggregate = any(item.aggregate for item in statement.items)
        if has_aggregate or statement.group_by:
            columns, out_rows = self._aggregate(statement, rows, initiator, cost)
        else:
            columns, out_rows = self._project(statement, rows, source_columns, cost)

        if statement.order_by:
            out_rows = self._order(statement, columns, out_rows)
        if statement.limit is not None:
            out_rows = out_rows[: statement.limit]
        result_rows = [row for __, row in out_rows]
        return ResultSet(columns, result_rows, cost=cost)

    def explain(
        self, statement: ast.Explain, txn: Transaction, initiator: str
    ) -> ResultSet:
        """Render a query plan: access path, pruning, pushdowns, estimates."""
        db = self.database
        query = statement.query
        lines: List[str] = []
        if query.source is None:
            lines.append("EXPR: constant projection (no FROM)")
        else:
            key = query.source.name.upper()
            if db.catalog.is_system_table(key) or key.startswith("V_MONITOR."):
                lines.append(f"SCAN SYSTEM TABLE {key}")
            elif db.catalog.has_view(key):
                lines.append(f"SCAN VIEW {key} (expanded at execution)")
            else:
                table = db.catalog.table(key)
                snapshot = (
                    query.at_epoch
                    if query.at_epoch is not None
                    else db.epochs.current
                )
                if table.unsegmented:
                    lines.append(
                        f"SCAN {key} [unsegmented, local copy on {initiator}]"
                    )
                    estimate = db.storage[initiator].live_row_count(key, snapshot)
                else:
                    hash_range = extract_hash_range(
                        query.where, table.segmentation_columns
                    )
                    assert table.ring is not None
                    scanned = [
                        s.node
                        for s in table.ring.segments
                        if hash_range.intersects(s.lo, s.hi)
                    ]
                    pruned = [n for n in table.ring.nodes if n not in scanned]
                    seg = ", ".join(table.segmentation_columns)
                    lines.append(f"SCAN {key} [segmented by HASH({seg})]")
                    if hash_range.is_full:
                        lines.append(f"  segments: all ({len(scanned)} nodes)")
                    else:
                        lines.append(
                            f"  hash range: [{hash_range.lo}, {hash_range.hi})"
                        )
                        lines.append(f"  segments scanned: {scanned}")
                        if pruned:
                            lines.append(f"  segments pruned: {pruned}")
                    estimate = sum(
                        db.storage[node].live_row_count(key, snapshot)
                        for node in scanned
                    )
                lines.append(f"  estimated rows: {estimate}")
                if query.at_epoch is not None:
                    lines.append(f"  snapshot: AT EPOCH {query.at_epoch}")
        for join in query.joins:
            lines.append(
                f"JOIN {join.table.name.upper()} ON {join.condition.sql()}"
            )
        if query.where is not None:
            lines.append(f"FILTER: {query.where.sql()}")
        aggregates = [i for i in query.items if i.aggregate]
        if aggregates or query.group_by:
            names = ", ".join(self._item_name(i) for i in query.items)
            lines.append(f"AGGREGATE: {names}")
            if query.group_by:
                keys = ", ".join(e.sql() for e in query.group_by)
                lines.append(f"  group by: {keys}")
        else:
            names = ", ".join(self._item_name(i) if not i.star else "*"
                              for i in query.items)
            lines.append(f"PROJECT: {names}")
        if query.order_by:
            keys = ", ".join(
                o.expression.sql() + (" DESC" if o.descending else "")
                for o in query.order_by
            )
            lines.append(f"SORT: {keys}")
        if query.limit is not None:
            lines.append(f"LIMIT: {query.limit}")
        return ResultSet(["QUERY_PLAN"], [(line,) for line in lines])

    def _source_rows(
        self,
        statement: ast.Select,
        txn: Transaction,
        initiator: str,
        snapshot: int,
        cost: CostReport,
    ) -> Tuple[List[Tuple[str, Dict[str, Any]]], List[str]]:
        """Rows as (producing node, dict) plus the source column order."""
        db = self.database
        if statement.source is None:
            return [(initiator, {})], []
        source = statement.source
        rows = self._relation_rows(source, txn, initiator, snapshot, cost, statement.where)
        columns = self._relation_columns(source.name)
        for join in statement.joins:
            right_rows = self._relation_rows(join.table, txn, initiator, snapshot, cost, None)
            right_columns = self._relation_columns(join.table.name)
            joined: List[Tuple[str, Dict[str, Any]]] = []
            for node, left_row in rows:
                for __, right_row in right_rows:
                    merged = dict(right_row)
                    merged.update(left_row)  # left wins on ambiguity
                    merged.update(
                        {k: v for k, v in right_row.items() if "." in k}
                    )
                    if predicate_holds(join.condition, {**right_row, **left_row, **merged}):
                        joined.append((node, merged))
            rows = joined
            columns = columns + [c for c in right_columns if c not in columns]
        return rows, columns

    def _relation_columns(self, name: str) -> List[str]:
        db = self.database
        key = name.upper()
        if key == "V_MONITOR.STORAGE_CONTAINERS":
            return ["NODE_NAME", "TABLE_NAME", "CONTAINER_COUNT", "LIVE_ROWS"]
        if db.catalog.is_system_table(key):
            columns, __ = db.catalog.system_table_rows(
                key, db.epochs.current, db.node_states
            )
            return columns
        if db.catalog.has_view(key):
            view = db.catalog.view(key)
            return self._select_output_columns(view.query)
        return db.catalog.table(key).column_names()

    def _relation_rows(
        self,
        ref: ast.TableRef,
        txn: Transaction,
        initiator: str,
        snapshot: int,
        cost: CostReport,
        where: Optional[Expression],
    ) -> List[Tuple[str, Dict[str, Any]]]:
        db = self.database
        key = ref.name.upper()
        alias = (ref.alias or ref.name.split(".")[-1]).upper()
        if key == "V_MONITOR.STORAGE_CONTAINERS":
            from repro.vertica.tuplemover import storage_container_stats

            out = [
                (
                    initiator,
                    {
                        "NODE_NAME": node,
                        "TABLE_NAME": table,
                        "CONTAINER_COUNT": count,
                        "LIVE_ROWS": rows,
                    },
                )
                for node, table, count, rows in storage_container_stats(db)
            ]
        elif db.catalog.is_system_table(key):
            __, sys_rows = db.catalog.system_table_rows(
                key, db.epochs.current, db.node_states
            )
            out = [(initiator, dict(row)) for row in sys_rows]
        elif db.catalog.has_view(key):
            out = self._view_rows(key, txn, initiator, snapshot, cost)
        else:
            table = db.catalog.table(key)
            hash_range = extract_hash_range(where, table.segmentation_columns)
            out = [
                (scan_row.node, scan_row.data)
                for scan_row in self.scan(
                    key, snapshot, txn, initiator, hash_range=hash_range, cost=cost
                )
            ]
        # Expose alias-qualified names alongside plain ones.
        qualified = []
        for node, row in out:
            merged = dict(row)
            for column, value in row.items():
                if "." not in column:
                    merged[f"{alias}.{column}"] = value
            qualified.append((node, merged))
        return qualified

    def _view_rows(
        self,
        view_name: str,
        txn: Transaction,
        initiator: str,
        snapshot: int,
        cost: CostReport,
    ) -> List[Tuple[str, Dict[str, Any]]]:
        """Execute a view and attribute its rows via the synthetic ring.

        Views have no physical segmentation; the connector parallelises
        them with SYNTHETIC_HASH ranges, so we attribute each output row to
        the node that owns its synthetic hash — mirroring which node would
        serve that range.
        """
        from repro.vertica.hashring import synthetic_ring, vertica_hash

        db = self.database
        view = db.catalog.view(view_name)
        query = view.query
        if query.at_epoch is None and snapshot is not None:
            query = ast.Select(
                query.items,
                query.source,
                joins=query.joins,
                where=query.where,
                group_by=query.group_by,
                having=query.having,
                order_by=query.order_by,
                limit=query.limit,
                at_epoch=snapshot,
            )
        result = self.select(query, txn, initiator, cost=cost)
        ring = synthetic_ring(db.node_names)
        out = []
        for row in result.rows:
            data = dict(zip(result.columns, row))
            values = [data[k] for k in sorted(data)]
            node = ring.node_for(vertica_hash(*values)) if values else initiator
            out.append((node, data))
        return out

    # -------------------------------------------------------------- projection
    def _select_output_columns(self, statement: ast.Select) -> List[str]:
        out: List[str] = []
        for item in statement.items:
            if item.star:
                if statement.source is None:
                    raise SqlError("SELECT * requires a FROM clause")
                out.extend(self._relation_columns(statement.source.name))
                for join in statement.joins:
                    for column in self._relation_columns(join.table.name):
                        if column not in out:
                            out.append(column)
            else:
                out.append(self._item_name(item))
        return out

    @staticmethod
    def _item_name(item: ast.SelectItem) -> str:
        if item.alias:
            return item.alias
        if item.aggregate:
            if item.aggregate_arg is None:
                return f"{item.aggregate}(*)"
            return f"{item.aggregate}({item.aggregate_arg.sql()})"
        if item.udf:
            return item.udf
        assert item.expression is not None
        if isinstance(item.expression, ColumnRef):
            return item.expression.name.split(".")[-1]
        return item.expression.sql()

    def _project(
        self,
        statement: ast.Select,
        rows: List[Tuple[str, Dict[str, Any]]],
        source_columns: List[str],
        cost: CostReport,
    ) -> Tuple[List[str], List[Tuple[str, Tuple[Any, ...]]]]:
        db = self.database
        columns: List[str] = []
        extractors = []
        for item in statement.items:
            if item.star:
                for column in source_columns:
                    columns.append(column)
                    extractors.append(
                        lambda row, c=column: row.get(c)
                    )
            elif item.udf:
                columns.append(self._item_name(item))
                function = db.udx.lookup(item.udf)
                extractors.append(
                    lambda row, f=function, it=item: f(
                        [a.evaluate(row) for a in it.udf_args], it.parameters
                    )
                )
            else:
                columns.append(self._item_name(item))
                assert item.expression is not None
                extractors.append(lambda row, e=item.expression: e.evaluate(row))
        out: List[Tuple[str, Tuple[Any, ...]]] = []
        for node, row in rows:
            values = tuple(extract(row) for extract in extractors)
            nbytes = sum(_value_bytes(v) for v in values)
            cost.output(node, nbytes)
            out.append((node, values))
        return columns, out

    def _aggregate(
        self,
        statement: ast.Select,
        rows: List[Tuple[str, Dict[str, Any]]],
        initiator: str,
        cost: CostReport,
    ) -> Tuple[List[str], List[Tuple[str, Tuple[Any, ...]]]]:
        # Aggregation input, attributed to producing nodes: what the wire
        # would have carried without pushdown, and what the group-hash
        # CPU charge (agg_cpu_per_row) bills.
        for node, __ in rows:
            cost.aggregated(node)
        groups: Dict[Tuple[Any, ...], List[Dict[str, Any]]] = {}
        if statement.group_by:
            for __, row in rows:
                key = tuple(expr.evaluate(row) for expr in statement.group_by)
                groups.setdefault(key, []).append(row)
        else:
            groups[()] = [row for __, row in rows]

        columns = [self._item_name(item) for item in statement.items]
        out: List[Tuple[str, Tuple[Any, ...]]] = []
        for key in groups:
            group_rows = groups[key]
            values: List[Any] = []
            for item in statement.items:
                if item.aggregate:
                    values.append(self._aggregate_value(item, group_rows))
                elif item.expression is not None:
                    if not group_rows:
                        values.append(None)
                    else:
                        values.append(item.expression.evaluate(group_rows[0]))
                else:
                    raise SqlError("SELECT * cannot be combined with aggregates")
            row_tuple = tuple(values)
            if statement.having is not None:
                # HAVING is evaluated against the aggregate output row
                # (reference aggregates by their select-list aliases).
                output_row = dict(zip(columns, row_tuple))
                if not predicate_holds(statement.having, output_row):
                    continue
            cost.output(initiator, sum(_value_bytes(v) for v in row_tuple))
            out.append((initiator, row_tuple))
        if not statement.group_by and not out:
            # Aggregates over an empty input still return one row.
            row_tuple = tuple(
                self._aggregate_value(item, []) if item.aggregate else None
                for item in statement.items
            )
            out.append((initiator, row_tuple))
        return columns, out

    @staticmethod
    def _aggregate_value(item: ast.SelectItem, group_rows: List[Dict[str, Any]]) -> Any:
        name = item.aggregate
        if item.aggregate_arg is None:
            if name != "COUNT":
                raise SqlError(f"{name} requires an argument")
            return len(group_rows)
        values = [item.aggregate_arg.evaluate(row) for row in group_rows]
        values = [v for v in values if v is not None]
        if item.distinct:
            values = list(dict.fromkeys(values))
        if name == "COUNT":
            return len(values)
        if not values:
            return None
        if name == "SUM":
            return sum(values)
        if name == "AVG":
            return sum(values) / len(values)
        if name == "MIN":
            return min(values)
        if name == "MAX":
            return max(values)
        raise SqlError(f"unknown aggregate {name!r}")  # pragma: no cover

    def _order(
        self,
        statement: ast.Select,
        columns: List[str],
        out_rows: List[Tuple[str, Tuple[Any, ...]]],
    ) -> List[Tuple[str, Tuple[Any, ...]]]:
        def sort_key(entry: Tuple[str, Tuple[Any, ...]]):
            __, row = entry
            data = dict(zip(columns, row))
            key = []
            for order in statement.order_by:
                try:
                    value = order.expression.evaluate(data)
                except SqlError:
                    value = None
                # NULLs always sort last, in both directions.
                null_rank = 1 if value is None else 0
                if order.descending:
                    key.append((null_rank, _Reversed(value)))
                else:
                    key.append((null_rank, _Sortable(value)))
            return tuple(key)

        return sorted(out_rows, key=sort_key)

    # ------------------------------------------------------------------- DML
    def insert_rows(
        self,
        table_name: str,
        rows: List[Dict[str, Any]],
        txn: Transaction,
        cost: Optional[CostReport] = None,
    ) -> int:
        """Stage coerced rows into the transaction's WOS, routed by segment."""
        db = self.database
        table = db.catalog.table(table_name)
        txn.lock(table.name, mode="I")
        cost = cost if cost is not None else CostReport()
        column_names = table.column_names()
        for row in rows:
            coerced = {}
            for column_def in table.columns:
                value = row.get(column_def.name)
                coerced[column_def.name] = column_def.sql_type.coerce(value)
            ordered = [coerced[c] for c in column_names]
            if table.unsegmented:
                for node in db.node_names:
                    txn.wos_for(table.name, node, column_names).append(ordered, 0)
                cost.wrote(db.node_names[0])
            else:
                row_hash = table.row_hash(coerced)
                assert table.ring is not None
                node = table.ring.node_for(row_hash)
                txn.wos_for(table.name, node, column_names).append(ordered, row_hash)
                cost.wrote(node)
                if db.k_safety >= 1:
                    buddy = db.buddy_of(node)
                    txn.replica_wos_for(table.name, buddy, column_names).append(
                        ordered, row_hash
                    )
        return len(rows)

    def insert_values(
        self, statement: ast.InsertValues, txn: Transaction, initiator: str
    ) -> ResultSet:
        table = self.database.catalog.table(statement.table)
        target_columns = (
            [c.upper() for c in statement.columns]
            if statement.columns
            else table.column_names()
        )
        telemetry.counter("vertica.queries.insert").inc()
        rows = []
        for value_exprs in statement.rows:
            if len(value_exprs) != len(target_columns):
                raise SqlError(
                    f"INSERT has {len(value_exprs)} values for "
                    f"{len(target_columns)} columns"
                )
            values = [e.evaluate({}) for e in value_exprs]
            rows.append(dict(zip(target_columns, values)))
        cost = CostReport()
        count = self.insert_rows(table.name, rows, txn, cost)
        return ResultSet(rowcount=count, cost=cost)

    def insert_select(
        self, statement: ast.InsertSelect, txn: Transaction, initiator: str
    ) -> ResultSet:
        table = self.database.catalog.table(statement.table)
        telemetry.counter("vertica.queries.insert").inc()
        cost = CostReport()
        result = self.select(statement.query, txn, initiator, cost=cost)
        target_columns = (
            [c.upper() for c in statement.columns]
            if statement.columns
            else table.column_names()
        )
        if result.columns and len(result.columns) != len(target_columns):
            raise SqlError(
                f"INSERT SELECT arity mismatch: query yields "
                f"{len(result.columns)} columns for {len(target_columns)}"
            )
        rows = [dict(zip(target_columns, row)) for row in result.rows]
        count = self.insert_rows(table.name, rows, txn, cost)
        return ResultSet(rowcount=count, cost=cost)

    def update(
        self, statement: ast.Update, txn: Transaction, initiator: str
    ) -> ResultSet:
        db = self.database
        table = db.catalog.table(statement.table)
        txn.lock(table.name)
        telemetry.counter("vertica.queries.update").inc()
        cost = CostReport()
        snapshot = db.epochs.current
        assignments = [(c.upper(), e) for c, e in statement.assignments]
        for column, __ in assignments:
            if not table.has_column(column):
                raise SqlError(f"table {table.name!r} has no column {column!r}")
        matched: List[Dict[str, Any]] = []
        seen_keys = set()
        for scan_row in self.scan(
            table.name, snapshot, txn, initiator, cost=cost, for_update=True
        ):
            if not predicate_holds(statement.where, scan_row.data):
                continue
            if scan_row.container is not None:
                txn.stage_delete(scan_row.container, scan_row.row_index)
            if table.unsegmented:
                # Replicated copies: update counts once per logical row.
                key = tuple(sorted(scan_row.data.items()))
                if key in seen_keys:
                    continue
                seen_keys.add(key)
            updated = dict(scan_row.data)
            for column, expression in assignments:
                updated[column] = expression.evaluate(scan_row.data)
            matched.append(updated)
        if matched:
            self.insert_rows(table.name, matched, txn, cost)
        return ResultSet(rowcount=len(matched), cost=cost)

    def delete(
        self, statement: ast.Delete, txn: Transaction, initiator: str
    ) -> ResultSet:
        db = self.database
        table = db.catalog.table(statement.table)
        txn.lock(table.name)
        telemetry.counter("vertica.queries.delete").inc()
        cost = CostReport()
        snapshot = db.epochs.current
        count = 0
        seen_keys = set()
        for scan_row in self.scan(
            table.name, snapshot, txn, initiator, cost=cost, for_update=True
        ):
            if not predicate_holds(statement.where, scan_row.data):
                continue
            if scan_row.container is not None:
                txn.stage_delete(scan_row.container, scan_row.row_index)
            if table.unsegmented:
                key = tuple(sorted(scan_row.data.items()))
                if key in seen_keys:
                    continue
                seen_keys.add(key)
            count += 1
        return ResultSet(rowcount=count, cost=cost)


class _Sortable:
    """Wrapper making heterogeneous sort keys comparable (SQL-ish)."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_Sortable") -> bool:
        a, b = self.value, other.value
        if a is None or b is None:
            return False
        try:
            return a < b
        except TypeError:
            return str(a) < str(b)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Sortable) and self.value == other.value


class _Reversed(_Sortable):
    def __lt__(self, other: "_Sortable") -> bool:  # type: ignore[override]
        a, b = self.value, other.value
        if a is None or b is None:
            return False
        try:
            return b < a
        except TypeError:
            return str(b) < str(a)
