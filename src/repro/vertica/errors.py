"""Error hierarchy for the Vertica substrate."""

from __future__ import annotations


class VerticaError(Exception):
    """Base class for all database errors."""


class SqlError(VerticaError):
    """Syntax or semantic error in a SQL statement."""


class CatalogError(VerticaError):
    """Unknown / duplicate tables, columns, views or nodes."""


class TypeMismatchError(VerticaError):
    """A value does not fit the declared column type."""


class TransactionError(VerticaError):
    """Illegal transaction state transitions (commit without begin, ...)."""


class LockContention(TransactionError):
    """A table lock is held by another transaction.

    The substrate uses no-wait table locks: within one instant of simulated
    time there is no true concurrency, so instead of blocking, conflicting
    statements fail fast and the caller retries after a backoff (the
    connector's S2V tasks do exactly this during their commit races).
    """

    def __init__(self, table: str, holder: int, requester: int):
        super().__init__(
            f"lock on table {table!r} held by transaction {holder}, "
            f"requested by transaction {requester}"
        )
        self.table = table
        self.holder = holder
        self.requester = requester


class CopyRejectError(VerticaError):
    """COPY aborted because rejected rows exceeded REJECTMAX."""

    def __init__(self, rejected: int, limit: int, sample: list):
        super().__init__(
            f"COPY rejected {rejected} rows, exceeding REJECTMAX {limit}"
        )
        self.rejected = rejected
        self.limit = limit
        self.sample = sample


class ConnectionLimitError(VerticaError):
    """A node refused a connection (MAX-CLIENT-SESSIONS exceeded)."""
