"""Error hierarchy for the Vertica substrate."""

from __future__ import annotations


class VerticaError(Exception):
    """Base class for all database errors."""


class SqlError(VerticaError):
    """Syntax or semantic error in a SQL statement."""


class CatalogError(VerticaError):
    """Unknown / duplicate tables, columns, views or nodes."""


class TypeMismatchError(VerticaError):
    """A value does not fit the declared column type."""


class TransactionError(VerticaError):
    """Illegal transaction state transitions (commit without begin, ...)."""


class LockContention(TransactionError):
    """A table lock is held by another transaction.

    The substrate uses no-wait table locks: within one instant of simulated
    time there is no true concurrency, so instead of blocking, conflicting
    statements fail fast and the caller retries after a backoff (the
    connector's S2V tasks do exactly this during their commit races).
    """

    def __init__(self, table: str, holder: int, requester: int):
        super().__init__(
            f"lock on table {table!r} held by transaction {holder}, "
            f"requested by transaction {requester}"
        )
        self.table = table
        self.holder = holder
        self.requester = requester


class RetriesExhausted(VerticaError):
    """A bounded retry loop gave up under sustained lock contention.

    Distinct from :class:`LockContention` so callers can tell "retry again
    later" apart from "the retry budget itself is spent" — under a lock
    storm the latter must surface to the task/scheduler layer instead of
    spinning forever.
    """

    def __init__(self, sql: str, attempts: int, last_error: Exception):
        summary = sql.strip().split("\n", 1)[0]
        if len(summary) > 80:
            summary = summary[:77] + "..."
        super().__init__(
            f"gave up after {attempts} attempts: {summary!r} ({last_error})"
        )
        self.sql = sql
        self.attempts = attempts
        self.last_error = last_error


class CopyRejectError(VerticaError):
    """COPY aborted because rejected rows exceeded REJECTMAX."""

    def __init__(self, rejected: int, limit: int, sample: list):
        super().__init__(
            f"COPY rejected {rejected} rows, exceeding REJECTMAX {limit}"
        )
        self.rejected = rejected
        self.limit = limit
        self.sample = sample


class ConnectionLimitError(VerticaError):
    """A node refused a connection (MAX-CLIENT-SESSIONS exceeded)."""


class AdmissionTimeout(VerticaError):
    """A statement waited longer than its pool's QUEUETIMEOUT.

    Raised by the WLM admission controller after the statement has
    exhausted its pool's queue timeout and every cascade target's; all
    queued slot/memory claims are returned before this surfaces.
    """

    def __init__(self, pool: str, waited: float, tried: tuple):
        super().__init__(
            f"admission to resource pool {pool!r} timed out after "
            f"{waited:.3f}s (pools tried: {', '.join(tried)})"
        )
        self.pool = pool
        self.waited = waited
        self.tried = tried
