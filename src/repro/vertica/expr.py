"""SQL expression AST and evaluator.

Expressions are evaluated row-wise against a mapping of column name →
value.  SQL three-valued logic is implemented faithfully: comparisons and
arithmetic with NULL yield NULL, AND/OR follow Kleene logic, and WHERE
keeps a row only when its predicate is strictly ``True``.

The builtin function table includes ``HASH`` (Vertica's segmentation hash,
the basis of the connector's locality-aware queries) and
``SYNTHETIC_HASH`` (a whole-row hash the connector uses to parallelise
loads of views and unsegmented tables).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.vertica.errors import SqlError
from repro.vertica.hashring import vertica_hash

Row = Dict[str, Any]


class Expression:
    """Base class for all expression nodes."""

    def evaluate(self, row: Row) -> Any:
        raise NotImplementedError

    def columns(self) -> List[str]:
        """Column names referenced by this expression (with duplicates)."""
        return []

    def sql(self) -> str:
        """Render back to SQL text (used for pushdown round-trips)."""
        raise NotImplementedError


class Literal(Expression):
    def __init__(self, value: Any):
        self.value = value

    def evaluate(self, row: Row) -> Any:
        return self.value

    def sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(self.value)

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"


class ColumnRef(Expression):
    def __init__(self, name: str):
        self.name = name

    def evaluate(self, row: Row) -> Any:
        try:
            return row[self.name]
        except KeyError:
            raise SqlError(f"unknown column {self.name!r}") from None

    def columns(self) -> List[str]:
        return [self.name]

    def sql(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"ColumnRef({self.name!r})"


class Star(Expression):
    """``*`` in a select list; resolved by the engine, never evaluated."""

    def sql(self) -> str:
        return "*"


def _null_if_any_null(func: Callable[..., Any]) -> Callable[..., Any]:
    def wrapped(*args: Any) -> Any:
        if any(a is None for a in args):
            return None
        return func(*args)

    return wrapped


def _div(a: Any, b: Any) -> Any:
    if b == 0:
        raise SqlError("division by zero")
    if isinstance(a, int) and isinstance(b, int):
        # SQL integer division truncates toward zero.
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    return a / b


def _mod(a: Any, b: Any) -> Any:
    if b == 0:
        raise SqlError("modulo by zero")
    if isinstance(a, float) or isinstance(b, float):
        return math.fmod(a, b)
    quotient = abs(a) // abs(b) if (a >= 0) == (b >= 0) else -(abs(a) // abs(b))
    return a - b * quotient


_ARITHMETIC = {
    "+": _null_if_any_null(lambda a, b: a + b),
    "-": _null_if_any_null(lambda a, b: a - b),
    "*": _null_if_any_null(lambda a, b: a * b),
    "/": _null_if_any_null(_div),
    "%": _null_if_any_null(_mod),
    "||": _null_if_any_null(lambda a, b: str(a) + str(b)),
}

_COMPARISON = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class BinaryOp(Expression):
    def __init__(self, op: str, left: Expression, right: Expression):
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, row: Row) -> Any:
        op = self.op
        if op == "AND":
            return _kleene_and(self.left.evaluate(row), self.right.evaluate(row))
        if op == "OR":
            return _kleene_or(self.left.evaluate(row), self.right.evaluate(row))
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if op in _ARITHMETIC:
            try:
                return _ARITHMETIC[op](left, right)
            except TypeError:
                raise SqlError(
                    f"invalid operands to {op!r}: {type(left).__name__} "
                    f"and {type(right).__name__}"
                ) from None
        if op in _COMPARISON:
            if left is None or right is None:
                return None
            try:
                return _COMPARISON[op](left, right)
            except TypeError:
                raise SqlError(
                    f"cannot compare {type(left).__name__} with "
                    f"{type(right).__name__}"
                ) from None
        raise SqlError(f"unknown operator {op!r}")  # pragma: no cover

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()

    def sql(self) -> str:
        return f"({self.left.sql()} {self.op} {self.right.sql()})"


def _kleene_and(a: Any, b: Any) -> Any:
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return bool(a) and bool(b)


def _kleene_or(a: Any, b: Any) -> Any:
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return bool(a) or bool(b)


class UnaryOp(Expression):
    def __init__(self, op: str, operand: Expression):
        if op not in ("-", "+", "NOT"):
            raise SqlError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand

    def evaluate(self, row: Row) -> Any:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        if self.op == "NOT":
            return not value
        return -value if self.op == "-" else +value

    def columns(self) -> List[str]:
        return self.operand.columns()

    def sql(self) -> str:
        if self.op == "NOT":
            return f"(NOT {self.operand.sql()})"
        return f"({self.op}{self.operand.sql()})"


class IsNull(Expression):
    def __init__(self, operand: Expression, negated: bool = False):
        self.operand = operand
        self.negated = negated

    def evaluate(self, row: Row) -> bool:
        is_null = self.operand.evaluate(row) is None
        return not is_null if self.negated else is_null

    def columns(self) -> List[str]:
        return self.operand.columns()

    def sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.sql()} {suffix})"


class InList(Expression):
    def __init__(self, operand: Expression, options: Sequence[Expression],
                 negated: bool = False):
        self.operand = operand
        self.options = list(options)
        self.negated = negated

    def evaluate(self, row: Row) -> Any:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        found = False
        saw_null = False
        for option in self.options:
            candidate = option.evaluate(row)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                found = True
                break
        if found:
            return not self.negated
        if saw_null:
            return None
        return self.negated

    def columns(self) -> List[str]:
        out = self.operand.columns()
        for option in self.options:
            out.extend(option.columns())
        return out

    def sql(self) -> str:
        options = ", ".join(o.sql() for o in self.options)
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.sql()} {keyword} ({options}))"


class Between(Expression):
    def __init__(self, operand: Expression, low: Expression, high: Expression):
        self.operand = operand
        self.low = low
        self.high = high

    def evaluate(self, row: Row) -> Any:
        value = self.operand.evaluate(row)
        low = self.low.evaluate(row)
        high = self.high.evaluate(row)
        if value is None or low is None or high is None:
            return None
        return low <= value <= high

    def columns(self) -> List[str]:
        return self.operand.columns() + self.low.columns() + self.high.columns()

    def sql(self) -> str:
        return f"({self.operand.sql()} BETWEEN {self.low.sql()} AND {self.high.sql()})"


class Like(Expression):
    """SQL LIKE with ``%`` and ``_`` wildcards."""

    def __init__(self, operand: Expression, pattern: str, negated: bool = False):
        self.operand = operand
        self.pattern = pattern
        self.negated = negated
        self._regex = self._compile(pattern)

    @staticmethod
    def _compile(pattern: str):
        import re

        out = []
        for char in pattern:
            if char == "%":
                out.append(".*")
            elif char == "_":
                out.append(".")
            else:
                out.append(re.escape(char))
        return re.compile("^" + "".join(out) + "$", re.DOTALL)

    def evaluate(self, row: Row) -> Any:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        matched = bool(self._regex.match(str(value)))
        return not matched if self.negated else matched

    def columns(self) -> List[str]:
        return self.operand.columns()

    def sql(self) -> str:
        keyword = "NOT LIKE" if self.negated else "LIKE"
        escaped = self.pattern.replace("'", "''")
        return f"({self.operand.sql()} {keyword} '{escaped}')"


def _builtin_hash(*values: Any) -> int:
    return vertica_hash(*values)


_BUILTINS: Dict[str, Callable[..., Any]] = {
    "HASH": _builtin_hash,
    "ABS": _null_if_any_null(abs),
    "MOD": _null_if_any_null(_mod),
    "LENGTH": _null_if_any_null(lambda s: len(str(s))),
    "UPPER": _null_if_any_null(lambda s: str(s).upper()),
    "LOWER": _null_if_any_null(lambda s: str(s).lower()),
    "FLOOR": _null_if_any_null(lambda x: math.floor(x)),
    "CEIL": _null_if_any_null(lambda x: math.ceil(x)),
    "SQRT": _null_if_any_null(lambda x: math.sqrt(x)),
    "COALESCE": lambda *args: next((a for a in args if a is not None), None),
}


class FunctionCall(Expression):
    """A scalar function call.

    ``SYNTHETIC_HASH()`` is special-cased: it hashes the entire row (in
    column-name order), giving views and unsegmented tables a deterministic
    pseudo-segmentation for parallel V2S loads.
    """

    def __init__(self, name: str, args: Sequence[Expression]):
        self.name = name.upper()
        self.args = list(args)
        if self.name != "SYNTHETIC_HASH" and self.name not in _BUILTINS:
            raise SqlError(f"unknown function {name!r}")

    def evaluate(self, row: Row) -> Any:
        if self.name == "SYNTHETIC_HASH":
            values = [row[key] for key in sorted(row)]
            return vertica_hash(*values) if values else 0
        values = [arg.evaluate(row) for arg in self.args]
        try:
            return _BUILTINS[self.name](*values)
        except (TypeError, ValueError) as exc:
            raise SqlError(f"error in {self.name}(): {exc}") from exc

    def columns(self) -> List[str]:
        out: List[str] = []
        for arg in self.args:
            out.extend(arg.columns())
        return out

    def sql(self) -> str:
        return f"{self.name}({', '.join(a.sql() for a in self.args)})"


def predicate_holds(expression: Optional[Expression], row: Row) -> bool:
    """WHERE semantics: keep the row only when the predicate is True."""
    if expression is None:
        return True
    return expression.evaluate(row) is True
