"""Hash-ring segmentation.

Vertica distributes a table's rows by hashing its segmentation columns
into a fixed hash space and assigning each node one contiguous range of
that space (§2.1.1, §3.1.2 of the paper).  The connector's V2S component
reads these boundaries from the system catalog and formulates one query
per Spark partition asking for a non-overlapping sub-range, so only the
node storing that range ever produces data.

The hash function must be deterministic across sessions and independent of
Python's randomised ``hash()``; we use a 64-bit FNV-1a over a canonical
byte encoding, folded into a 32-bit ring.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.vertica.errors import CatalogError

#: the ring covers [0, HASH_SPACE)
HASH_SPACE = 1 << 32

_MASK64 = (1 << 64) - 1


def _fnv1a(data: bytes) -> int:
    """A fast, stable 64-bit hash: CRC32 (C speed) + splitmix64 finishing.

    CRC alone distributes short inputs poorly; the splitmix64-style mixer
    provides the avalanche so the fold onto the 32-bit ring is uniform.
    The function is deterministic across processes (unlike ``hash()``),
    which the segmentation layout depends on.
    """
    import zlib

    value = (zlib.crc32(data) | (len(data) << 32)) & _MASK64
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK64
    return value ^ (value >> 31)


def _canonical_bytes(value: Any) -> bytes:
    if value is None:
        return b"\x00N"
    if isinstance(value, bool):
        return b"\x01T" if value else b"\x01F"
    if isinstance(value, int):
        return b"\x02" + str(value).encode()
    if isinstance(value, float):
        if value.is_integer():
            # Hash integral floats like integers so 1 and 1.0 agree.
            return b"\x02" + str(int(value)).encode()
        return b"\x03" + repr(value).encode()
    if isinstance(value, str):
        return b"\x04" + value.encode("utf-8")
    if isinstance(value, (bytes, bytearray)):
        return b"\x05" + bytes(value)
    raise TypeError(f"cannot hash value of type {type(value).__name__}")


def vertica_hash(*values: Any) -> int:
    """Hash one or more column values onto the ring ``[0, HASH_SPACE)``."""
    if not values:
        raise TypeError("vertica_hash requires at least one value")
    data = b"\x1f".join(_canonical_bytes(v) for v in values)
    return _fnv1a(data) % HASH_SPACE


class Segment:
    """One contiguous hash range ``[lo, hi)`` stored on ``node``."""

    __slots__ = ("lo", "hi", "node")

    def __init__(self, lo: int, hi: int, node: str):
        if not 0 <= lo < hi <= HASH_SPACE:
            raise CatalogError(f"invalid segment range [{lo}, {hi})")
        self.lo = lo
        self.hi = hi
        self.node = node

    def contains(self, hash_value: int) -> bool:
        return self.lo <= hash_value < self.hi

    def __repr__(self) -> str:
        return f"Segment([{self.lo}, {self.hi}) @ {self.node})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Segment):
            return NotImplemented
        return (self.lo, self.hi, self.node) == (other.lo, other.hi, other.node)


class HashRing:
    """The full ring: an ordered, gap-free partition of the hash space."""

    def __init__(self, segments: Sequence[Segment]):
        ordered = sorted(segments, key=lambda s: s.lo)
        if not ordered:
            raise CatalogError("a hash ring requires at least one segment")
        if ordered[0].lo != 0 or ordered[-1].hi != HASH_SPACE:
            raise CatalogError("hash ring must cover [0, HASH_SPACE)")
        for prev, cur in zip(ordered, ordered[1:]):
            if prev.hi != cur.lo:
                raise CatalogError(
                    f"hash ring has a gap/overlap at {prev.hi} vs {cur.lo}"
                )
        self.segments: List[Segment] = ordered

    @classmethod
    def even(cls, nodes: Sequence[str]) -> "HashRing":
        """Split the space evenly over ``nodes`` (Vertica's default layout)."""
        if not nodes:
            raise CatalogError("cannot build a ring over zero nodes")
        count = len(nodes)
        bounds = [(HASH_SPACE * i) // count for i in range(count + 1)]
        return cls(
            [Segment(bounds[i], bounds[i + 1], nodes[i]) for i in range(count)]
        )

    @property
    def nodes(self) -> List[str]:
        return [segment.node for segment in self.segments]

    def node_for(self, hash_value: int) -> str:
        """The node owning ``hash_value`` (binary search not needed at this scale)."""
        for segment in self.segments:
            if segment.contains(hash_value % HASH_SPACE):
                return segment.node
        raise CatalogError(f"hash {hash_value} outside ring")  # pragma: no cover

    def segment_for_node(self, node: str) -> Segment:
        for segment in self.segments:
            if segment.node == node:
                return segment
        raise CatalogError(f"node {node!r} stores no segment of this ring")

    def split(self, num_partitions: int) -> List[Tuple[int, int, str]]:
        """Divide the ring into ``num_partitions`` sub-ranges for V2S.

        Returns ``(lo, hi, node)`` triples such that the ranges are
        non-overlapping, cover the whole space, **never cross a segment
        boundary** (so each range lives wholly on one node), and are as
        evenly sized as possible.  With fewer partitions than segments, a
        partition is represented by several triples (one per segment it
        covers) sharing the same partition index — the caller receives a
        list of lists.
        """
        if num_partitions <= 0:
            raise CatalogError(f"num_partitions must be positive: {num_partitions}")
        segments = self.segments
        count = len(segments)
        ranges: List[Tuple[int, int, str]] = []
        if num_partitions >= count:
            # Split each segment into roughly num_partitions/count pieces.
            base, extra = divmod(num_partitions, count)
            for index, segment in enumerate(segments):
                pieces = base + (1 if index < extra else 0)
                span = segment.hi - segment.lo
                bounds = [segment.lo + (span * i) // pieces for i in range(pieces + 1)]
                for i in range(pieces):
                    if bounds[i] < bounds[i + 1]:
                        ranges.append((bounds[i], bounds[i + 1], segment.node))
        else:
            for segment in segments:
                ranges.append((segment.lo, segment.hi, segment.node))
        return ranges

    def partition_plan(self, num_partitions: int) -> List[List[Tuple[int, int, str]]]:
        """Group :meth:`split` ranges into exactly ``num_partitions`` tasks.

        Mirrors Figure 4 of the paper: with more partitions than segments
        each task gets one sub-range; with fewer, each task gets one or
        more whole segments.
        """
        ranges = self.split(num_partitions)
        if num_partitions >= len(ranges):
            plan = [[r] for r in ranges]
            # In the (rare) rounding case of fewer ranges than requested
            # partitions, pad with empty tasks so the task count is honoured.
            while len(plan) < num_partitions:
                plan.append([])
            return plan
        # Fewer partitions than segments: deal segments round-robin so each
        # task holds whole segments (paper Figure 4(a)).
        plan = [[] for __ in range(num_partitions)]
        for index, item in enumerate(ranges):
            plan[index % num_partitions].append(item)
        return plan


def synthetic_ring(nodes: Sequence[str]) -> HashRing:
    """An even ring used for views and unsegmented tables.

    Those objects have no physical segmentation, so V2S fabricates
    "synthetic hash ranges" (§3.1.1) over a row hash to parallelise the
    load anyway; the synthetic ring assigns each node an equal range so
    connections stay balanced.
    """
    return HashRing.even(list(nodes))


def ranges_are_disjoint_and_complete(
    ranges: Iterable[Tuple[int, int]], space: Optional[int] = None
) -> bool:
    """True when the (lo, hi) ranges tile ``[0, space)`` exactly once."""
    space = HASH_SPACE if space is None else space
    ordered = sorted(ranges)
    if not ordered:
        return False
    if ordered[0][0] != 0 or ordered[-1][1] != space:
        return False
    for (__, prev_hi), (cur_lo, __) in zip(ordered, ordered[1:]):
        if prev_hi != cur_lo:
            return False
    return True
