"""The layered query pipeline: bind → optimize → execute.

The Vertica execution path is three explicit layers (Shark-style):

1. :mod:`repro.vertica.plan.binder` resolves a parsed
   :class:`~repro.vertica.sql.ast_nodes.Select` against the catalog into a
   tree of typed **logical nodes** (:mod:`repro.vertica.plan.logical`).
2. :mod:`repro.vertica.plan.optimizer` runs a fixed sequence of rewrite
   **rules** over the logical tree — constant folding, hash-range
   tightening (reusing ``extract_hash_range``), predicate pushdown into
   the scan, projection pruning — recording which rules fired.
3. :mod:`repro.vertica.plan.physical` turns the optimized tree into
   **physical operators** executing over columnar batches
   (column name → list-of-values chunks), each recording rows/bytes/time
   stats that feed :class:`~repro.vertica.engine.CostReport` and
   :mod:`repro.telemetry` uniformly.

:mod:`repro.vertica.plan.pipeline` glues the layers together and renders
``EXPLAIN`` (the real optimized operator tree) and ``PROFILE`` (the tree
annotated with per-operator execution stats).
:mod:`repro.vertica.plan.adaptive` carries the per-query runtime
replanning state (``SET ADAPTIVE_EXECUTION``): join operators checkpoint
against it after materializing their inputs and may swap build sides or
switch algorithms mid-query.  See ``docs/ENGINE.md``.
"""

from repro.vertica.plan.adaptive import AdaptiveContext, ReplanEvent
from repro.vertica.plan.binder import bind_dml_scan, bind_select
from repro.vertica.plan.logical import LogicalPlan
from repro.vertica.plan.optimizer import optimize
from repro.vertica.plan.pipeline import (
    PlanProfile,
    dml_matching_rows,
    execute_select,
    explain_lines,
    optimized_plan,
)

__all__ = [
    "AdaptiveContext",
    "LogicalPlan",
    "PlanProfile",
    "ReplanEvent",
    "bind_dml_scan",
    "bind_select",
    "dml_matching_rows",
    "execute_select",
    "explain_lines",
    "optimize",
    "optimized_plan",
]
