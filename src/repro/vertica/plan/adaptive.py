"""Runtime replanning for join operators (adaptive query execution).

A plan is optimized against *estimates*; by the time a join has
materialized its inputs the executor holds *observed* row counts, and
the two can disagree by orders of magnitude when statistics are stale.
Each equi-join operator therefore pauses at a checkpoint — after both
inputs are materialized but before the join algorithm (the unstarted
subtree of its work) has begun — and consults the query's
:class:`AdaptiveContext`, which may revise the build side or the join
algorithm for the remainder of that operator:

- ``swap-build`` — the planned build side came in at least
  :data:`MISESTIMATE_FACTOR` times over its estimate and the other side
  is observably smaller, so the hash table is built on the smaller side.
- ``demote-merge`` — the (possibly swapped) build side overflows
  ``JOIN_BUILD_MEMORY_ROWS`` and the keys are sortable, so the hash join
  becomes a merge join instead of building an over-budget table.
- ``promote-hash`` — a merge join planned for an overflow that never
  happened (observed build fits in memory at a fraction of its
  estimate) runs as a hash join.

Decisions never mutate the logical plan — cached plans stay pristine —
and each operator checkpoints exactly once, so replanning is bounded by
the number of joins in the query.  Every decision is recorded as a
:class:`ReplanEvent` that PROFILE renders and tests assert on.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro import telemetry
from repro.vertica.plan.optimizer import JOIN_BUILD_MEMORY_ROWS

#: observed/estimated ratio that counts as an order-of-magnitude miss
MISESTIMATE_FACTOR = 10


class ReplanEvent:
    """One recorded mid-query replan decision."""

    def __init__(self, join_label: str, trigger: str, action: str,
                 estimated_rows: Optional[int], observed_rows: int):
        self.join_label = join_label
        self.trigger = trigger
        self.action = action
        self.estimated_rows = estimated_rows
        self.observed_rows = observed_rows

    def describe(self) -> str:
        estimated = ("unknown" if self.estimated_rows is None
                     else str(self.estimated_rows))
        return (f"{self.join_label}: {self.action} ({self.trigger}: "
                f"estimated {estimated} rows, observed {self.observed_rows})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReplanEvent({self.describe()!r})"


class AdaptiveContext:
    """Per-query adaptive-execution state threaded through the operators.

    One context is created per executed SELECT; it carries whether
    adaptivity is enabled, whether a session-level ``SET JOIN_STRATEGY``
    override pins the algorithm (overrides are always respected — the
    executor never second-guesses an explicit strategy), and the list of
    replan events the query accumulated.
    """

    def __init__(self, enabled: bool = False, strategy_override: str = "auto",
                 memory_rows: int = JOIN_BUILD_MEMORY_ROWS,
                 misestimate_factor: int = MISESTIMATE_FACTOR):
        self.enabled = enabled
        self.strategy_override = strategy_override
        self.memory_rows = memory_rows
        self.misestimate_factor = misestimate_factor
        self.events: List[ReplanEvent] = []

    @property
    def active(self) -> bool:
        """Replanning applies only when enabled and the strategy is free."""
        return self.enabled and self.strategy_override == "auto"

    def record(self, join: Any, trigger: str, action: str,
               estimated_rows: Optional[int], observed_rows: int) -> None:
        label = getattr(join, "label", lambda: "join")()
        self.events.append(
            ReplanEvent(label, trigger, action, estimated_rows, observed_rows)
        )
        telemetry.counter("vertica.plan.adaptive.replans").inc()

    # -- operator checkpoints ---------------------------------------------------
    def _sides(self, join: Any, observed_left: int,
               observed_right: int) -> Tuple[dict, dict]:
        observed = {"left": observed_left, "right": observed_right}
        estimated = {
            "left": getattr(join.left, "estimated_rows", None),
            "right": getattr(join.right, "estimated_rows", None),
        }
        return observed, estimated

    def checkpoint_hash(self, join: Any, observed_left: int,
                        observed_right: int) -> Tuple[str, str]:
        """Revise a hash join's (build side, algorithm) from observed rows."""
        build = join.build_side or "right"
        if not self.active:
            return build, "hash"
        observed, estimated = self._sides(join, observed_left, observed_right)
        probe = "left" if build == "right" else "right"
        build_estimate = estimated[build]
        if (build_estimate is not None
                and observed[build] >= self.misestimate_factor
                * max(1, build_estimate)
                and observed[probe] < observed[build]):
            self.record(join, "misestimate", "swap-build",
                        build_estimate, observed[build])
            build, probe = probe, build
        strategy = "hash"
        if (observed[build] > self.memory_rows
                and getattr(join, "keys_sortable", False)):
            self.record(join, "build-overflow", "demote-merge",
                        estimated[build], observed[build])
            strategy = "merge"
        return build, strategy

    def checkpoint_merge(self, join: Any, observed_left: int,
                         observed_right: int) -> Tuple[str, str]:
        """Revise a merge join planned around an overflow that never came."""
        build = join.build_side or "right"
        if not self.active:
            return build, "merge"
        observed, estimated = self._sides(join, observed_left, observed_right)
        build_estimate = estimated[build]
        if (build_estimate is not None
                and build_estimate > self.memory_rows
                and observed[build] <= self.memory_rows):
            self.record(join, "misestimate", "promote-hash",
                        build_estimate, observed[build])
            return build, "hash"
        return build, "merge"
