"""Binder: resolve a parsed ``Select`` into a logical plan.

The binder consults only the catalog (table/view/system-table
resolution, column lists); it never touches storage and never evaluates
expressions, so queries over empty tables keep the legacy behaviour of
not raising for column references that are never evaluated.

Output-column names are computed here, *before* the optimizer rewrites
any expressions — constant folding must not rename a ``SELECT 1+2``
column from ``(1 + 2)`` to ``3``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.vertica.errors import SqlError
from repro.vertica.expr import Expression
from repro.vertica.plan.logical import (
    Aggregate,
    ConstantRelation,
    Filter,
    Join,
    Limit,
    LogicalNode,
    LogicalPlan,
    Project,
    RelationNode,
    Sort,
    StorageContainersScan,
    SystemTableScan,
    TableScan,
    ViewScan,
    _item_name,
)
from repro.vertica.sql import ast_nodes as ast


def bind_select(database, statement: ast.Select) -> LogicalPlan:
    """Bind one SELECT against the catalog into a logical tree."""
    source_columns: List[str] = []
    if statement.source is None:
        root: LogicalNode = ConstantRelation()
    else:
        root = _bind_relation(database, statement.source)
        source_columns = relation_columns(database, statement.source.name)
        for join in statement.joins:
            right = _bind_relation(database, join.table)
            right_columns = relation_columns(database, join.table.name)
            root = Join(root, right, join.condition)
            source_columns = source_columns + [
                c for c in right_columns if c not in source_columns
            ]

    if statement.where is not None:
        root = Filter(root, statement.where)

    has_aggregate = any(item.aggregate for item in statement.items)
    if has_aggregate or statement.group_by:
        output_columns = [_item_name(item) for item in statement.items]
        root = Aggregate(
            root, statement.items, statement.group_by, statement.having,
            output_columns,
        )
    else:
        output_columns = []
        for item in statement.items:
            if item.star:
                output_columns.extend(source_columns)
            else:
                output_columns.append(_item_name(item))
        root = Project(root, statement.items, source_columns, output_columns)

    if statement.order_by:
        root = Sort(root, statement.order_by)
    if statement.limit is not None:
        root = Limit(root, statement.limit)
    return LogicalPlan(root, statement, output_columns, source_columns)


def bind_dml_scan(
    database, table_name: str, where: Optional[Expression]
) -> LogicalPlan:
    """Bind the matching scan of an UPDATE/DELETE.

    DML scans read every physical copy (``for_update``), add no
    alias-qualified columns, and are exempt from hash-range tightening
    and projection pruning — the statement needs full rows of every
    replica, and its CostReport must count every copy's rows.
    """
    table = database.catalog.table(table_name)
    scan = TableScan(table.name, table.name, table)
    scan.for_update = True
    scan.qualify = False
    scan.predicate = where
    columns = table.column_names()
    plan = LogicalPlan(scan, None, columns, columns)
    plan.pristine_where = where
    return plan


def _bind_relation(database, ref: ast.TableRef) -> RelationNode:
    key = ref.name.upper()
    alias = (ref.alias or ref.name.split(".")[-1]).upper()
    if key == "V_MONITOR.STORAGE_CONTAINERS":
        return StorageContainersScan(alias)
    if database.catalog.is_system_table(key):
        return SystemTableScan(key, alias)
    if database.catalog.has_view(key):
        return ViewScan(key, alias)
    table = database.catalog.table(key)  # raises CatalogError when unknown
    return TableScan(key, alias, table)


def relation_columns(database, name: str) -> List[str]:
    """Column order of a relation (for ``*`` expansion), legacy rules."""
    key = name.upper()
    if key == "V_MONITOR.STORAGE_CONTAINERS":
        return ["NODE_NAME", "TABLE_NAME", "CONTAINER_COUNT", "LIVE_ROWS"]
    if database.catalog.is_system_table(key):
        columns, __ = database.catalog.system_table_rows(
            key, database.epochs.current, database.node_states
        )
        return columns
    if database.catalog.has_view(key):
        view = database.catalog.view(key)
        return select_output_columns(database, view.query)
    return database.catalog.table(key).column_names()


def select_output_columns(database, statement: ast.Select) -> List[str]:
    """Output columns of a nested SELECT (view column resolution)."""
    out: List[str] = []
    for item in statement.items:
        if item.star:
            if statement.source is None:
                raise SqlError("SELECT * requires a FROM clause")
            out.extend(relation_columns(database, statement.source.name))
            for join in statement.joins:
                for column in relation_columns(database, join.table.name):
                    if column not in out:
                        out.append(column)
        else:
            out.append(_item_name(item))
    return out
