"""Typed logical plan nodes.

The binder produces a tree of these from a parsed ``Select``; the
optimizer rewrites the tree in place.  Nodes hold *resolved* catalog
references (``TableDef`` for table scans) but never touch storage —
execution belongs to :mod:`repro.vertica.plan.physical`.

Tree shape (top-down)::

    Limit -> Sort -> (Project | Aggregate) -> [Filter] -> [Join]* -> relation

where a relation is one of ``ConstantRelation`` (no FROM),
``TableScan``, ``SystemTableScan``, ``StorageContainersScan`` or
``ViewScan``.  Joins are left-deep: each ``Join`` node's right side is a
bare relation, mirroring the FROM-list the parser produces.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.vertica.engine import HashRange
from repro.vertica.expr import Expression
from repro.vertica.sql import ast_nodes as ast


class LogicalNode:
    """Base class; ``children`` drive generic tree walks."""

    #: cost-model output-row estimate (None until the estimation pass runs,
    #: or when no estimate is possible — e.g. below a view expansion)
    estimated_rows: Optional[int] = None

    def children(self) -> List["LogicalNode"]:
        return []

    def label(self) -> str:
        raise NotImplementedError


class RelationNode(LogicalNode):
    """A leaf producing rows; carries the FROM-clause alias."""

    alias: str = ""


class ConstantRelation(RelationNode):
    """SELECT without FROM: exactly one empty row on the initiator."""

    def label(self) -> str:
        return "EXPR: constant projection (no FROM)"


class TableScan(RelationNode):
    """A base-table scan, the only node the optimizer pushes into."""

    def __init__(self, key: str, alias: str, table: Any):
        self.key = key
        self.alias = alias
        self.table = table  # catalog TableDef
        #: predicate pushed below batching (applied row-wise during scan)
        self.predicate: Optional[Expression] = None
        #: segment restriction extracted from the WHERE clause
        self.hash_range: Optional[HashRange] = None
        #: pruned column subset; None means all table columns
        self.columns: Optional[List[str]] = None
        #: DML matching scans read every physical copy and skip pruning
        self.for_update: bool = False
        #: expose ``ALIAS.column`` names alongside plain ones (SELECT only)
        self.qualify: bool = True

    def label(self) -> str:
        if self.table.unsegmented:
            return f"SCAN {self.key} [unsegmented]"
        seg = ", ".join(self.table.segmentation_columns)
        return f"SCAN {self.key} [segmented by HASH({seg})]"


class SystemTableScan(RelationNode):
    def __init__(self, key: str, alias: str):
        self.key = key
        self.alias = alias

    def label(self) -> str:
        return f"SCAN SYSTEM TABLE {self.key}"


class StorageContainersScan(RelationNode):
    """V_MONITOR.STORAGE_CONTAINERS — computed from tuple-mover stats."""

    def __init__(self, alias: str):
        self.alias = alias

    def label(self) -> str:
        return "SCAN SYSTEM TABLE V_MONITOR.STORAGE_CONTAINERS"


class ViewScan(RelationNode):
    """A view reference, expanded through the full pipeline at execution."""

    def __init__(self, key: str, alias: str):
        self.key = key
        self.alias = alias

    def label(self) -> str:
        return f"SCAN VIEW {self.key} (expanded at execution)"


class Join(LogicalNode):
    """Inner join; right side is always a bare relation.

    The optimizer's join-strategy rule annotates the physical choice:
    ``strategy`` (one of ``nested-loop``, ``hash``, ``merge``),
    ``build_side`` (hash build / outer merge input), the equi-join key
    pairs it extracted from the condition, and whether the two sides are
    identically segmented on those keys (``colocated`` — the paper's
    shuffle-free co-located join).
    """

    def __init__(self, left: LogicalNode, right: RelationNode, condition: Expression):
        self.left = left
        self.right = right
        self.condition = condition
        self.strategy: str = "nested-loop"
        self.build_side: str = "right"
        #: equi-join key pairs as (left expr name, right expr name)
        self.equi_keys: List[Any] = []
        self.colocated: bool = False
        #: whether the equi keys sort cleanly (adaptive demotion needs this)
        self.keys_sortable: bool = False
        #: set on every join of a cost-reordered chain; the executor then
        #: tracks row provenance so output order can be restored
        self.reorder_chain: bool = False
        #: on the chain root only: relation aliases in original binder
        #: order — the executor sorts final pairs back into this order so
        #: reordering never changes the emitted byte sequence
        self.restore_order: Optional[List[str]] = None

    def children(self) -> List[LogicalNode]:
        return [self.left, self.right]

    def label(self) -> str:
        name = getattr(self.right, "key", "?")
        base = f"JOIN {name} ON {self.condition.sql()}"
        notes = [f"{self.strategy} join"]
        if self.strategy in ("hash", "merge"):
            notes.append(f"build: {self.build_side}")
        if self.colocated:
            notes.append("co-located")
        if self.reorder_chain:
            notes.append("reordered")
        return f"{base} [{', '.join(notes)}]"


class Filter(LogicalNode):
    def __init__(self, child: LogicalNode, predicate: Expression):
        self.child = child
        self.predicate = predicate

    def children(self) -> List[LogicalNode]:
        return [self.child]

    def label(self) -> str:
        return f"FILTER: {self.predicate.sql()}"


class Project(LogicalNode):
    """Scalar projection (select list without aggregates)."""

    def __init__(
        self,
        child: LogicalNode,
        items: Sequence[ast.SelectItem],
        source_columns: Sequence[str],
        output_columns: Sequence[str],
    ):
        self.child = child
        self.items = list(items)
        self.source_columns = list(source_columns)
        self.output_columns = list(output_columns)

    def children(self) -> List[LogicalNode]:
        return [self.child]

    def label(self) -> str:
        names = ", ".join(
            "*" if item.star else _item_name(item) for item in self.items
        )
        return f"PROJECT: {names}"


class Aggregate(LogicalNode):
    """GROUP BY / aggregate evaluation (one output row per group)."""

    def __init__(
        self,
        child: LogicalNode,
        items: Sequence[ast.SelectItem],
        group_by: Sequence[Expression],
        having: Optional[Expression],
        output_columns: Sequence[str],
    ):
        self.child = child
        self.items = list(items)
        self.group_by = list(group_by)
        self.having = having
        self.output_columns = list(output_columns)

    def children(self) -> List[LogicalNode]:
        return [self.child]

    def label(self) -> str:
        names = ", ".join(_item_name(item) for item in self.items)
        return f"AGGREGATE: {names}"


class Sort(LogicalNode):
    def __init__(self, child: LogicalNode, order_by: Sequence[ast.OrderItem]):
        self.child = child
        self.order_by = list(order_by)

    def children(self) -> List[LogicalNode]:
        return [self.child]

    def label(self) -> str:
        keys = ", ".join(
            o.expression.sql() + (" DESC" if o.descending else "")
            for o in self.order_by
        )
        return f"SORT: {keys}"


class Limit(LogicalNode):
    def __init__(self, child: LogicalNode, count: int):
        self.child = child
        self.count = count

    def children(self) -> List[LogicalNode]:
        return [self.child]

    def label(self) -> str:
        return f"LIMIT: {self.count}"


class LogicalPlan:
    """A bound (and later optimized) plan plus its static metadata."""

    def __init__(
        self,
        root: LogicalNode,
        statement: ast.Select,
        output_columns: List[str],
        source_columns: List[str],
    ):
        self.root = root
        self.statement = statement
        self.output_columns = output_columns
        self.source_columns = source_columns
        #: the WHERE clause exactly as parsed — hash-range tightening reads
        #: this (not the folded copy) so pruning matches the legacy
        #: interpreter conjunct-for-conjunct
        self.pristine_where: Optional[Expression] = (
            statement.where if statement is not None else None
        )
        #: names of optimizer rules that rewrote the tree, in firing order
        self.rules_applied: List[str] = []

    def nodes(self) -> List[LogicalNode]:
        out: List[LogicalNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(reversed(node.children()))
        return out


def _item_name(item: ast.SelectItem) -> str:
    """Output-column name of one select-list item (legacy rules)."""
    from repro.vertica.expr import ColumnRef

    if item.alias:
        return item.alias
    if item.aggregate:
        if item.aggregate_arg is None:
            return f"{item.aggregate}(*)"
        return f"{item.aggregate}({item.aggregate_arg.sql()})"
    if item.udf:
        return item.udf
    assert item.expression is not None
    if isinstance(item.expression, ColumnRef):
        return item.expression.name.split(".")[-1]
    return item.expression.sql()
