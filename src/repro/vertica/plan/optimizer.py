"""Rule-based optimizer over the logical plan.

Rules run in a fixed order and record their names in
``plan.rules_applied`` when they rewrite the tree:

1. **constant folding** — literal-only subexpressions are evaluated at
   plan time.  A subtree whose evaluation raises (``1/0``) is left
   unfolded so the error still surfaces at execution, exactly when the
   legacy interpreter raised it (i.e. never, for queries that evaluate
   zero rows).
2. **hash-range tightening** — ``extract_hash_range`` over the *pristine*
   WHERE clause (as parsed, not the folded copy — folding could make new
   conjuncts recognisable and change which segments the legacy
   interpreter would have scanned, breaking byte-identical CostReports)
   restricts the FROM table's scan to intersecting segments.
3. **predicate pushdown** — with a single-table FROM (no joins), the
   Filter node collapses into the scan, which applies the predicate
   row-wise while batching.  Views and system tables keep their Filter
   above (their rows are computed, not scanned).
4. **projection pruning** — base-table scans materialize only columns
   referenced anywhere in the query.  Disabled whenever ``*`` or
   ``SYNTHETIC_HASH()`` appears (both observe entire rows).

DML matching scans (``for_update``) only ever get constant folding: the
statement must visit and charge every replica row, so tightening/pruning
would change its CostReport.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Any, Dict, List, Optional, Set, Tuple

from repro import telemetry
from repro.vertica.engine import HASH_SPACE, extract_hash_range
from repro.vertica.errors import VerticaError
from repro.vertica.expr import (
    Between,
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Star,
    UnaryOp,
)
from repro.vertica.plan import logical
from repro.vertica.plan.logical import LogicalPlan, TableScan
from repro.vertica.sql import ast_nodes as ast

RULE_CONSTANT_FOLDING = "constant folding"
RULE_HASH_RANGE = "hash-range tightening"
RULE_PREDICATE_PUSHDOWN = "predicate pushdown"
RULE_PROJECTION_PRUNING = "projection pruning"
RULE_JOIN_REORDER = "join reordering"
RULE_JOIN_STRATEGY = "join-strategy selection"

#: an estimated hash build side larger than this spills; prefer merge join
JOIN_BUILD_MEMORY_ROWS = 65_536


def optimize(plan: LogicalPlan, database) -> LogicalPlan:
    """Apply all rules in order, recording the ones that fired."""
    if _fold_plan(plan):
        plan.rules_applied.append(RULE_CONSTANT_FOLDING)
    if _tighten_hash_range(plan):
        plan.rules_applied.append(RULE_HASH_RANGE)
    if _push_predicate(plan):
        plan.rules_applied.append(RULE_PREDICATE_PUSHDOWN)
    if _prune_columns(plan):
        plan.rules_applied.append(RULE_PROJECTION_PRUNING)
    _estimate_node(plan.root, database)
    if getattr(database, "join_reorder", False) and _reorder_joins(
        plan, database
    ):
        plan.rules_applied.append(RULE_JOIN_REORDER)
        _estimate_node(plan.root, database)  # re-stamp the new shape
    if _plan_joins(plan, database):
        plan.rules_applied.append(RULE_JOIN_STRATEGY)
    return plan


# ---------------------------------------------------------------- folding
def fold_expression(expr: Expression) -> Tuple[Expression, bool]:
    """Fold literal-only subtrees; returns (new expression, changed?)."""
    if isinstance(expr, (Literal, ColumnRef, Star)):
        return expr, False
    if isinstance(expr, BinaryOp):
        left, lc = fold_expression(expr.left)
        right, rc = fold_expression(expr.right)
        node = BinaryOp(expr.op, left, right) if (lc or rc) else expr
        return _try_fold(node, [left, right], lc or rc)
    if isinstance(expr, UnaryOp):
        operand, changed = fold_expression(expr.operand)
        node = UnaryOp(expr.op, operand) if changed else expr
        return _try_fold(node, [operand], changed)
    if isinstance(expr, IsNull):
        operand, changed = fold_expression(expr.operand)
        node = IsNull(operand, expr.negated) if changed else expr
        return _try_fold(node, [operand], changed)
    if isinstance(expr, Between):
        operand, oc = fold_expression(expr.operand)
        low, lc = fold_expression(expr.low)
        high, hc = fold_expression(expr.high)
        changed = oc or lc or hc
        node = Between(operand, low, high) if changed else expr
        return _try_fold(node, [operand, low, high], changed)
    if isinstance(expr, InList):
        operand, oc = fold_expression(expr.operand)
        folded = [fold_expression(o) for o in expr.options]
        changed = oc or any(c for __, c in folded)
        options = [o for o, __ in folded]
        node = InList(operand, options, expr.negated) if changed else expr
        return _try_fold(node, [operand] + options, changed)
    if isinstance(expr, Like):
        operand, changed = fold_expression(expr.operand)
        node = Like(operand, expr.pattern, expr.negated) if changed else expr
        return _try_fold(node, [operand], changed)
    if isinstance(expr, FunctionCall):
        if expr.name == "SYNTHETIC_HASH":
            return expr, False  # observes the whole row; never foldable
        folded = [fold_expression(a) for a in expr.args]
        changed = any(c for __, c in folded)
        args = [a for a, __ in folded]
        node = FunctionCall(expr.name, args) if changed else expr
        return _try_fold(node, args, changed)
    return expr, False


def _try_fold(
    node: Expression, children: List[Expression], changed: bool
) -> Tuple[Expression, bool]:
    if all(isinstance(c, Literal) for c in children):
        try:
            return Literal(node.evaluate({})), True
        except VerticaError:
            # Leave unfolded: the *user's* error (if the row count makes
            # it reachable at all) must surface at execution time.  Only
            # the engine's own evaluation errors qualify — anything else
            # (a TypeError from a malformed evaluate, an AttributeError)
            # is a programming bug and must propagate, not silently
            # disable folding.
            pass
    return node, changed


def _fold_optional(expr: Optional[Expression]) -> Tuple[Optional[Expression], bool]:
    if expr is None:
        return None, False
    return fold_expression(expr)


def _fold_item(item: ast.SelectItem) -> Tuple[ast.SelectItem, bool]:
    expression, ec = _fold_optional(item.expression)
    aggregate_arg, ac = _fold_optional(item.aggregate_arg)
    folded_args = [fold_expression(a) for a in item.udf_args]
    uc = any(c for __, c in folded_args)
    if not (ec or ac or uc):
        return item, False
    return (
        dc_replace(
            item,
            expression=expression,
            aggregate_arg=aggregate_arg,
            udf_args=[a for a, __ in folded_args],
        ),
        True,
    )


def _fold_plan(plan: LogicalPlan) -> bool:
    changed = False
    for node in plan.nodes():
        if isinstance(node, TableScan) and node.predicate is not None:
            node.predicate, c = fold_expression(node.predicate)
            changed |= c
        elif isinstance(node, logical.Filter):
            node.predicate, c = fold_expression(node.predicate)
            changed |= c
        elif isinstance(node, logical.Join):
            node.condition, c = fold_expression(node.condition)
            changed |= c
        elif isinstance(node, logical.Project):
            for i, item in enumerate(node.items):
                node.items[i], c = _fold_item(item)
                changed |= c
        elif isinstance(node, logical.Aggregate):
            for i, item in enumerate(node.items):
                node.items[i], c = _fold_item(item)
                changed |= c
            for i, expr in enumerate(node.group_by):
                node.group_by[i], c = fold_expression(expr)
                changed |= c
            node.having, c = _fold_optional(node.having)
            changed |= c
        elif isinstance(node, logical.Sort):
            for i, order in enumerate(node.order_by):
                folded, c = fold_expression(order.expression)
                if c:
                    node.order_by[i] = ast.OrderItem(folded, order.descending)
                    changed = True
    return changed


# ---------------------------------------------------------- hash tightening
def _from_scan(plan: LogicalPlan) -> Optional[TableScan]:
    """The FROM-clause table scan (leftmost leaf), if it is a base table."""
    node = plan.root
    while True:
        if isinstance(node, logical.Join):
            node = node.left
            continue
        children = node.children()
        if not children:
            break
        node = children[0]
    return node if isinstance(node, TableScan) else None


def _tighten_hash_range(plan: LogicalPlan) -> bool:
    scan = _from_scan(plan)
    if scan is None or scan.for_update:
        return False
    hash_range = extract_hash_range(
        plan.pristine_where, scan.table.segmentation_columns
    )
    scan.hash_range = hash_range
    return not hash_range.is_full


# ------------------------------------------------------------- pushdown
def _push_predicate(plan: LogicalPlan) -> bool:
    changed = False
    for node in plan.nodes():
        if not isinstance(node, logical.Filter):
            continue
        child = node.child
        if isinstance(child, TableScan) and not child.for_update:
            child.predicate = node.predicate
            _splice_out(plan, node, child)
            changed = True
        elif isinstance(child, logical.Join):
            changed |= _push_below_join(plan, node, child)
    return changed


def _split_and(expr: Expression) -> List[Expression]:
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return _split_and(expr.left) + _split_and(expr.right)
    return [expr]


def _rebuild_and(parts: List[Expression]) -> Expression:
    out = parts[0]
    for part in parts[1:]:
        out = BinaryOp("AND", out, part)
    return out


def _join_scans(node: logical.LogicalNode) -> Optional[List[TableScan]]:
    """All leaves of a join subtree, or None if any is not a base table."""
    if isinstance(node, logical.Join):
        left = _join_scans(node.left)
        right = _join_scans(node.right)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(node, TableScan):
        return [node]
    return None


def _scan_type_classes(scans: List[TableScan]) -> Dict[str, str]:
    """Column name -> 'num'/'str' for every resolvable name in the subtree.

    Plain names resolve left-first, matching the left-wins merge the join
    applies to ambiguous columns; alias-qualified names are unambiguous.
    """
    types: Dict[str, str] = {}
    for scan in scans:
        for column_def in scan.table.columns:
            type_name = column_def.sql_type.name
            klass = "str" if type_name.startswith("VARCHAR") else "num"
            types.setdefault(column_def.name, klass)
            types[f"{scan.alias}.{column_def.name}"] = klass
    return types


def _subtree_names(node: logical.LogicalNode) -> Set[str]:
    if isinstance(node, TableScan):
        names = set(node.table.column_names())
        names.update(f"{node.alias}.{c}" for c in node.table.column_names())
        return names
    if isinstance(node, logical.Join):
        return _subtree_names(node.left) | _subtree_names(node.right)
    return set()


_EQUALITY_OPS = ("=", "<>", "!=")
_RANGE_OPS = ("<", "<=", ">", ">=")


def _operand_class(expr: Expression, types: Dict[str, str]) -> Optional[str]:
    if isinstance(expr, Literal):
        if expr.value is None:
            return "null"
        if isinstance(expr.value, str):
            return "str"
        if isinstance(expr.value, (bool, int, float)):
            return "num"
        return None
    if isinstance(expr, ColumnRef):
        return types.get(expr.name)
    return None


def _is_simple(expr: Expression) -> bool:
    return isinstance(expr, (Literal, ColumnRef))


def _never_raises(expr: Expression, types: Dict[str, str]) -> bool:
    """Conservatively true when evaluating ``expr`` can never raise.

    The legacy interpreter's AND/OR are *eager*: every WHERE conjunct and
    every join condition is evaluated on every joined row.  Pushing a
    conjunct below a join skips those evaluations for the rows it
    excludes, which is only indistinguishable from the legacy order when
    none of the skipped evaluations could have raised.  Operands are
    restricted to bare columns/literals; ranged comparisons additionally
    need both type classes known and equal (mixed-type comparison raises
    ``SqlError``), and ``BETWEEN``/arithmetic are excluded outright.
    """
    if isinstance(expr, (Literal, ColumnRef)):
        return True  # ref presence is guaranteed by the side-name check
    if isinstance(expr, BinaryOp):
        if expr.op in ("AND", "OR"):
            return _never_raises(expr.left, types) and _never_raises(
                expr.right, types
            )
        if expr.op in _EQUALITY_OPS:
            return _is_simple(expr.left) and _is_simple(expr.right)
        if expr.op in _RANGE_OPS:
            if not (_is_simple(expr.left) and _is_simple(expr.right)):
                return False
            left = _operand_class(expr.left, types)
            right = _operand_class(expr.right, types)
            if left == "null" or right == "null":
                return True  # NULL comparison short-circuits to NULL
            return left is not None and left == right
        return False
    if isinstance(expr, UnaryOp):
        return expr.op == "NOT" and _never_raises(expr.operand, types)
    if isinstance(expr, (IsNull, Like)):
        return _is_simple(expr.operand)
    if isinstance(expr, InList):
        return _is_simple(expr.operand) and all(
            isinstance(o, Literal) for o in expr.options
        )
    return False


def _merge_side(
    name: str, left_names: Set[str], right_names: Set[str]
) -> Optional[str]:
    """Which side's value ``name`` resolves to under the join merge.

    The merge is right ∪ left (left wins) with the right side's
    *qualified* names re-applied last — so qualified names resolve right
    first, plain names left first.
    """
    if "." in name:
        if name in right_names:
            return "right"
        if name in left_names:
            return "left"
    else:
        if name in left_names:
            return "left"
        if name in right_names:
            return "right"
    return None


def _push_target(
    join: logical.Join, conjunct: Expression
) -> Optional[TableScan]:
    """The scan a one-sided conjunct can move into, descending the chain."""
    refs = set(conjunct.columns())
    node: logical.LogicalNode = join
    while isinstance(node, logical.Join):
        left_names = _subtree_names(node.left)
        right_names = _subtree_names(node.right)
        sides = {_merge_side(r, left_names, right_names) for r in refs}
        if sides == {"left"}:
            node = node.left
            continue
        if sides == {"right"}:
            node = node.right
            continue
        return None
    if isinstance(node, TableScan) and not node.for_update:
        return node
    return None


def _push_below_join(
    plan: LogicalPlan, filter_node: logical.Filter, join: logical.Join
) -> bool:
    """Split a WHERE above a join and push one-sided conjuncts into scans.

    Fires only when *every* WHERE conjunct and *every* join condition in
    the subtree is provably never-raising: the legacy oracle evaluates all
    of them on all joined rows, so an error anywhere must keep surfacing
    even for rows a pushed conjunct would have excluded.
    """
    scans = _join_scans(join)
    if scans is None:
        return False  # a view/system-table side: schema unknown, keep Filter
    types = _scan_type_classes(scans)
    conditions: List[Expression] = []
    stack: List[logical.LogicalNode] = [join]
    while stack:
        node = stack.pop()
        if isinstance(node, logical.Join):
            conditions.append(node.condition)
            stack.extend(node.children())
    if not all(_never_raises(c, types) for c in conditions):
        return False
    conjuncts = _split_and(filter_node.predicate)
    if not all(_never_raises(c, types) for c in conjuncts):
        return False
    residual: List[Expression] = []
    pushed = False
    for conjunct in conjuncts:
        scan = _push_target(join, conjunct)
        if scan is None:
            residual.append(conjunct)
            continue
        if scan.predicate is None:
            scan.predicate = conjunct
        else:
            scan.predicate = BinaryOp("AND", scan.predicate, conjunct)
        pushed = True
    if not pushed:
        return False
    if residual:
        filter_node.predicate = _rebuild_and(residual)
    else:
        _splice_out(plan, filter_node, join)
    return True


def _splice_out(plan: LogicalPlan, node, replacement) -> None:
    if plan.root is node:
        plan.root = replacement
        return
    for candidate in plan.nodes():
        if getattr(candidate, "child", None) is node:
            candidate.child = replacement
            return
        if getattr(candidate, "left", None) is node:
            candidate.left = replacement
            return
        if getattr(candidate, "right", None) is node:
            candidate.right = replacement
            return


# --------------------------------------------------------------- pruning
def _contains_synthetic_hash(expr: Optional[Expression]) -> bool:
    if expr is None:
        return False
    if isinstance(expr, FunctionCall):
        if expr.name == "SYNTHETIC_HASH":
            return True
        return any(_contains_synthetic_hash(a) for a in expr.args)
    if isinstance(expr, BinaryOp):
        return _contains_synthetic_hash(expr.left) or _contains_synthetic_hash(
            expr.right
        )
    if isinstance(expr, (UnaryOp, IsNull, Like)):
        return _contains_synthetic_hash(expr.operand)
    if isinstance(expr, Between):
        return any(
            _contains_synthetic_hash(e) for e in (expr.operand, expr.low, expr.high)
        )
    if isinstance(expr, InList):
        return _contains_synthetic_hash(expr.operand) or any(
            _contains_synthetic_hash(o) for o in expr.options
        )
    return False


def _all_expressions(plan: LogicalPlan) -> List[Expression]:
    out: List[Expression] = []
    for node in plan.nodes():
        if isinstance(node, TableScan):
            if node.predicate is not None:
                out.append(node.predicate)
        elif isinstance(node, logical.Filter):
            out.append(node.predicate)
        elif isinstance(node, logical.Join):
            out.append(node.condition)
        elif isinstance(node, (logical.Project, logical.Aggregate)):
            for item in node.items:
                if item.expression is not None:
                    out.append(item.expression)
                if item.aggregate_arg is not None:
                    out.append(item.aggregate_arg)
                out.extend(item.udf_args)
            if isinstance(node, logical.Aggregate):
                out.extend(node.group_by)
                if node.having is not None:
                    out.append(node.having)
        elif isinstance(node, logical.Sort):
            out.extend(o.expression for o in node.order_by)
    return out


# ---------------------------------------------------------- cost model
def _table_base_rows(database, table) -> int:
    """Cheap physical row count (container metadata, not visibility)."""
    nodes = (
        [database.node_names[0]] if table.unsegmented else database.node_names
    )
    total = 0
    for node in nodes:
        for container in database.storage[node].table_containers(table.name):
            total += container.nrows
    return total


def _stats_for_scan(database, scan: TableScan):
    return database.catalog.statistics.get(scan.table.name)


def _scan_column_stats(database, scan: TableScan, name: str):
    stats = _stats_for_scan(database, scan)
    if stats is None:
        return None
    return stats.column(name.split(".")[-1])


def _subtree_column_stats(database, node: logical.LogicalNode, name: str):
    """Resolve a column ref to its scan's stats, left-first on plain names."""
    if isinstance(node, TableScan):
        if name in _subtree_names(node):
            return _scan_column_stats(database, node, name)
        return None
    if isinstance(node, logical.Join):
        found = _subtree_column_stats(database, node.left, name)
        if found is not None or name in _subtree_names(node.left):
            return found
        return _subtree_column_stats(database, node.right, name)
    if isinstance(node, logical.Filter):
        return _subtree_column_stats(database, node.child, name)
    return None


def _col_and_literal(
    expr: BinaryOp,
) -> Tuple[Optional[str], Optional[Any], str]:
    """(column name, literal value, effective op) for col-vs-literal compares."""
    if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
        return expr.left.name, expr.right.value, expr.op
    if isinstance(expr.left, Literal) and isinstance(expr.right, ColumnRef):
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        return (
            expr.right.name,
            expr.left.value,
            flipped.get(expr.op, expr.op),
        )
    return None, None, expr.op


def _selectivity(database, relation, expr: Expression) -> float:
    """Estimated fraction of rows satisfying ``expr`` (textbook formulas)."""

    def column_stats(name: str):
        return _subtree_column_stats(database, relation, name)

    if isinstance(expr, Literal):
        return 1.0 if expr.value is True else 0.0
    if isinstance(expr, BinaryOp):
        if expr.op == "AND":
            return _selectivity(database, relation, expr.left) * _selectivity(
                database, relation, expr.right
            )
        if expr.op == "OR":
            s1 = _selectivity(database, relation, expr.left)
            s2 = _selectivity(database, relation, expr.right)
            return min(1.0, s1 + s2 - s1 * s2)
        name, value, op = _col_and_literal(expr)
        if expr.op == "=":
            if name is not None:
                cs = column_stats(name)
                if cs is not None:
                    return cs.equality_selectivity()
            return 0.1
        if expr.op in ("<>", "!="):
            if name is not None:
                cs = column_stats(name)
                if cs is not None:
                    return max(0.0, 1.0 - cs.equality_selectivity())
            return 0.9
        if expr.op in _RANGE_OPS:
            if name is not None:
                cs = column_stats(name)
                if cs is not None:
                    return cs.range_selectivity(op, value)
            return 1.0 / 3.0
        return 1.0 / 3.0
    if isinstance(expr, UnaryOp) and expr.op == "NOT":
        return max(0.0, 1.0 - _selectivity(database, relation, expr.operand))
    if isinstance(expr, IsNull):
        fraction = 0.1
        if isinstance(expr.operand, ColumnRef):
            cs = column_stats(expr.operand.name)
            if cs is not None:
                fraction = cs.null_fraction
        return max(0.0, 1.0 - fraction) if expr.negated else fraction
    if isinstance(expr, Like):
        return 0.25
    if isinstance(expr, InList):
        eq = 0.1
        if isinstance(expr.operand, ColumnRef):
            cs = column_stats(expr.operand.name)
            if cs is not None:
                eq = cs.equality_selectivity()
        fraction = min(1.0, eq * max(1, len(expr.options)))
        return max(0.0, 1.0 - fraction) if expr.negated else fraction
    if isinstance(expr, Between):
        if isinstance(expr.operand, ColumnRef):
            cs = column_stats(expr.operand.name)
            if (
                cs is not None
                and isinstance(expr.low, Literal)
                and isinstance(expr.high, Literal)
            ):
                below_high = cs.range_selectivity("<=", expr.high.value)
                below_low = cs.range_selectivity("<", expr.low.value)
                return max(0.0, below_high - below_low)
        return 1.0 / 3.0
    return 1.0 / 3.0


def _equi_key_pairs(join: logical.Join) -> List[Tuple[str, str]]:
    """(left ref, right ref) pairs from ``a = b`` conjuncts of the condition.

    A ref resolves the way the join merge does: plain names present on the
    left belong to the left side (left wins on ambiguity).
    """
    left_names = _subtree_names(join.left)
    right_names = _subtree_names(join.right)

    def side_of(name: str) -> Optional[str]:
        return _merge_side(name, left_names, right_names)

    pairs: List[Tuple[str, str]] = []
    for conjunct in _split_and(join.condition):
        if not (
            isinstance(conjunct, BinaryOp)
            and conjunct.op == "="
            and isinstance(conjunct.left, ColumnRef)
            and isinstance(conjunct.right, ColumnRef)
        ):
            continue
        a, b = conjunct.left.name, conjunct.right.name
        if side_of(a) == "left" and side_of(b) == "right":
            pairs.append((a, b))
        elif side_of(a) == "right" and side_of(b) == "left":
            pairs.append((b, a))
    return pairs


def _estimate_node(node: logical.LogicalNode, database) -> Optional[int]:
    """Annotate ``estimated_rows`` bottom-up; None where no estimate exists."""
    for child in node.children():
        _estimate_node(child, database)
    estimate = _estimate_rows(node, database)
    node.estimated_rows = estimate
    return estimate


def _estimate_rows(node: logical.LogicalNode, database) -> Optional[int]:
    if isinstance(node, TableScan):
        stats = _stats_for_scan(database, node)
        base = float(
            stats.row_count
            if stats is not None
            else _table_base_rows(database, node.table)
        )
        corrections = getattr(database, "stats_corrections", None)
        if corrections is not None:
            # feedback loop: scale stale statistics by the blended
            # actual/estimated ratio observed on earlier executions
            base *= corrections.factor(node.table.name)
        if (
            node.hash_range is not None
            and not node.hash_range.is_full
            and not node.table.unsegmented
        ):
            span = max(0, node.hash_range.hi - node.hash_range.lo)
            base *= span / HASH_SPACE
        if node.predicate is not None:
            base *= _selectivity(database, node, node.predicate)
        return max(0, round(base))
    if isinstance(node, logical.ConstantRelation):
        return 1
    if isinstance(node, logical.Join):
        left = node.left.estimated_rows
        right = node.right.estimated_rows
        if left is None or right is None:
            return None
        pairs = _equi_key_pairs(node)
        cross = float(left * right)
        if not pairs:
            return max(0, round(cross / 3.0))
        denominator = 1.0
        for left_ref, right_ref in pairs:
            left_cs = _subtree_column_stats(database, node.left, left_ref)
            right_cs = _subtree_column_stats(database, node.right, right_ref)
            default = max(1, min(left, right))  # FK-ish fallback guess
            left_ndv = (
                left_cs.ndv if left_cs is not None and left_cs.ndv > 0 else default
            )
            right_ndv = (
                right_cs.ndv if right_cs is not None and right_cs.ndv > 0 else default
            )
            denominator *= max(left_ndv, right_ndv, 1)
        return max(0, round(cross / denominator))
    if isinstance(node, logical.Filter):
        child = node.child.estimated_rows
        if child is None:
            return None
        return max(
            0, round(child * _selectivity(database, node.child, node.predicate))
        )
    if isinstance(node, logical.Project):
        return node.child.estimated_rows
    if isinstance(node, logical.Aggregate):
        child = node.child.estimated_rows
        if child is None:
            return None
        if not node.group_by:
            return 1
        groups = 1.0
        for key in node.group_by:
            if isinstance(key, ColumnRef):
                cs = _subtree_column_stats(database, node.child, key.name)
                groups *= cs.ndv if cs is not None and cs.ndv > 0 else 10
            else:
                groups *= 10
        return max(0, min(child, round(groups)))
    if isinstance(node, logical.Sort):
        return node.child.estimated_rows
    if isinstance(node, logical.Limit):
        child = node.child.estimated_rows
        if child is None:
            return node.count
        return min(child, node.count)
    return None  # system tables / views: computed rows, no estimate


# ----------------------------------------------------- join strategies
def _same_ring(left_ring, right_ring) -> bool:
    left_segments = [(s.node, s.lo, s.hi) for s in left_ring.segments]
    right_segments = [(s.node, s.lo, s.hi) for s in right_ring.segments]
    return left_segments == right_segments


def _is_colocated(join: logical.Join, pairs: List[Tuple[str, str]]) -> bool:
    """Both sides base-table scans, same ring, equi keys = segmentation keys."""
    left, right = join.left, join.right
    if not (isinstance(left, TableScan) and isinstance(right, TableScan)):
        return False
    left_table, right_table = left.table, right.table
    if left_table.unsegmented or right_table.unsegmented:
        return False
    if left_table.ring is None or right_table.ring is None:
        return False
    if not _same_ring(left_table.ring, right_table.ring):
        return False
    left_seg = left_table.segmentation_columns
    right_seg = right_table.segmentation_columns
    if len(left_seg) != len(right_seg):
        return False
    pair_map = {
        left_ref.split(".")[-1]: right_ref.split(".")[-1]
        for left_ref, right_ref in pairs
    }
    return all(
        pair_map.get(left_col) == right_col
        for left_col, right_col in zip(left_seg, right_seg)
    )


def _keys_sortable(join: logical.Join, pairs: List[Tuple[str, str]]) -> bool:
    """True when every key pair has one known, shared type class.

    Merge join sorts both key arrays; Python refuses mixed-type ordering,
    so the planner only offers merge when the classes provably line up.
    """
    scans = _join_scans(join)
    if scans is None:
        return False
    types = _scan_type_classes(scans)
    for left_ref, right_ref in pairs:
        left_class = types.get(left_ref)
        if left_class is None or left_class != types.get(right_ref):
            return False
    return True


def _condition_safe(join: logical.Join) -> bool:
    """True when the join condition provably cannot raise mid-evaluation.

    Hash and merge joins evaluate the condition only on key-matching
    candidate pairs; the legacy nested loop evaluates it eagerly on
    *every* pair.  When a residual conjunct could raise — say a
    mixed-type range comparison — skipping pairs would also skip the
    error, so the planner keeps the nested loop even under a forced
    ``JOIN_STRATEGY`` override.
    """
    scans = _join_scans(join)
    if scans is None:
        return False
    return _never_raises(join.condition, _scan_type_classes(scans))


def _plan_joins(plan: LogicalPlan, database) -> bool:
    """Annotate every Join with strategy, build side, keys, co-location."""
    override = getattr(database, "join_strategy", "auto")
    changed = False
    for node in plan.nodes():
        if not isinstance(node, logical.Join):
            continue
        changed = True
        pairs = _equi_key_pairs(node)
        node.equi_keys = pairs
        node.colocated = bool(pairs) and _is_colocated(node, pairs)
        node.keys_sortable = bool(pairs) and _keys_sortable(node, pairs)
        if override == "nested-loop" or not pairs or not _condition_safe(node):
            node.strategy, node.build_side = "nested-loop", "right"
            continue
        left = node.left.estimated_rows
        right = node.right.estimated_rows
        build = (
            "left"
            if (left is not None and right is not None and left < right)
            else "right"
        )
        if override == "hash":
            node.strategy, node.build_side = "hash", build
            continue
        sortable = node.keys_sortable
        if override == "merge":
            if sortable:
                node.strategy, node.build_side = "merge", build
            else:
                node.strategy, node.build_side = "nested-loop", "right"
            continue
        build_rows = right if build == "right" else left
        if (
            sortable
            and build_rows is not None
            and build_rows > JOIN_BUILD_MEMORY_ROWS
        ):
            node.strategy, node.build_side = "merge", build
        else:
            node.strategy, node.build_side = "hash", build
    return changed


# ----------------------------------------------------- join reordering
def _reorder_joins(plan: LogicalPlan, database) -> bool:
    """Greedily reorder multi-way equi-join chains by estimated rows.

    The binder emits joins in FROM-list order (a left-deep "accident");
    this pass rebuilds each chain cheapest-pair-first: pick the two
    relations whose join has the smallest estimated output (co-located
    pairs win ties so shuffle-free joins stay shuffle-free), then
    repeatedly attach the remaining relation that keeps the running
    estimate smallest.  Every conjunct attaches to the first join where
    all of its relations are available, so each is still evaluated
    exactly once and the output row *set* is unchanged; the executor
    restores the original output *order* via the provenance markers this
    pass leaves behind (``reorder_chain`` / ``restore_order``), keeping
    reordered plans byte-identical to the legacy oracle.
    """
    override = getattr(database, "join_strategy", "auto")
    if override == "nested-loop":
        return False  # a forced nested loop cannot track provenance
    parent_ids: Set[int] = set()
    joins: List[logical.Join] = []
    for node in plan.nodes():
        if isinstance(node, logical.Join):
            joins.append(node)
            for child in node.children():
                parent_ids.add(id(child))
    changed = False
    for root in joins:
        if id(root) not in parent_ids:
            changed |= _reorder_chain(plan, root, database, override)
    return changed


def _reorder_chain(
    plan: LogicalPlan, root: logical.Join, database, override: str
) -> bool:
    """Rebuild one left-deep chain in greedy cost order; False if unsafe."""
    leaves = _join_scans(root)
    if leaves is None or len(leaves) < 3:
        return False
    if any(leaf.for_update for leaf in leaves):
        return False
    aliases = [leaf.alias for leaf in leaves]
    alias_set = set(aliases)
    if len(alias_set) != len(aliases):
        return False
    # Plain column names must be unique across the chain: the join merge
    # resolves ambiguous plain names left-first, so reordering could
    # change which table's value survives.
    owner: Dict[str, str] = {}
    for leaf in leaves:
        for column in leaf.table.column_names():
            if column in owner:
                return False
            owner[column] = leaf.alias
    types = _scan_type_classes(leaves)
    conjuncts: List[Expression] = []
    node: logical.LogicalNode = root
    while isinstance(node, logical.Join):
        conjuncts[:0] = _split_and(node.condition)
        node = node.left
    # Re-placing a conjunct means it filters pairs *earlier* than the
    # legacy eager evaluation would have reached; only provably
    # never-raising conditions keep the error behaviour identical.
    if not all(_never_raises(c, types) for c in conjuncts):
        return False
    conjunct_refs: List[Set[str]] = []
    for conjunct in conjuncts:
        refs: Set[str] = set()
        for name in conjunct.columns():
            if "." in name:
                alias = name.split(".", 1)[0]
                if alias not in alias_set:
                    return False
                refs.add(alias)
            else:
                if name not in owner:
                    return False
                refs.add(owner[name])
        conjunct_refs.append(refs)

    scans = {leaf.alias: leaf for leaf in leaves}
    binder_index = {alias: i for i, alias in enumerate(aliases)}
    unplaced = list(range(len(conjuncts)))

    def candidate(left_node, right_alias, available):
        """(join, conjunct indices) joining ``right_alias`` in, or None."""
        used = [i for i in unplaced if conjunct_refs[i] <= available]
        if not used:
            return None
        join = logical.Join(
            left_node, scans[right_alias],
            _rebuild_and([conjuncts[i] for i in used]),
        )
        pairs = _equi_key_pairs(join)
        if not pairs:
            return None  # no equi key: would degrade to a nested loop
        if override == "merge" and not _keys_sortable(join, pairs):
            return None  # a forced merge would fall back to nested loop
        colocated = _is_colocated(join, pairs)
        return join, used, colocated

    best = None
    for j in range(1, len(aliases)):
        for i in range(j):
            available = {aliases[i], aliases[j]}
            built = candidate(scans[aliases[i]], aliases[j], available)
            if built is None:
                continue
            join, used, colocated = built
            estimate = _estimate_rows(join, database)
            key = (estimate, 0 if colocated else 1, i, j)
            if best is None or key < best[0]:
                best = (key, join, used, aliases[i], aliases[j])
    if best is None:
        return False
    key, current, used, left_alias, right_alias = best
    current.estimated_rows = key[0]
    for index in used:
        unplaced.remove(index)
    order = [left_alias, right_alias]
    placed = {left_alias, right_alias}
    remaining = [alias for alias in aliases if alias not in placed]
    while remaining:
        best_ext = None
        for alias in remaining:
            built = candidate(current, alias, placed | {alias})
            if built is None:
                continue
            join, used, colocated = built
            estimate = _estimate_rows(join, database)
            key = (estimate, 0 if colocated else 1, binder_index[alias])
            if best_ext is None or key < best_ext[0]:
                best_ext = (key, join, used, alias)
        if best_ext is None:
            return False  # chain not fully connected by equi conjuncts
        key, current, used, alias = best_ext
        current.estimated_rows = key[0]
        for index in used:
            unplaced.remove(index)
        placed.add(alias)
        order.append(alias)
        remaining.remove(alias)
    if order == aliases:
        return False  # greedy agreed with the binder: keep the original tree
    node = current
    while isinstance(node, logical.Join):
        node.reorder_chain = True
        node = node.left
    current.restore_order = list(aliases)
    _splice_out(plan, root, current)
    telemetry.counter("vertica.plan.reorder.applied").inc()
    return True


def _prune_columns(plan: LogicalPlan) -> bool:
    for node in plan.nodes():
        if isinstance(node, (logical.Project, logical.Aggregate)):
            if any(item.star for item in node.items):
                return False
    expressions = _all_expressions(plan)
    if any(_contains_synthetic_hash(e) for e in expressions):
        return False
    needed: Set[str] = set()
    for expr in expressions:
        needed.update(expr.columns())
    pruned = False
    for node in plan.nodes():
        if not isinstance(node, TableScan) or node.for_update:
            continue
        keep = [
            c
            for c in node.table.column_names()
            if c in needed or f"{node.alias}.{c}" in needed
        ]
        if len(keep) < len(node.table.column_names()):
            node.columns = keep
            pruned = True
    return pruned
