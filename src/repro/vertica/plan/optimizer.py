"""Rule-based optimizer over the logical plan.

Rules run in a fixed order and record their names in
``plan.rules_applied`` when they rewrite the tree:

1. **constant folding** — literal-only subexpressions are evaluated at
   plan time.  A subtree whose evaluation raises (``1/0``) is left
   unfolded so the error still surfaces at execution, exactly when the
   legacy interpreter raised it (i.e. never, for queries that evaluate
   zero rows).
2. **hash-range tightening** — ``extract_hash_range`` over the *pristine*
   WHERE clause (as parsed, not the folded copy — folding could make new
   conjuncts recognisable and change which segments the legacy
   interpreter would have scanned, breaking byte-identical CostReports)
   restricts the FROM table's scan to intersecting segments.
3. **predicate pushdown** — with a single-table FROM (no joins), the
   Filter node collapses into the scan, which applies the predicate
   row-wise while batching.  Views and system tables keep their Filter
   above (their rows are computed, not scanned).
4. **projection pruning** — base-table scans materialize only columns
   referenced anywhere in the query.  Disabled whenever ``*`` or
   ``SYNTHETIC_HASH()`` appears (both observe entire rows).

DML matching scans (``for_update``) only ever get constant folding: the
statement must visit and charge every replica row, so tightening/pruning
would change its CostReport.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import List, Optional, Set, Tuple

from repro.vertica.engine import extract_hash_range
from repro.vertica.errors import VerticaError
from repro.vertica.expr import (
    Between,
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Star,
    UnaryOp,
)
from repro.vertica.plan import logical
from repro.vertica.plan.logical import LogicalPlan, TableScan
from repro.vertica.sql import ast_nodes as ast

RULE_CONSTANT_FOLDING = "constant folding"
RULE_HASH_RANGE = "hash-range tightening"
RULE_PREDICATE_PUSHDOWN = "predicate pushdown"
RULE_PROJECTION_PRUNING = "projection pruning"


def optimize(plan: LogicalPlan, database) -> LogicalPlan:
    """Apply all rules in order, recording the ones that fired."""
    if _fold_plan(plan):
        plan.rules_applied.append(RULE_CONSTANT_FOLDING)
    if _tighten_hash_range(plan):
        plan.rules_applied.append(RULE_HASH_RANGE)
    if _push_predicate(plan):
        plan.rules_applied.append(RULE_PREDICATE_PUSHDOWN)
    if _prune_columns(plan):
        plan.rules_applied.append(RULE_PROJECTION_PRUNING)
    return plan


# ---------------------------------------------------------------- folding
def fold_expression(expr: Expression) -> Tuple[Expression, bool]:
    """Fold literal-only subtrees; returns (new expression, changed?)."""
    if isinstance(expr, (Literal, ColumnRef, Star)):
        return expr, False
    if isinstance(expr, BinaryOp):
        left, lc = fold_expression(expr.left)
        right, rc = fold_expression(expr.right)
        node = BinaryOp(expr.op, left, right) if (lc or rc) else expr
        return _try_fold(node, [left, right], lc or rc)
    if isinstance(expr, UnaryOp):
        operand, changed = fold_expression(expr.operand)
        node = UnaryOp(expr.op, operand) if changed else expr
        return _try_fold(node, [operand], changed)
    if isinstance(expr, IsNull):
        operand, changed = fold_expression(expr.operand)
        node = IsNull(operand, expr.negated) if changed else expr
        return _try_fold(node, [operand], changed)
    if isinstance(expr, Between):
        operand, oc = fold_expression(expr.operand)
        low, lc = fold_expression(expr.low)
        high, hc = fold_expression(expr.high)
        changed = oc or lc or hc
        node = Between(operand, low, high) if changed else expr
        return _try_fold(node, [operand, low, high], changed)
    if isinstance(expr, InList):
        operand, oc = fold_expression(expr.operand)
        folded = [fold_expression(o) for o in expr.options]
        changed = oc or any(c for __, c in folded)
        options = [o for o, __ in folded]
        node = InList(operand, options, expr.negated) if changed else expr
        return _try_fold(node, [operand] + options, changed)
    if isinstance(expr, Like):
        operand, changed = fold_expression(expr.operand)
        node = Like(operand, expr.pattern, expr.negated) if changed else expr
        return _try_fold(node, [operand], changed)
    if isinstance(expr, FunctionCall):
        if expr.name == "SYNTHETIC_HASH":
            return expr, False  # observes the whole row; never foldable
        folded = [fold_expression(a) for a in expr.args]
        changed = any(c for __, c in folded)
        args = [a for a, __ in folded]
        node = FunctionCall(expr.name, args) if changed else expr
        return _try_fold(node, args, changed)
    return expr, False


def _try_fold(
    node: Expression, children: List[Expression], changed: bool
) -> Tuple[Expression, bool]:
    if all(isinstance(c, Literal) for c in children):
        try:
            return Literal(node.evaluate({})), True
        except VerticaError:
            # Leave unfolded: the *user's* error (if the row count makes
            # it reachable at all) must surface at execution time.  Only
            # the engine's own evaluation errors qualify — anything else
            # (a TypeError from a malformed evaluate, an AttributeError)
            # is a programming bug and must propagate, not silently
            # disable folding.
            pass
    return node, changed


def _fold_optional(expr: Optional[Expression]) -> Tuple[Optional[Expression], bool]:
    if expr is None:
        return None, False
    return fold_expression(expr)


def _fold_item(item: ast.SelectItem) -> Tuple[ast.SelectItem, bool]:
    expression, ec = _fold_optional(item.expression)
    aggregate_arg, ac = _fold_optional(item.aggregate_arg)
    folded_args = [fold_expression(a) for a in item.udf_args]
    uc = any(c for __, c in folded_args)
    if not (ec or ac or uc):
        return item, False
    return (
        dc_replace(
            item,
            expression=expression,
            aggregate_arg=aggregate_arg,
            udf_args=[a for a, __ in folded_args],
        ),
        True,
    )


def _fold_plan(plan: LogicalPlan) -> bool:
    changed = False
    for node in plan.nodes():
        if isinstance(node, TableScan) and node.predicate is not None:
            node.predicate, c = fold_expression(node.predicate)
            changed |= c
        elif isinstance(node, logical.Filter):
            node.predicate, c = fold_expression(node.predicate)
            changed |= c
        elif isinstance(node, logical.Join):
            node.condition, c = fold_expression(node.condition)
            changed |= c
        elif isinstance(node, logical.Project):
            for i, item in enumerate(node.items):
                node.items[i], c = _fold_item(item)
                changed |= c
        elif isinstance(node, logical.Aggregate):
            for i, item in enumerate(node.items):
                node.items[i], c = _fold_item(item)
                changed |= c
            for i, expr in enumerate(node.group_by):
                node.group_by[i], c = fold_expression(expr)
                changed |= c
            node.having, c = _fold_optional(node.having)
            changed |= c
        elif isinstance(node, logical.Sort):
            for i, order in enumerate(node.order_by):
                folded, c = fold_expression(order.expression)
                if c:
                    node.order_by[i] = ast.OrderItem(folded, order.descending)
                    changed = True
    return changed


# ---------------------------------------------------------- hash tightening
def _from_scan(plan: LogicalPlan) -> Optional[TableScan]:
    """The FROM-clause table scan (leftmost leaf), if it is a base table."""
    node = plan.root
    while True:
        if isinstance(node, logical.Join):
            node = node.left
            continue
        children = node.children()
        if not children:
            break
        node = children[0]
    return node if isinstance(node, TableScan) else None


def _tighten_hash_range(plan: LogicalPlan) -> bool:
    scan = _from_scan(plan)
    if scan is None or scan.for_update:
        return False
    hash_range = extract_hash_range(
        plan.pristine_where, scan.table.segmentation_columns
    )
    scan.hash_range = hash_range
    return not hash_range.is_full


# ------------------------------------------------------------- pushdown
def _push_predicate(plan: LogicalPlan) -> bool:
    for node in plan.nodes():
        if not isinstance(node, logical.Filter):
            continue
        child = node.child
        if isinstance(child, TableScan) and not child.for_update:
            child.predicate = node.predicate
            _splice_out(plan, node, child)
            return True
    return False


def _splice_out(plan: LogicalPlan, node, replacement) -> None:
    if plan.root is node:
        plan.root = replacement
        return
    for candidate in plan.nodes():
        if getattr(candidate, "child", None) is node:
            candidate.child = replacement
            return
        if getattr(candidate, "left", None) is node:
            candidate.left = replacement
            return
        if getattr(candidate, "right", None) is node:
            candidate.right = replacement
            return


# --------------------------------------------------------------- pruning
def _contains_synthetic_hash(expr: Optional[Expression]) -> bool:
    if expr is None:
        return False
    if isinstance(expr, FunctionCall):
        if expr.name == "SYNTHETIC_HASH":
            return True
        return any(_contains_synthetic_hash(a) for a in expr.args)
    if isinstance(expr, BinaryOp):
        return _contains_synthetic_hash(expr.left) or _contains_synthetic_hash(
            expr.right
        )
    if isinstance(expr, (UnaryOp, IsNull, Like)):
        return _contains_synthetic_hash(expr.operand)
    if isinstance(expr, Between):
        return any(
            _contains_synthetic_hash(e) for e in (expr.operand, expr.low, expr.high)
        )
    if isinstance(expr, InList):
        return _contains_synthetic_hash(expr.operand) or any(
            _contains_synthetic_hash(o) for o in expr.options
        )
    return False


def _all_expressions(plan: LogicalPlan) -> List[Expression]:
    out: List[Expression] = []
    for node in plan.nodes():
        if isinstance(node, TableScan):
            if node.predicate is not None:
                out.append(node.predicate)
        elif isinstance(node, logical.Filter):
            out.append(node.predicate)
        elif isinstance(node, logical.Join):
            out.append(node.condition)
        elif isinstance(node, (logical.Project, logical.Aggregate)):
            for item in node.items:
                if item.expression is not None:
                    out.append(item.expression)
                if item.aggregate_arg is not None:
                    out.append(item.aggregate_arg)
                out.extend(item.udf_args)
            if isinstance(node, logical.Aggregate):
                out.extend(node.group_by)
                if node.having is not None:
                    out.append(node.having)
        elif isinstance(node, logical.Sort):
            out.extend(o.expression for o in node.order_by)
    return out


def _prune_columns(plan: LogicalPlan) -> bool:
    for node in plan.nodes():
        if isinstance(node, (logical.Project, logical.Aggregate)):
            if any(item.star for item in node.items):
                return False
    expressions = _all_expressions(plan)
    if any(_contains_synthetic_hash(e) for e in expressions):
        return False
    needed: Set[str] = set()
    for expr in expressions:
        needed.update(expr.columns())
    pruned = False
    for node in plan.nodes():
        if not isinstance(node, TableScan) or node.for_update:
            continue
        keep = [
            c
            for c in node.table.column_names()
            if c in needed or f"{node.alias}.{c}" in needed
        ]
        if len(keep) < len(node.table.column_names()):
            node.columns = keep
            pruned = True
    return pruned
