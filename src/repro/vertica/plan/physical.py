"""Physical operators executing over columnar batches.

A :class:`ColumnBatch` is a chunk of up to :data:`BATCH_ROWS` rows stored
column-wise (``names[i]`` names the parallel value list ``columns[i]``),
plus a per-row producing-node list that keeps the legacy CostReport's
node attribution exact.  Alias-qualified column names (``P.ID``) share
the *same* list objects as their plain twins — the per-row dict copy the
legacy interpreter paid for qualification is gone entirely.

:class:`RowView` adapts one batch row back into the ``Mapping`` the
expression evaluator consumes, so ``Expression.evaluate`` (including
``SYNTHETIC_HASH``'s whole-row hash over sorted column names) works
unchanged over batches.

Fidelity notes (the differential suite enforces these):

- ``LimitOp`` drains its child fully before slicing — the legacy
  interpreter projected (and cost-charged) every row, then applied
  LIMIT, and ``CostReport`` must stay byte-identical.
- ``ProjectOp``/``AggregateOp`` materialize their input before
  evaluating, so evaluation errors and UDx resolution surface in the
  legacy order (scan errors first, then projection errors row-major).
- Aggregate output rows are attributed to the initiator, and the
  HAVING-bypassing "aggregate over empty input still returns one row"
  fallback is preserved bug-for-bug.

Every operator records :class:`OperatorStats` (rows in/out, bytes out,
inclusive wall time); the pipeline feeds them to ``PROFILE``,
``CostReport`` reconciliation, and ``telemetry``.
"""

from __future__ import annotations

import time
from collections.abc import Mapping
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.ordering import null_last_key
from repro.vertica.engine import CostReport, _value_bytes
from repro.vertica.errors import SqlError
from repro.vertica.expr import ColumnRef, predicate_holds
from repro.vertica.plan import logical
from repro.vertica.sql import ast_nodes as ast
from repro.vertica.txn import Transaction

BATCH_ROWS = 1024


class ColumnBatch:
    """Column-name → list-of-values chunk with per-row node attribution."""

    __slots__ = ("names", "columns", "nodes", "index")

    def __init__(
        self,
        names: List[str],
        columns: List[List[Any]],
        nodes: List[str],
    ):
        self.names = names
        self.columns = columns
        self.nodes = nodes
        self.index: Dict[str, int] = {}
        for i, name in enumerate(names):
            self.index[name] = i  # last occurrence wins, like dict(zip(...))

    @property
    def num_rows(self) -> int:
        return len(self.nodes)

    def rows(self) -> List[Tuple[Any, ...]]:
        """Materialize row tuples (used at pipeline edges only)."""
        if not self.columns:
            return [()] * len(self.nodes)
        return list(zip(*self.columns))


class RowView(Mapping):
    """One batch row as the Mapping the expression evaluator expects."""

    __slots__ = ("batch", "row")

    def __init__(self, batch: ColumnBatch, row: int):
        self.batch = batch
        self.row = row

    def __getitem__(self, key: str) -> Any:
        return self.batch.columns[self.batch.index[key]][self.row]

    def __iter__(self) -> Iterator[str]:
        return iter(self.batch.names)

    def __len__(self) -> int:
        return len(self.batch.names)


class OperatorStats:
    """Per-operator execution counters, feeding PROFILE and telemetry."""

    __slots__ = ("rows_in", "rows_out", "rows_scanned", "batches", "bytes_out",
                 "elapsed_s", "rows_shuffled")

    def __init__(self) -> None:
        self.rows_in = 0
        self.rows_out = 0
        #: rows visited by the storage scan (pre hash-range filtering);
        #: mirrors what the scan charged into ``CostReport.rows_scanned``
        self.rows_scanned = 0
        self.batches = 0
        self.bytes_out = 0.0
        #: inclusive wall time (this operator plus everything below it)
        self.elapsed_s = 0.0
        #: build-side rows a distributed join would copy across nodes
        #: (0 for co-located joins — both sides identically segmented)
        self.rows_shuffled = 0


class PhysicalOperator:
    """Base operator: ``batches()`` wraps ``_run`` with stats timing."""

    kind = "op"

    def __init__(self) -> None:
        self.stats = OperatorStats()
        self.children: List["PhysicalOperator"] = []

    def label(self) -> str:
        raise NotImplementedError

    def batches(self) -> Iterator[ColumnBatch]:
        run = self._run()
        while True:
            started = time.perf_counter()
            try:
                batch = next(run)
            except StopIteration:
                self.stats.elapsed_s += time.perf_counter() - started
                return
            self.stats.elapsed_s += time.perf_counter() - started
            self.stats.batches += 1
            self.stats.rows_out += batch.num_rows
            yield batch

    def _run(self) -> Iterator[ColumnBatch]:
        raise NotImplementedError


def _compact(batch: ColumnBatch, keep: List[int]) -> ColumnBatch:
    """Select rows by index, preserving shared column-list identity."""
    cache: Dict[int, List[Any]] = {}
    columns: List[List[Any]] = []
    for column in batch.columns:
        key = id(column)
        compacted = cache.get(key)
        if compacted is None:
            compacted = [column[i] for i in keep]
            cache[key] = compacted
        columns.append(compacted)
    nodes = [batch.nodes[i] for i in keep]
    return ColumnBatch(batch.names, columns, nodes)


def _apply_predicate(batch: ColumnBatch, predicate) -> ColumnBatch:
    keep = [
        i
        for i in range(batch.num_rows)
        if predicate.evaluate(RowView(batch, i)) is True
    ]
    if len(keep) == batch.num_rows:
        return batch
    return _compact(batch, keep)


class ConstantOp(PhysicalOperator):
    """SELECT without FROM: one empty row on the initiator."""

    kind = "constant"

    def __init__(self, node: logical.ConstantRelation, initiator: str):
        super().__init__()
        self.logical = node
        self.initiator = initiator

    def label(self) -> str:
        return self.logical.label()

    def _run(self) -> Iterator[ColumnBatch]:
        yield ColumnBatch([], [], [self.initiator])


class TableScanOp(PhysicalOperator):
    """Segment-pruned storage scan producing qualified columnar batches.

    The engine's ``scan`` generator (visibility, hash-range row filter,
    buddy failover, WOS read-your-writes) stays the single source of
    storage truth; this operator only batches its rows column-wise and
    applies any pushed-down predicate.
    """

    kind = "scan"

    def __init__(
        self,
        engine,
        node: logical.TableScan,
        txn: Optional[Transaction],
        initiator: str,
        snapshot: int,
        cost: CostReport,
    ):
        super().__init__()
        self.engine = engine
        self.logical = node
        self.txn = txn
        self.initiator = initiator
        self.snapshot = snapshot
        self.cost = cost

    def label(self) -> str:
        return self.logical.label()

    def _run(self) -> Iterator[ColumnBatch]:
        node = self.logical
        plain = (
            node.columns
            if node.columns is not None
            else node.table.column_names()
        )
        names = list(plain)
        if node.qualify:
            names += [f"{node.alias}.{c}" for c in plain]
        predicate = node.predicate
        columns: List[List[Any]] = [[] for __ in plain]
        nodes: List[str] = []
        scanned_before = self.cost.rows_scanned
        for scan_row in self.engine.scan(
            node.key,
            self.snapshot,
            self.txn,
            self.initiator,
            hash_range=node.hash_range,
            cost=self.cost,
            for_update=node.for_update,
        ):
            data = scan_row.data
            for i, name in enumerate(plain):
                columns[i].append(data[name])
            nodes.append(scan_row.node)
            if len(nodes) >= BATCH_ROWS:
                self.stats.rows_scanned += self.cost.rows_scanned - scanned_before
                yield self._finish_batch(names, columns, nodes, predicate)
                columns = [[] for __ in plain]
                nodes = []
                scanned_before = self.cost.rows_scanned
        self.stats.rows_scanned += self.cost.rows_scanned - scanned_before
        if nodes:
            yield self._finish_batch(names, columns, nodes, predicate)

    def _finish_batch(
        self,
        names: List[str],
        columns: List[List[Any]],
        nodes: List[str],
        predicate,
    ) -> ColumnBatch:
        # Qualified names reference the same list objects: zero copies.
        batch = ColumnBatch(names, columns + columns if len(names) > len(columns)
                            else columns, nodes)
        self.stats.rows_in += batch.num_rows
        if predicate is not None:
            batch = _apply_predicate(batch, predicate)
        return batch


class SystemScanOp(PhysicalOperator):
    """System-table rows, computed on (and attributed to) the initiator."""

    kind = "scan-system"

    def __init__(self, engine, node, initiator: str):
        super().__init__()
        self.engine = engine
        self.logical = node
        self.initiator = initiator

    def label(self) -> str:
        return self.logical.label()

    def _rows(self) -> Tuple[List[str], List[Dict[str, Any]]]:
        db = self.engine.database
        if isinstance(self.logical, logical.StorageContainersScan):
            from repro.vertica.tuplemover import storage_container_stats

            names = ["NODE_NAME", "TABLE_NAME", "CONTAINER_COUNT", "LIVE_ROWS"]
            rows = [
                dict(zip(names, stat)) for stat in storage_container_stats(db)
            ]
            return names, rows
        names, sys_rows = db.catalog.system_table_rows(
            self.logical.key, db.epochs.current, db.node_states
        )
        return names, [dict(row) for row in sys_rows]

    def _run(self) -> Iterator[ColumnBatch]:
        plain, rows = self._rows()
        alias = self.logical.alias
        names = list(plain) + [f"{alias}.{c}" for c in plain if "." not in c]
        for start in range(0, len(rows), BATCH_ROWS):
            chunk = rows[start:start + BATCH_ROWS]
            columns = [[row[c] for row in chunk] for c in plain]
            qualified = [
                columns[plain.index(c)] for c in plain if "." not in c
            ]
            self.stats.rows_in += len(chunk)
            yield ColumnBatch(
                names, columns + qualified, [self.initiator] * len(chunk)
            )


class ViewScanOp(PhysicalOperator):
    """Expand a view through the full pipeline, synthetic-ring attributed.

    The inner SELECT runs through ``engine.select`` recursively — same
    CostReport, same epoch-read telemetry — exactly as the legacy
    ``_view_rows`` did; each output row is then attributed to the node
    owning its ``SYNTHETIC_HASH`` range.
    """

    kind = "scan-view"

    def __init__(
        self,
        engine,
        node: logical.ViewScan,
        txn: Transaction,
        initiator: str,
        snapshot: int,
        cost: CostReport,
    ):
        super().__init__()
        self.engine = engine
        self.logical = node
        self.txn = txn
        self.initiator = initiator
        self.snapshot = snapshot
        self.cost = cost

    def label(self) -> str:
        return self.logical.label()

    def _run(self) -> Iterator[ColumnBatch]:
        from repro.vertica.hashring import synthetic_ring, vertica_hash

        db = self.engine.database
        view = db.catalog.view(self.logical.key)
        query = view.query
        if query.at_epoch is None and self.snapshot is not None:
            query = ast.Select(
                query.items,
                query.source,
                joins=query.joins,
                where=query.where,
                group_by=query.group_by,
                having=query.having,
                order_by=query.order_by,
                limit=query.limit,
                at_epoch=self.snapshot,
            )
        result = self.engine.select(
            query, self.txn, self.initiator, cost=self.cost
        )
        ring = synthetic_ring(db.node_names)
        plain = list(dict.fromkeys(result.columns))
        alias = self.logical.alias
        names = list(plain) + [f"{alias}.{c}" for c in plain if "." not in c]
        for start in range(0, len(result.rows), BATCH_ROWS):
            chunk = result.rows[start:start + BATCH_ROWS]
            columns: List[List[Any]] = [[] for __ in plain]
            nodes: List[str] = []
            for row in chunk:
                data = dict(zip(result.columns, row))
                for i, name in enumerate(plain):
                    columns[i].append(data[name])
                values = [data[k] for k in sorted(data)]
                nodes.append(
                    ring.node_for(vertica_hash(*values)) if values
                    else self.initiator
                )
            qualified = [
                columns[plain.index(c)] for c in plain if "." not in c
            ]
            self.stats.rows_in += len(chunk)
            yield ColumnBatch(names, columns + qualified, nodes)


class JoinOp(PhysicalOperator):
    """Nested-loop inner join with the legacy dict-merge semantics.

    The right side is materialized once; for each left row the merged
    row is right ∪ left with left winning on plain-name collisions and
    right winning qualified ones — bit-for-bit the legacy merge.  Output
    rows inherit the *left* row's producing node.
    """

    kind = "join"

    def __init__(
        self,
        node: logical.Join,
        left: PhysicalOperator,
        right: PhysicalOperator,
    ):
        super().__init__()
        self.logical = node
        self.left = left
        self.right = right
        self.children = [left, right]

    def label(self) -> str:
        return self.logical.label()

    def _run(self) -> Iterator[ColumnBatch]:
        condition = self.logical.condition
        right_rows: List[Dict[str, Any]] = []
        right_names: List[str] = []
        right_nodes: List[str] = []
        for batch in self.right.batches():
            right_names = batch.names
            self.stats.rows_in += batch.num_rows
            for i in range(batch.num_rows):
                right_rows.append(dict(RowView(batch, i)))
                right_nodes.append(batch.nodes[i])
        names: Optional[List[str]] = None
        left_node_set: set = set()
        pending: List[Tuple[str, Dict[str, Any]]] = []
        for batch in self.left.batches():
            if names is None:
                names = list(right_names) + [
                    n for n in batch.names if n not in right_names
                ]
            self.stats.rows_in += batch.num_rows
            for i in range(batch.num_rows):
                left_row = dict(RowView(batch, i))
                node = batch.nodes[i]
                left_node_set.add(node)
                for right_row in right_rows:
                    merged = dict(right_row)
                    merged.update(left_row)  # left wins on ambiguity
                    merged.update(
                        {k: v for k, v in right_row.items() if "." in k}
                    )
                    if predicate_holds(condition, merged):
                        pending.append((node, merged))
                        if len(pending) >= BATCH_ROWS:
                            yield self._build(names, pending)
                            pending = []
        if pending and names is not None:
            yield self._build(names, pending)
        # The nested loop broadcasts the (materialized) right side to every
        # node holding probe rows; co-located joins move nothing.
        if not self.logical.colocated:
            for node in right_nodes:
                self.stats.rows_shuffled += len(left_node_set - {node})

    def _build(
        self, names: List[str], rows: List[Tuple[str, Dict[str, Any]]]
    ) -> ColumnBatch:
        columns = [[row[name] for __, row in rows] for name in names]
        return ColumnBatch(names, columns, [node for node, __ in rows])


class _EquiJoinOp(PhysicalOperator):
    """Shared machinery for hash and merge equi-joins.

    Both materialize the two inputs, find matching ``(left, right)`` index
    pairs on the equi keys (NULL keys never match), validate the *full*
    original condition on the merged row — the key match is only a
    prefilter, so semantics stay bit-for-bit with the nested loop — and
    emit in left-major order (left stream order, right materialization
    order), exactly the order the legacy nested loop produced.

    Two optional layers ride on top of that core:

    - **Adaptive checkpoint** — after both inputs are materialized but
      before the join algorithm starts (its "unstarted subtree"), the
      operator consults the query's
      :class:`~repro.vertica.plan.adaptive.AdaptiveContext`, which may
      swap the build side or switch the algorithm based on *observed*
      row counts.  Output order is pair-sorted, so the decision cannot
      change the emitted bytes — only how much work finding them takes.
    - **Provenance tracking** — joins inside a cost-reordered chain
      (``logical.reorder_chain``) record, per output row, each base
      relation's materialization index.  The chain root uses them to
      sort its pairs back into the binder's lexicographic order and to
      re-attribute every output row to the binder-leftmost relation's
      producing node, keeping rows *and* per-node cost attribution
      byte-identical to the unreordered plan.
    """

    #: per-query adaptive-execution context, set by ``build_operator``
    adaptive = None
    #: the algorithm the planner picked (checkpoints may revise it)
    planned_strategy = "hash"

    def __init__(
        self,
        node: logical.Join,
        left: PhysicalOperator,
        right: PhysicalOperator,
    ):
        super().__init__()
        self.logical = node
        self.left = left
        self.right = right
        self.children = [left, right]
        tracking = getattr(node, "reorder_chain", False)
        #: per-output-row {alias: leaf materialization index}, reordered
        #: chains only (None disables all provenance work)
        self.output_provenance: Optional[List[Dict[str, int]]] = (
            [] if tracking else None
        )
        #: alias -> that leaf scan's materialized node list (chains only)
        self.leaf_nodes: Dict[str, List[str]] = {}

    def label(self) -> str:
        return self.logical.label()

    def _materialize(
        self, operator: PhysicalOperator
    ) -> Tuple[List[str], List[Dict[str, Any]], List[str],
               Optional[List[Dict[str, int]]]]:
        names: List[str] = []
        rows: List[Dict[str, Any]] = []
        nodes: List[str] = []
        for batch in operator.batches():
            names = batch.names
            self.stats.rows_in += batch.num_rows
            for i in range(batch.num_rows):
                rows.append(dict(RowView(batch, i)))
                nodes.append(batch.nodes[i])
        prov: Optional[List[Dict[str, int]]] = None
        if self.output_provenance is not None:
            child_prov = getattr(operator, "output_provenance", None)
            if child_prov is not None:
                # a chain join below us: adopt its provenance wholesale
                prov = child_prov
                self.leaf_nodes.update(getattr(operator, "leaf_nodes", {}))
            else:
                alias = getattr(
                    getattr(operator, "logical", None), "alias", ""
                )
                prov = [{alias: i} for i in range(len(rows))]
                self.leaf_nodes[alias] = nodes
        return names, rows, nodes, prov

    @staticmethod
    def _key_of(
        row: Dict[str, Any], refs: List[str]
    ) -> Optional[Tuple[Any, ...]]:
        key = tuple(row[ref] for ref in refs)
        if any(value is None for value in key):
            return None  # NULL never equi-matches
        return key

    def _charge_shuffle(
        self, build_nodes: List[str], probe_nodes: List[str]
    ) -> None:
        """Broadcast-build cost: each build row is copied to every other
        node holding probe rows; a co-located join moves nothing."""
        if self.logical.colocated:
            return
        probe_set = set(probe_nodes)
        for node in build_nodes:
            self.stats.rows_shuffled += len(probe_set - {node})

    def _checkpoint(
        self, observed_left: int, observed_right: int
    ) -> Tuple[str, str]:
        """The runtime (build side, algorithm) decision for this join."""
        raise NotImplementedError

    def _run(self) -> Iterator[ColumnBatch]:
        keys = self.logical.equi_keys
        left_names, left_rows, left_nodes, left_prov = self._materialize(
            self.left
        )
        right_names, right_rows, right_nodes, right_prov = self._materialize(
            self.right
        )
        names = list(right_names) + [
            n for n in left_names if n not in right_names
        ]
        build_side, strategy = self._checkpoint(len(left_rows),
                                                len(right_rows))
        if build_side == "left":
            self._charge_shuffle(left_nodes, right_nodes)
        else:
            self._charge_shuffle(right_nodes, left_nodes)
        left_refs = [left_ref for left_ref, __ in keys]
        right_refs = [right_ref for __, right_ref in keys]
        if strategy == "merge":
            pairs = self._merge_pairs(
                left_rows, right_rows, left_refs, right_refs
            )
        else:
            pairs = self._hash_pairs(
                left_rows, right_rows, left_refs, right_refs, build_side
            )
        self._order_pairs(pairs, left_prov, right_prov)
        yield from self._emit(
            pairs, names, left_rows, right_rows, left_nodes,
            left_prov, right_prov,
        )

    def _hash_pairs(
        self,
        left_rows: List[Dict[str, Any]],
        right_rows: List[Dict[str, Any]],
        left_refs: List[str],
        right_refs: List[str],
        build_side: str,
    ) -> List[Tuple[int, int]]:
        build_right = build_side != "left"
        if build_right:
            build_rows, build_refs = right_rows, right_refs
            probe_rows, probe_refs = left_rows, left_refs
        else:
            build_rows, build_refs = left_rows, left_refs
            probe_rows, probe_refs = right_rows, right_refs
        table: Dict[Tuple[Any, ...], List[int]] = {}
        for index, row in enumerate(build_rows):
            key = self._key_of(row, build_refs)
            if key is None:
                continue
            table.setdefault(key, []).append(index)
        pairs: List[Tuple[int, int]] = []
        for probe_index, row in enumerate(probe_rows):
            key = self._key_of(row, probe_refs)
            if key is None:
                continue
            for build_index in table.get(key, ()):
                pairs.append(
                    (probe_index, build_index)
                    if build_right
                    else (build_index, probe_index)
                )
        return pairs

    def _merge_pairs(
        self,
        left_rows: List[Dict[str, Any]],
        right_rows: List[Dict[str, Any]],
        left_refs: List[str],
        right_refs: List[str],
    ) -> List[Tuple[int, int]]:
        left_keyed = self._sorted_keys(left_rows, left_refs)
        right_keyed = self._sorted_keys(right_rows, right_refs)
        pairs: List[Tuple[int, int]] = []
        i = j = 0
        while i < len(left_keyed) and j < len(right_keyed):
            left_key = left_keyed[i][0]
            right_key = right_keyed[j][0]
            if left_key < right_key:
                i += 1
            elif right_key < left_key:
                j += 1
            else:
                group_end = j
                while (
                    group_end < len(right_keyed)
                    and right_keyed[group_end][0] == left_key
                ):
                    group_end += 1
                while i < len(left_keyed) and left_keyed[i][0] == left_key:
                    left_index = left_keyed[i][1]
                    for jj in range(j, group_end):
                        pairs.append((left_index, right_keyed[jj][1]))
                    i += 1
                j = group_end
        return pairs

    def _sorted_keys(
        self, rows: List[Dict[str, Any]], refs: List[str]
    ) -> List[Tuple[Tuple[Any, ...], int]]:
        keyed = []
        for index, row in enumerate(rows):
            key = self._key_of(row, refs)
            if key is not None:
                keyed.append((key, index))
        keyed.sort(key=lambda item: item[0])
        return keyed

    def _order_pairs(
        self,
        pairs: List[Tuple[int, int]],
        left_prov: Optional[List[Dict[str, int]]],
        right_prov: Optional[List[Dict[str, int]]],
    ) -> None:
        restore = getattr(self.logical, "restore_order", None)
        if restore is None or left_prov is None or right_prov is None:
            pairs.sort()  # the nested loop's left-major output order
            return

        # Chain root: sort back into the binder's lexicographic order —
        # exactly the (a, b, c, ...) enumeration the legacy nested loops
        # over the original FROM order would have produced.
        def binder_key(pair: Tuple[int, int]) -> Tuple[int, ...]:
            merged = dict(left_prov[pair[0]])
            merged.update(right_prov[pair[1]])
            return tuple(merged[alias] for alias in restore)

        pairs.sort(key=binder_key)

    def _emit(
        self,
        pairs: List[Tuple[int, int]],
        names: List[str],
        left_rows: List[Dict[str, Any]],
        right_rows: List[Dict[str, Any]],
        left_nodes: List[str],
        left_prov: Optional[List[Dict[str, int]]] = None,
        right_prov: Optional[List[Dict[str, int]]] = None,
    ) -> Iterator[ColumnBatch]:
        condition = self.logical.condition
        restore = getattr(self.logical, "restore_order", None)
        anchor_alias = restore[0] if restore else None
        anchor_nodes = (
            self.leaf_nodes.get(anchor_alias) if anchor_alias else None
        )
        tracking = (
            self.output_provenance is not None
            and left_prov is not None
            and right_prov is not None
        )
        pending: List[Tuple[str, Dict[str, Any]]] = []
        for left_index, right_index in pairs:
            right_row = right_rows[right_index]
            merged = dict(right_row)
            merged.update(left_rows[left_index])  # left wins on ambiguity
            merged.update({k: v for k, v in right_row.items() if "." in k})
            if predicate_holds(condition, merged):
                node = left_nodes[left_index]
                if tracking:
                    prov = dict(left_prov[left_index])
                    prov.update(right_prov[right_index])
                    self.output_provenance.append(prov)
                    if anchor_nodes is not None:
                        # legacy attribution: the binder-leftmost
                        # relation's row produced the joined row
                        node = anchor_nodes[prov[anchor_alias]]
                pending.append((node, merged))
                if len(pending) >= BATCH_ROWS:
                    yield self._build(names, pending)
                    pending = []
        if pending:
            yield self._build(names, pending)

    def _build(
        self, names: List[str], rows: List[Tuple[str, Dict[str, Any]]]
    ) -> ColumnBatch:
        columns = [[row[name] for __, row in rows] for name in names]
        return ColumnBatch(names, columns, [node for node, __ in rows])


class HashJoinOp(_EquiJoinOp):
    """Equi-join via a hash table on the (estimated) smaller build side."""

    kind = "join-hash"
    planned_strategy = "hash"

    def _checkpoint(
        self, observed_left: int, observed_right: int
    ) -> Tuple[str, str]:
        if self.adaptive is not None:
            return self.adaptive.checkpoint_hash(
                self.logical, observed_left, observed_right
            )
        return self.logical.build_side or "right", "hash"


class MergeJoinOp(_EquiJoinOp):
    """Equi-join by sorting both key arrays and merging equal-key groups.

    Chosen when the build side would overflow the hash-table memory
    budget; the planner guarantees both key columns share one type class,
    so the sorts cannot hit Python's mixed-type ordering ``TypeError``.
    """

    kind = "join-merge"
    planned_strategy = "merge"

    def _checkpoint(
        self, observed_left: int, observed_right: int
    ) -> Tuple[str, str]:
        if self.adaptive is not None:
            return self.adaptive.checkpoint_merge(
                self.logical, observed_left, observed_right
            )
        return self.logical.build_side or "right", "merge"


class FilterOp(PhysicalOperator):
    """Row filter over batches (joins, views, system tables, no-FROM)."""

    kind = "filter"

    def __init__(self, node: logical.Filter, child: PhysicalOperator):
        super().__init__()
        self.logical = node
        self.child = child
        self.children = [child]

    def label(self) -> str:
        return self.logical.label()

    def _run(self) -> Iterator[ColumnBatch]:
        predicate = self.logical.predicate
        for batch in self.child.batches():
            self.stats.rows_in += batch.num_rows
            filtered = _apply_predicate(batch, predicate)
            if filtered.num_rows:
                yield filtered


class ProjectOp(PhysicalOperator):
    """Select-list evaluation; charges per-row output bytes to nodes.

    Plain column references and ``*`` expansion copy column lists by
    reference (the columnar fast path); remaining expressions evaluate
    row-major across items, preserving the legacy error order.
    """

    kind = "project"

    def __init__(
        self,
        node: logical.Project,
        child: PhysicalOperator,
        db,
        cost: CostReport,
    ):
        super().__init__()
        self.logical = node
        self.child = child
        self.children = [child]
        self.db = db
        self.cost = cost

    def label(self) -> str:
        return self.logical.label()

    def _run(self) -> Iterator[ColumnBatch]:
        node = self.logical
        # Materialize first: scan/storage errors must surface before UDx
        # resolution and projection errors, as in the legacy interpreter.
        batches = list(self.child.batches())
        self.stats.rows_in = sum(b.num_rows for b in batches)
        plan: List[Tuple[str, Any]] = []  # (kind, payload)
        for item in node.items:
            if item.star:
                for column in node.source_columns:
                    plan.append(("column", column))
            elif item.udf:
                function = self.db.udx.lookup(item.udf)
                plan.append(("udf", (function, item)))
            elif (
                isinstance(item.expression, ColumnRef)
            ):
                plan.append(("ref", item.expression))
            else:
                plan.append(("expr", item.expression))
        for batch in batches:
            yield self._project_batch(batch, plan)

    def _project_batch(
        self, batch: ColumnBatch, plan: List[Tuple[str, Any]]
    ) -> ColumnBatch:
        n = batch.num_rows
        out_columns: List[List[Any]] = []
        row_major: List[Tuple[int, str, Any]] = []
        for kind, payload in plan:
            if kind == "column":
                # Star expansion uses row.get(): absent columns yield NULL.
                idx = batch.index.get(payload)
                out_columns.append(
                    batch.columns[idx] if idx is not None else [None] * n
                )
            elif kind == "ref" and payload.name in batch.index:
                out_columns.append(batch.columns[batch.index[payload.name]])
            else:
                slot: List[Any] = []
                out_columns.append(slot)
                row_major.append((len(out_columns) - 1, kind, payload))
        if row_major:
            for i in range(n):
                view = RowView(batch, i)
                for slot_index, kind, payload in row_major:
                    if kind == "udf":
                        function, item = payload
                        value = function(
                            [a.evaluate(view) for a in item.udf_args],
                            item.parameters,
                        )
                    else:  # "ref" (missing column raises) or "expr"
                        value = payload.evaluate(view)
                    out_columns[slot_index].append(value)
        self._charge_output(out_columns, batch.nodes, n)
        return ColumnBatch(list(self.logical.output_columns), out_columns,
                           batch.nodes)

    def _charge_output(
        self, out_columns: List[List[Any]], nodes: List[str], n: int
    ) -> None:
        # Runs of same-node rows collapse into one CostReport call; all
        # increments are integer-valued, so totals stay byte-identical.
        run_node: Optional[str] = None
        run_bytes = 0
        run_rows = 0
        for i in range(n):
            nbytes = 0
            for column in out_columns:
                nbytes += _value_bytes(column[i])
            node = nodes[i]
            if node != run_node:
                if run_rows:
                    self.cost.output(run_node, run_bytes, run_rows)
                run_node, run_bytes, run_rows = node, 0, 0
            run_bytes += nbytes
            run_rows += 1
            self.stats.bytes_out += nbytes
        if run_rows:
            self.cost.output(run_node, run_bytes, run_rows)


class AggregateOp(PhysicalOperator):
    """GROUP BY / aggregates with the legacy grouped-list algorithm.

    Group keys keep insertion order; DISTINCT dedups via
    ``dict.fromkeys``; HAVING evaluates against the output row (aliases);
    output rows are attributed (and their bytes charged) to the
    initiator.  The empty-input, no-GROUP-BY fallback row bypasses both
    HAVING and output cost — a legacy quirk the differential tests pin.
    """

    kind = "aggregate"

    def __init__(
        self,
        node: logical.Aggregate,
        child: PhysicalOperator,
        initiator: str,
        cost: CostReport,
    ):
        super().__init__()
        self.logical = node
        self.child = child
        self.children = [child]
        self.initiator = initiator
        self.cost = cost

    def label(self) -> str:
        return self.logical.label()

    def _run(self) -> Iterator[ColumnBatch]:
        node = self.logical
        rows: List[Tuple[str, RowView]] = []
        for batch in self.child.batches():
            for i in range(batch.num_rows):
                rows.append((batch.nodes[i], RowView(batch, i)))
        self.stats.rows_in = len(rows)
        # Input-side charge: what the wire would have carried without
        # pushdown, per producing node (run-length batched, same totals).
        run_node: Optional[str] = None
        run_rows = 0
        for producing_node, __ in rows:
            if producing_node != run_node:
                if run_rows:
                    self.cost.aggregated(run_node, run_rows)
                run_node, run_rows = producing_node, 0
            run_rows += 1
        if run_rows:
            self.cost.aggregated(run_node, run_rows)

        groups: Dict[Tuple[Any, ...], List[RowView]] = {}
        if node.group_by:
            for __, row in rows:
                key = tuple(expr.evaluate(row) for expr in node.group_by)
                groups.setdefault(key, []).append(row)
        else:
            groups[()] = [row for __, row in rows]

        columns = node.output_columns
        out: List[Tuple[Any, ...]] = []
        for key in groups:
            group_rows = groups[key]
            values: List[Any] = []
            for item in node.items:
                if item.aggregate:
                    values.append(_aggregate_value(item, group_rows))
                elif item.expression is not None:
                    if not group_rows:
                        values.append(None)
                    else:
                        values.append(item.expression.evaluate(group_rows[0]))
                else:
                    raise SqlError("SELECT * cannot be combined with aggregates")
            row_tuple = tuple(values)
            if node.having is not None:
                output_row = dict(zip(columns, row_tuple))
                if not predicate_holds(node.having, output_row):
                    continue
            nbytes = sum(_value_bytes(v) for v in row_tuple)
            self.cost.output(self.initiator, nbytes)
            self.stats.bytes_out += nbytes
            out.append(row_tuple)
        if not node.group_by and not out:
            # Aggregates over an empty input still return one row.
            out.append(tuple(
                _aggregate_value(item, []) if item.aggregate else None
                for item in node.items
            ))
        if out:
            out_columns = [list(col) for col in zip(*out)] if columns else []
            yield ColumnBatch(
                list(columns), out_columns, [self.initiator] * len(out)
            )


def _aggregate_value(item: ast.SelectItem, group_rows: List[Any]) -> Any:
    name = item.aggregate
    if item.aggregate_arg is None:
        if name != "COUNT":
            raise SqlError(f"{name} requires an argument")
        return len(group_rows)
    values = [item.aggregate_arg.evaluate(row) for row in group_rows]
    values = [v for v in values if v is not None]
    if item.distinct:
        values = list(dict.fromkeys(values))
    if name == "COUNT":
        return len(values)
    if not values:
        return None
    if name == "SUM":
        return sum(values)
    if name == "AVG":
        return sum(values) / len(values)
    if name == "MIN":
        return min(values)
    if name == "MAX":
        return max(values)
    raise SqlError(f"unknown aggregate {name!r}")  # pragma: no cover


class SortOp(PhysicalOperator):
    """Stable sort by ORDER BY keys with shared NULLS-LAST semantics.

    Keys evaluate against the *output* row (select-list aliases); an
    unknown column yields NULL rather than an error, and NULLs sort last
    in both directions via :func:`repro.ordering.null_last_key`.
    """

    kind = "sort"

    def __init__(self, node: logical.Sort, child: PhysicalOperator):
        super().__init__()
        self.logical = node
        self.child = child
        self.children = [child]

    def label(self) -> str:
        return self.logical.label()

    def _run(self) -> Iterator[ColumnBatch]:
        order_by = self.logical.order_by
        names: List[str] = []
        entries: List[Tuple[str, Tuple[Any, ...]]] = []
        for batch in self.child.batches():
            names = batch.names
            entries.extend(zip(batch.nodes, batch.rows()))
        self.stats.rows_in = len(entries)
        if not entries:
            return

        def sort_key(entry: Tuple[str, Tuple[Any, ...]]):
            __, row = entry
            data = dict(zip(names, row))
            key = []
            for order in order_by:
                try:
                    value = order.expression.evaluate(data)
                except SqlError:
                    value = None
                key.append(null_last_key(value, order.descending))
            return tuple(key)

        entries = sorted(entries, key=sort_key)
        columns = (
            [list(col) for col in zip(*(row for __, row in entries))]
            if names else []
        )
        yield ColumnBatch(list(names), columns, [node for node, __ in entries])


class LimitOp(PhysicalOperator):
    """LIMIT n.

    Drains the child fully before slicing: the legacy interpreter
    projected and cost-charged every row first, so an early-out would
    change the CostReport.
    """

    kind = "limit"

    def __init__(self, node: logical.Limit, child: PhysicalOperator):
        super().__init__()
        self.logical = node
        self.child = child
        self.children = [child]

    def label(self) -> str:
        return self.logical.label()

    def _run(self) -> Iterator[ColumnBatch]:
        remaining = self.logical.count
        for batch in self.child.batches():
            self.stats.rows_in += batch.num_rows
            if remaining <= 0:
                continue  # keep draining for cost fidelity
            if batch.num_rows <= remaining:
                remaining -= batch.num_rows
                yield batch
            else:
                sliced = _compact(batch, list(range(remaining)))
                remaining = 0
                yield sliced


class DmlScanOp(PhysicalOperator):
    """Matching scan for UPDATE/DELETE: rows with physical locations.

    Yields post-predicate :class:`~repro.vertica.engine.ScanRow`s (the
    DML executor needs container/row-index to stage delete vectors), so
    it exposes ``scan_rows()`` instead of columnar batches.  The scan
    still visits — and cost-charges — every replica copy, exactly like
    the legacy DML path.
    """

    kind = "scan-dml"

    def __init__(
        self,
        engine,
        node: logical.TableScan,
        txn: Transaction,
        initiator: str,
        snapshot: int,
        cost: CostReport,
    ):
        super().__init__()
        self.engine = engine
        self.logical = node
        self.txn = txn
        self.initiator = initiator
        self.snapshot = snapshot
        self.cost = cost

    def label(self) -> str:
        suffix = (
            f" | FILTER: {self.logical.predicate.sql()}"
            if self.logical.predicate is not None
            else ""
        )
        return f"DML {self.logical.label()}{suffix}"

    def scan_rows(self):
        node = self.logical
        predicate = node.predicate
        started = time.perf_counter()
        scanned_before = self.cost.rows_scanned
        for scan_row in self.engine.scan(
            node.key,
            self.snapshot,
            self.txn,
            self.initiator,
            cost=self.cost,
            for_update=True,
        ):
            self.stats.rows_in += 1
            if predicate is not None and not predicate_holds(
                predicate, scan_row.data
            ):
                continue
            self.stats.rows_out += 1
            yield scan_row
        self.stats.rows_scanned += self.cost.rows_scanned - scanned_before
        self.stats.elapsed_s += time.perf_counter() - started

    def _run(self) -> Iterator[ColumnBatch]:  # pragma: no cover - unused
        raise NotImplementedError("DML scans stream ScanRows, not batches")
