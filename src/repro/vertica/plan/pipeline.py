"""Glue for the layered pipeline: build, execute, EXPLAIN, PROFILE.

``execute_select`` is the one SELECT execution path: bind → optimize →
build physical operators → drain batches into a :class:`ResultSet`.
Everything the engine used to interpret row-by-row now flows through
here — views, V2S scans, aggregate-pushdown partials, the JDBC bridge
and WLM cost stamping all see the same operators and the same
:class:`~repro.vertica.engine.CostReport` the legacy interpreter
produced, byte for byte.

``explain_lines`` renders the *optimized* logical tree without executing
anything (binding touches only the catalog).  ``PlanProfile`` couples
that tree with per-operator execution stats for ``PROFILE <query>``.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro import telemetry
from repro.vertica.engine import CostReport, HashRange, ResultSet
from repro.vertica.expr import Expression
from repro.vertica.plan import logical, physical
from repro.vertica.plan.adaptive import AdaptiveContext
from repro.vertica.plan.binder import bind_dml_scan, bind_select
from repro.vertica.plan.logical import LogicalPlan
from repro.vertica.plan.optimizer import optimize
from repro.vertica.sql import ast_nodes as ast
from repro.vertica.txn import Transaction


def build_operator(
    engine,
    node: logical.LogicalNode,
    txn: Transaction,
    initiator: str,
    snapshot: int,
    cost: CostReport,
    adaptive: Optional[AdaptiveContext] = None,
) -> physical.PhysicalOperator:
    """Translate one logical node (and its subtree) into operators."""

    def build(child: logical.LogicalNode) -> physical.PhysicalOperator:
        return build_operator(
            engine, child, txn, initiator, snapshot, cost, adaptive
        )

    if isinstance(node, logical.ConstantRelation):
        return physical.ConstantOp(node, initiator)
    if isinstance(node, logical.TableScan):
        return physical.TableScanOp(engine, node, txn, initiator, snapshot, cost)
    if isinstance(node, (logical.SystemTableScan, logical.StorageContainersScan)):
        return physical.SystemScanOp(engine, node, initiator)
    if isinstance(node, logical.ViewScan):
        return physical.ViewScanOp(engine, node, txn, initiator, snapshot, cost)
    if isinstance(node, logical.Join):
        left, right = build(node.left), build(node.right)
        if node.strategy == "hash":
            op: physical.PhysicalOperator = physical.HashJoinOp(
                node, left, right
            )
        elif node.strategy == "merge":
            op = physical.MergeJoinOp(node, left, right)
        else:
            return physical.JoinOp(node, left, right)
        op.adaptive = adaptive
        return op
    if isinstance(node, logical.Filter):
        return physical.FilterOp(node, build(node.child))
    if isinstance(node, logical.Project):
        return physical.ProjectOp(node, build(node.child), engine.database, cost)
    if isinstance(node, logical.Aggregate):
        return physical.AggregateOp(node, build(node.child), initiator, cost)
    if isinstance(node, logical.Sort):
        return physical.SortOp(node, build(node.child))
    if isinstance(node, logical.Limit):
        return physical.LimitOp(node, build(node.child))
    raise AssertionError(f"no physical operator for {type(node).__name__}")


class PipelineExecution:
    """A finished (or failed) run: the plan plus its operator tree."""

    def __init__(
        self,
        plan: LogicalPlan,
        root: physical.PhysicalOperator,
        adaptive: Optional[AdaptiveContext] = None,
    ):
        self.plan = plan
        self.root = root
        #: the query's adaptive-execution context (replan events live here)
        self.adaptive = adaptive

    def operators(self) -> List[Tuple[int, physical.PhysicalOperator]]:
        """(depth, operator) pairs, root first."""
        out: List[Tuple[int, physical.PhysicalOperator]] = []
        stack: List[Tuple[int, physical.PhysicalOperator]] = [(0, self.root)]
        while stack:
            depth, op = stack.pop()
            out.append((depth, op))
            for child in reversed(op.children):
                stack.append((depth + 1, child))
        return out


def optimized_plan(engine, statement: ast.Select) -> LogicalPlan:
    """Bind + optimize through the plan cache.

    Cached plans are keyed by (canonical statement, catalog version,
    join-strategy override, join-reorder flag, stats-corrections
    version).  Estimation reads only catalog statistics plus the
    feedback corrections — all covered by the versions in the key — so a
    cached plan is identical to a fresh optimize at the same key; the
    statement just skips bind → optimize.  Keying the corrections
    version separately means adaptive feedback never poisons the
    initially-cached plan: the version-0 entry survives untouched while
    better-estimated plans earn their own entries.  Statements without a
    stamped ``cache_key`` (built programmatically, not through a session
    parse) take the cold path every time.
    """
    db = engine.database
    cache = getattr(db, "plan_cache", None)
    version = db.catalog.version
    strategy = db.join_strategy
    reorder = bool(getattr(db, "join_reorder", False))
    corrections = getattr(db, "stats_corrections", None)
    corrections_version = 0 if corrections is None else corrections.version
    if cache is not None:
        plan = cache.lookup_plan(
            statement, version, strategy,
            join_reorder=reorder, corrections_version=corrections_version,
        )
        if plan is not None:
            return plan
    plan = optimize(bind_select(db, statement), db)
    if cache is not None:
        cache.store_plan(
            statement, version, strategy, plan,
            join_reorder=reorder, corrections_version=corrections_version,
        )
    return plan


def execute_select(
    engine,
    statement: ast.Select,
    txn: Transaction,
    initiator: str,
    snapshot: int,
    cost: CostReport,
) -> Tuple[ResultSet, PipelineExecution]:
    """Bind, optimize and run one SELECT through physical operators."""
    db = engine.database
    plan = optimized_plan(engine, statement)
    adaptive = AdaptiveContext(
        enabled=bool(getattr(db, "adaptive_execution", False)),
        strategy_override=getattr(db, "join_strategy", "auto"),
    )
    root = build_operator(
        engine, plan.root, txn, initiator, snapshot, cost, adaptive
    )
    rows: List[Tuple[Any, ...]] = []
    for batch in root.batches():
        rows.extend(batch.rows())
    execution = PipelineExecution(plan, root, adaptive)
    for __, op in execution.operators():
        if op.stats.rows_out:
            telemetry.counter(f"vertica.plan.{op.kind}.rows_out").inc(
                op.stats.rows_out
            )
        if op.stats.rows_shuffled:
            telemetry.counter("vertica.plan.join.rows_shuffled").inc(
                op.stats.rows_shuffled
            )
    if adaptive.enabled:
        _record_feedback(db, execution)
    return ResultSet(plan.output_columns, rows, cost=cost), execution


def _record_feedback(db, execution: PipelineExecution) -> None:
    """Feed each scan's estimated-vs-actual delta into the stats store.

    This is the loop's write side: PROFILE-grade observed row counts
    blend into per-table correction factors the estimator consults on
    the next optimize, so a repeat of the same query gets a strictly
    better-estimated plan even before anyone re-runs ANALYZE.
    """
    corrections = getattr(db, "stats_corrections", None)
    if corrections is None:
        return
    for __, op in execution.operators():
        if not isinstance(op, physical.TableScanOp):
            continue
        estimated = op.logical.estimated_rows
        if estimated is None:
            continue
        corrections.record(
            op.logical.table.name, estimated, op.stats.rows_out
        )


# ---------------------------------------------------------------------- DML
def dml_matching_rows(
    engine,
    table_name: str,
    where: Optional[Expression],
    txn: Transaction,
    initiator: str,
    snapshot: int,
    cost: CostReport,
) -> Iterator[Any]:
    """Matching rows of an UPDATE/DELETE, through the same pipeline.

    Yields :class:`~repro.vertica.engine.ScanRow` objects (the caller
    stages delete vectors against their physical locations).  The scan
    visits every replica copy; the optimizer only constant-folds the
    predicate — pruning would change the statement's CostReport.
    """
    plan = optimize(
        bind_dml_scan(engine.database, table_name, where), engine.database
    )
    assert isinstance(plan.root, logical.TableScan)
    op = physical.DmlScanOp(engine, plan.root, txn, initiator, snapshot, cost)
    yield from op.scan_rows()


# -------------------------------------------------------------------- EXPLAIN
def explain_lines(engine, query: ast.Select, initiator: str) -> List[str]:
    """Render the optimized plan tree; binds but never executes."""
    db = engine.database
    plan = optimized_plan(engine, query)
    snapshot = query.at_epoch if query.at_epoch is not None else db.epochs.current
    lines: List[str] = []

    def emit(node: logical.LogicalNode, depth: int) -> None:
        pad = "  " * depth
        if isinstance(node, logical.TableScan):
            lines.extend(pad + line for line in _scan_lines(
                db, node, query, initiator, snapshot
            ))
        else:
            label = node.label()
            if node.estimated_rows is not None:
                label += f" (estimated rows: {node.estimated_rows})"
            lines.append(pad + label)
            if isinstance(node, logical.Aggregate) and node.group_by:
                keys = ", ".join(e.sql() for e in node.group_by)
                lines.append(pad + f"  group by: {keys}")
        for child in node.children():
            emit(child, depth + 1)

    emit(plan.root, 0)
    lines.extend(_join_order_lines(plan))
    if query.at_epoch is not None:
        lines.append(f"snapshot: AT EPOCH {query.at_epoch}")
    if plan.rules_applied:
        lines.append("OPTIMIZER: " + ", ".join(plan.rules_applied))
    return lines


def _join_order_lines(plan: LogicalPlan) -> List[str]:
    """The chosen join order with per-step estimates, per reordered chain."""
    lines: List[str] = []
    for node in plan.nodes():
        if not isinstance(node, logical.Join) or node.restore_order is None:
            continue
        chain: List[logical.Join] = []
        walk: logical.LogicalNode = node
        while isinstance(walk, logical.Join):
            chain.append(walk)
            walk = walk.left
        chain.reverse()  # bottom-up: first join first
        order = [getattr(walk, "alias", "?")]
        order += [getattr(join.right, "alias", "?") for join in chain]
        lines.append(
            "JOIN ORDER: " + " x ".join(order)
            + " (reordered from " + ", ".join(node.restore_order) + ")"
        )
        for step, join in enumerate(chain, start=1):
            described = (
                f"{order[0]} x {order[1]}" if step == 1 else f"+ {order[step]}"
            )
            lines.append(
                f"  step {step}: {described} "
                f"(estimated rows: {join.estimated_rows})"
            )
    return lines


def _scan_lines(
    db, node: logical.TableScan, query: ast.Select, initiator: str, snapshot: int
) -> List[str]:
    lines: List[str] = []
    table = node.table
    if table.unsegmented:
        lines.append(f"SCAN {node.key} [unsegmented, local copy on {initiator}]")
        estimate = db.storage[initiator].live_row_count(node.key, snapshot)
    else:
        hash_range = node.hash_range or HashRange()
        assert table.ring is not None
        scanned = [
            s.node
            for s in table.ring.segments
            if hash_range.intersects(s.lo, s.hi)
        ]
        pruned = [n for n in table.ring.nodes if n not in scanned]
        lines.append(node.label())
        if hash_range.is_full:
            lines.append(f"  segments: all ({len(scanned)} nodes)")
        else:
            lines.append(f"  hash range: [{hash_range.lo}, {hash_range.hi})")
            lines.append(f"  segments scanned: {scanned}")
            if pruned:
                lines.append(f"  segments pruned: {pruned}")
        estimate = sum(
            db.storage[n].live_row_count(node.key, snapshot) for n in scanned
        )
    lines.append(f"  estimated rows: {estimate}")
    if node.predicate is not None:
        lines.append(f"  FILTER: {node.predicate.sql()} [pushed into scan]")
    if node.columns is not None:
        lines.append("  columns: " + ", ".join(node.columns) + " [pruned]")
    return lines


# -------------------------------------------------------------------- PROFILE
class PlanProfile:
    """Per-operator execution stats of one profiled query."""

    def __init__(self, execution: PipelineExecution, result: ResultSet):
        self.execution = execution
        self.result = result

    def operators(self) -> List[Tuple[int, physical.PhysicalOperator]]:
        return self.execution.operators()

    @property
    def replans(self) -> List[Any]:
        """Replan events the adaptive executor recorded for this query."""
        adaptive = getattr(self.execution, "adaptive", None)
        return list(adaptive.events) if adaptive is not None else []

    def operator_rows(self) -> List[Tuple[str, int, int]]:
        """(kind, rows_in, rows_out) per operator, root first."""
        return [
            (op.kind, op.stats.rows_in, op.stats.rows_out)
            for __, op in self.operators()
        ]

    def lines(self) -> List[str]:
        out: List[str] = []
        for depth, op in self.operators():
            stats = op.stats
            parts = [f"rows out: {stats.rows_out}"]
            if stats.rows_in:
                parts.insert(0, f"rows in: {stats.rows_in}")
            estimated = getattr(
                getattr(op, "logical", None), "estimated_rows", None
            )
            if estimated is not None:
                parts.append(f"est rows: {estimated}")
            if stats.rows_scanned:
                parts.append(f"rows scanned: {stats.rows_scanned}")
            if stats.rows_shuffled:
                parts.append(f"rows shuffled: {stats.rows_shuffled}")
            if stats.bytes_out:
                parts.append(f"bytes out: {int(stats.bytes_out)}")
            parts.append(f"batches: {stats.batches}")
            parts.append(f"time: {stats.elapsed_s * 1000.0:.3f} ms")
            out.append("  " * depth + f"{op.label()}  ({', '.join(parts)})")
        plan = self.execution.plan
        out.extend(_join_order_lines(plan))
        if plan.rules_applied:
            out.append("OPTIMIZER: " + ", ".join(plan.rules_applied))
        for event in self.replans:
            out.append("REPLAN: " + event.describe())
        cost = self.result.cost
        out.append(
            "COST: "
            f"rows scanned: {cost.rows_scanned}, "
            f"rows aggregated: {cost.rows_aggregated}, "
            f"rows output: {cost.rows_output}, "
            f"bytes output: {int(cost.bytes_output)}"
        )
        return out
