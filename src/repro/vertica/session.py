"""Client sessions: the JDBC-like statement interface.

A session is bound to one node (the node a Spark task connects to) and
executes SQL text.  Without an explicit BEGIN, each statement runs in its
own transaction and commits on success / rolls back on error
(autocommit); BEGIN/COMMIT/ROLLBACK give explicit control, which the S2V
protocol uses for its "write + mark done under one transaction" phases.

Every executed statement leaves its :class:`ResultSet` (with cost report)
in ``last_result``, and COPY additionally fills ``last_copy_result``.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from repro.vertica.copyload import CopyResult, run_copy
from repro.vertica.engine import ResultSet
from repro.vertica.errors import TransactionError, VerticaError
from repro.vertica.sql import ast_nodes as ast
from repro.vertica.sql.parser import parse_statement
from repro.vertica.txn import ACTIVE, Transaction

_DDL_NODES = (
    ast.CreateTable,
    ast.DropTable,
    ast.RenameTable,
    ast.TruncateTable,
    ast.CreateView,
    ast.DropView,
)


class Session:
    """One client connection to one Vertica node."""

    def __init__(self, database: "repro.vertica.database.VerticaDatabase", node: str):  # noqa: F821
        self.database = database
        self.node = node
        self._txn: Optional[Transaction] = None
        self._explicit = False
        self._closed = False
        self.last_result: Optional[ResultSet] = None
        self.last_copy_result: Optional[CopyResult] = None

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        if self._txn is not None and self._txn.status == ACTIVE:
            self._txn.abort()
        self._txn = None
        self._closed = True
        self.database._release_connection(self.node)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def in_transaction(self) -> bool:
        return self._explicit and self._txn is not None and self._txn.status == ACTIVE

    def _require_open(self) -> None:
        if self._closed:
            raise TransactionError("session is closed")

    def _current_txn(self) -> Transaction:
        if self._txn is None or self._txn.status != ACTIVE:
            self._txn = self.database.begin()
        return self._txn

    # -- execution ------------------------------------------------------------
    def execute(
        self, sql: str, copy_data: Union[bytes, str, None] = None
    ) -> ResultSet:
        """Parse and run one statement; returns its result set."""
        self._require_open()
        statement = parse_statement(sql)

        if isinstance(statement, ast.BeginTransaction):
            if self.in_transaction:
                raise TransactionError("transaction already in progress")
            self._txn = self.database.begin()
            self._explicit = True
            self.last_result = ResultSet()
            return self.last_result
        if isinstance(statement, ast.CommitTransaction):
            self._finish(commit=True)
            self.last_result = ResultSet()
            return self.last_result
        if isinstance(statement, ast.RollbackTransaction):
            self._finish(commit=False)
            self.last_result = ResultSet()
            return self.last_result

        if isinstance(statement, _DDL_NODES):
            # DDL auto-commits any open transaction, as in Vertica.
            if self.in_transaction:
                self._finish(commit=True)
            count = self.database.execute_ddl(statement)
            self.last_result = ResultSet(rowcount=count)
            return self.last_result

        txn = self._current_txn()
        engine = self.database.engine
        try:
            if isinstance(statement, ast.Select):
                result = engine.select(statement, txn, self.node)
            elif isinstance(statement, ast.Explain):
                result = engine.explain(statement, txn, self.node)
            elif isinstance(statement, ast.InsertValues):
                result = engine.insert_values(statement, txn, self.node)
            elif isinstance(statement, ast.InsertSelect):
                result = engine.insert_select(statement, txn, self.node)
            elif isinstance(statement, ast.Update):
                result = engine.update(statement, txn, self.node)
            elif isinstance(statement, ast.Delete):
                result = engine.delete(statement, txn, self.node)
            elif isinstance(statement, ast.CopyStatement):
                result, copy_result = run_copy(engine, statement, txn, copy_data)
                self.last_copy_result = copy_result
            else:  # pragma: no cover - parser restricts statement types
                raise VerticaError(f"unhandled statement {type(statement).__name__}")
        except VerticaError:
            if not self._explicit:
                if self._txn is not None and self._txn.status == ACTIVE:
                    self._txn.abort()
                self._txn = None
            raise
        if not self._explicit:
            self._finish(commit=True)
        self.last_result = result
        return result

    def _finish(self, commit: bool) -> None:
        txn = self._txn
        self._txn = None
        self._explicit = False
        if txn is None or txn.status != ACTIVE:
            if commit and txn is None:
                return  # COMMIT with no open transaction is a no-op
            return
        if commit:
            txn.commit(self.database.storage)
        else:
            txn.abort()

    # -- convenience ---------------------------------------------------------------
    def query(self, sql: str) -> ResultSet:
        """Alias of :meth:`execute` for read statements."""
        return self.execute(sql)

    def scalar(self, sql: str) -> Any:
        return self.execute(sql).scalar()

    def commit(self) -> None:
        self._require_open()
        self._finish(commit=True)

    def rollback(self) -> None:
        self._require_open()
        self._finish(commit=False)
