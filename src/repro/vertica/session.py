"""Client sessions: the JDBC-like statement interface.

A session is bound to one node (the node a Spark task connects to) and
executes SQL text.  Without an explicit BEGIN, each statement runs in its
own transaction and commits on success / rolls back on error
(autocommit); BEGIN/COMMIT/ROLLBACK give explicit control, which the S2V
protocol uses for its "write + mark done under one transaction" phases.

Every executed statement leaves its :class:`ResultSet` (with cost report)
in ``last_result``, and COPY additionally fills ``last_copy_result``.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from repro.vertica.copyload import CopyResult
from repro.vertica.engine import ResultSet
from repro.vertica.errors import SqlError, TransactionError, VerticaError
from repro.vertica.sql import ast_nodes as ast
from repro.vertica.sql.parser import parse_statement
from repro.vertica.txn import ACTIVE, Transaction

_DDL_NODES = (
    ast.CreateTable,
    ast.DropTable,
    ast.RenameTable,
    ast.TruncateTable,
    ast.CreateView,
    ast.DropView,
)


class Session:
    """One client connection to one Vertica node."""

    def __init__(self,
                 database: "repro.vertica.database.VerticaDatabase",  # noqa: F821
                 node: str):
        self.database = database
        self.node = node
        self._txn: Optional[Transaction] = None
        self._explicit = False
        self._closed = False
        #: the WLM pool this session's statements admit through
        self.resource_pool = "GENERAL"
        #: whether SELECTs consult the server-side result cache
        #: (``SET RESULT_CACHE = 'on'|'off'``; default from the database)
        self.result_cache_enabled = database.result_cache_default
        self.last_result: Optional[ResultSet] = None
        self.last_copy_result: Optional[CopyResult] = None

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        if self._txn is not None and self._txn.status == ACTIVE:
            self._txn.abort()
        self._txn = None
        self._closed = True
        self.database._release_connection(self.node)

    def reset(self) -> None:
        """Return the session to its just-connected state (pool checkin).

        Aborts any open transaction and restores the default resource
        pool, so a pooled session handed to the next tenant carries no
        state from the previous one.
        """
        self._require_open()
        if self._txn is not None and self._txn.status == ACTIVE:
            self._txn.abort()
        self._txn = None
        self._explicit = False
        self.resource_pool = "GENERAL"
        self.result_cache_enabled = self.database.result_cache_default
        self.last_result = None
        self.last_copy_result = None

    def set_resource_pool(self, name: str) -> None:
        """Switch the session's WLM pool (``SET RESOURCE_POOL``)."""
        pool = self.database.catalog.resource_pool(name)  # validates
        self.resource_pool = pool.name

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def in_transaction(self) -> bool:
        return self._explicit and self._txn is not None and self._txn.status == ACTIVE

    def _require_open(self) -> None:
        if self._closed:
            raise TransactionError("session is closed")

    def _current_txn(self) -> Transaction:
        if self._txn is None or self._txn.status != ACTIVE:
            self._txn = self.database.begin()
        return self._txn

    # -- execution ------------------------------------------------------------
    def execute(
        self, sql: str, copy_data: Union[bytes, str, None] = None
    ) -> ResultSet:
        """Parse and run one statement; returns its result set."""
        self._require_open()
        # The plan cache's parse level memoises the parsed AST under the
        # canonical statement text (and stamps the normalization keys the
        # plan/result tiers share), so a repeated statement skips the
        # lexer and parser entirely.
        statement = self.database.plan_cache.parse(sql, parse_statement)

        if isinstance(statement, ast.BeginTransaction):
            if self.in_transaction:
                raise TransactionError("transaction already in progress")
            self._txn = self.database.begin()
            self._explicit = True
            self.last_result = ResultSet()
            return self.last_result
        if isinstance(statement, ast.CommitTransaction):
            self._finish(commit=True)
            self.last_result = ResultSet()
            return self.last_result
        if isinstance(statement, ast.RollbackTransaction):
            self._finish(commit=False)
            self.last_result = ResultSet()
            return self.last_result
        if isinstance(statement, ast.SetOption):
            self._set_option(statement)
            self.last_result = ResultSet()
            return self.last_result

        if isinstance(statement, _DDL_NODES):
            # DDL auto-commits any open transaction, as in Vertica.
            if self.in_transaction:
                self._finish(commit=True)
            count = self.database.execute_ddl(statement)
            self.last_result = ResultSet(rowcount=count)
            return self.last_result

        txn = self._current_txn()
        try:
            result, copy_result = self.database.engine.execute(
                statement,
                txn,
                self.node,
                copy_data=copy_data,
                resource_pool=self.resource_pool,
                use_result_cache=self.result_cache_enabled,
            )
            if copy_result is not None:
                self.last_copy_result = copy_result
        except VerticaError:
            if not self._explicit:
                if self._txn is not None and self._txn.status == ACTIVE:
                    self._txn.abort()
                self._txn = None
            raise
        if not self._explicit:
            self._finish(commit=True)
        self.last_result = result
        return result

    def _set_option(self, statement: ast.SetOption) -> None:
        name = statement.name.upper()
        if name == "RESOURCE_POOL":
            self.set_resource_pool(str(statement.value))
            return
        if name == "JOIN_STRATEGY":
            value = str(statement.value).lower()
            if value not in ("auto", "hash", "merge", "nested-loop"):
                raise SqlError(
                    f"invalid JOIN_STRATEGY {statement.value!r} "
                    "(expected auto, hash, merge, or nested-loop)"
                )
            self.database.join_strategy = value
            return
        if name == "RESULT_CACHE":
            value = str(statement.value).lower()
            if value not in ("on", "off"):
                raise SqlError(
                    f"invalid RESULT_CACHE {statement.value!r} "
                    "(expected 'on' or 'off')"
                )
            self.result_cache_enabled = value == "on"
            return
        if name == "JOIN_REORDER":
            value = str(statement.value).lower()
            if value not in ("on", "off"):
                raise SqlError(
                    f"invalid JOIN_REORDER {statement.value!r} "
                    "(expected 'on' or 'off')"
                )
            self.database.join_reorder = value == "on"
            return
        if name == "ADAPTIVE_EXECUTION":
            value = str(statement.value).lower()
            if value not in ("on", "off"):
                raise SqlError(
                    f"invalid ADAPTIVE_EXECUTION {statement.value!r} "
                    "(expected 'on' or 'off')"
                )
            self.database.adaptive_execution = value == "on"
            return
        raise SqlError(f"unknown session option {statement.name!r}")

    def _finish(self, commit: bool) -> None:
        txn = self._txn
        self._txn = None
        self._explicit = False
        if txn is None or txn.status != ACTIVE:
            if commit and txn is None:
                return  # COMMIT with no open transaction is a no-op
            return
        if commit:
            txn.commit(self.database.storage)
        else:
            txn.abort()

    # -- convenience ---------------------------------------------------------------
    def query(self, sql: str) -> ResultSet:
        """Alias of :meth:`execute` for read statements."""
        return self.execute(sql)

    def scalar(self, sql: str) -> Any:
        return self.execute(sql).scalar()

    def commit(self) -> None:
        self._require_open()
        self._finish(commit=True)

    def rollback(self) -> None:
        self._require_open()
        self._finish(commit=False)
