"""SQL front end: lexer, AST and recursive-descent parser.

The dialect covers everything the connector and the paper's experiments
issue against Vertica: DDL (CREATE/DROP/ALTER RENAME/TRUNCATE, views),
DML (INSERT .. VALUES, INSERT .. SELECT, UPDATE, DELETE), queries
(WHERE, inner joins, GROUP BY, ORDER BY, LIMIT, ``AT EPOCH`` snapshot
reads, aggregate and UDF calls with ``USING PARAMETERS``), COPY bulk
loads, and transaction control.
"""

from repro.vertica.sql.lexer import Token, tokenize
from repro.vertica.sql.parser import parse_statement
from repro.vertica.sql import ast_nodes as ast

__all__ = ["Token", "ast", "parse_statement", "tokenize"]
