"""SQL statement AST nodes.

Plain dataclasses; expressions inside statements are
:class:`repro.vertica.expr.Expression` trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.vertica.expr import Expression
from repro.vertica.types import SqlType

AGGREGATE_NAMES = ("COUNT", "SUM", "AVG", "MIN", "MAX")


@dataclass
class ColumnDef:
    name: str
    sql_type: SqlType


@dataclass
class CreateTable:
    table: str
    columns: List[ColumnDef]
    segmented_by: Optional[List[str]] = None  # None => default (all columns)
    unsegmented: bool = False
    if_not_exists: bool = False


@dataclass
class CreateView:
    view: str
    query: "Select"
    or_replace: bool = False


@dataclass
class DropTable:
    table: str
    if_exists: bool = False


@dataclass
class DropView:
    view: str
    if_exists: bool = False


@dataclass
class TruncateTable:
    table: str


@dataclass
class RenameTable:
    table: str
    new_name: str


@dataclass
class InsertValues:
    table: str
    columns: Optional[List[str]]
    rows: List[List[Expression]]


@dataclass
class InsertSelect:
    table: str
    columns: Optional[List[str]]
    query: "Select"


@dataclass
class Update:
    table: str
    assignments: List[Tuple[str, Expression]]
    where: Optional[Expression] = None


@dataclass
class Delete:
    table: str
    where: Optional[Expression] = None


@dataclass
class SelectItem:
    """One select-list entry.

    ``aggregate`` is set (COUNT/SUM/...) when the item is an aggregate
    call; ``udf`` is set when the item is a non-builtin function resolved
    against the UDx registry, with ``udf_args``/``parameters`` carrying the
    call.  Otherwise ``expression`` holds a scalar expression.
    """

    expression: Optional[Expression] = None
    alias: str = ""
    star: bool = False
    aggregate: str = ""
    aggregate_arg: Optional[Expression] = None  # None for COUNT(*)
    distinct: bool = False
    udf: str = ""
    udf_args: List[Expression] = field(default_factory=list)
    parameters: Dict[str, Any] = field(default_factory=dict)


@dataclass
class TableRef:
    name: str
    alias: str = ""


@dataclass
class Join:
    table: TableRef
    condition: Expression


@dataclass
class OrderItem:
    expression: Expression
    descending: bool = False


@dataclass
class Select:
    items: List[SelectItem]
    source: Optional[TableRef]  # None for SELECT without FROM
    joins: List[Join] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: List[Expression] = field(default_factory=list)
    #: evaluated against the aggregate output row (use select-list aliases)
    having: Optional[Expression] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    at_epoch: Optional[int] = None  # None => latest committed; int => snapshot


@dataclass
class CopyStatement:
    table: str
    source: str = "STDIN"
    file_format: str = "CSV"  # CSV | AVRO
    delimiter: str = ","
    reject_max: Optional[int] = None
    direct: bool = False  # load straight to ROS (bulk path)


@dataclass
class Explain:
    query: "Select"


@dataclass
class Profile:
    """``PROFILE <select>``: run the query, report per-operator stats."""

    query: "Select"


@dataclass
class Analyze:
    """``ANALYZE <table> [WITH <n> BUCKETS]``: collect optimizer statistics."""

    table: str
    buckets: Optional[int] = None


@dataclass
class BeginTransaction:
    pass


@dataclass
class CommitTransaction:
    pass


@dataclass
class RollbackTransaction:
    pass


@dataclass
class SetOption:
    """``SET <name> = <value>`` — session options (e.g. RESOURCE_POOL)."""

    name: str
    value: Any
