"""SQL lexer.

Produces a flat token stream: keywords/identifiers (case-insensitive,
uppercased kind ``IDENT`` with original text preserved), numeric literals,
single-quoted string literals with ``''`` escaping, operators and
punctuation.  Comments (``-- ...`` and ``/* ... */``) are skipped.
"""

from __future__ import annotations

from typing import List, NamedTuple

from repro.vertica.errors import SqlError


class Token(NamedTuple):
    kind: str  # IDENT | NUMBER | STRING | OP | EOF
    text: str  # canonical text (identifiers uppercased)
    raw: str  # original text
    pos: int  # character offset in the source


_TWO_CHAR_OPS = ("<>", "!=", "<=", ">=", "||")
_ONE_CHAR_OPS = "(),.*+-/%=<>;"


def tokenize(sql: str) -> List[Token]:
    tokens: List[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        char = sql[i]
        if char.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end == -1:
                raise SqlError(f"unterminated comment at offset {i}")
            i = end + 2
            continue
        if char == "'":
            value, i = _read_string(sql, i)
            tokens.append(Token("STRING", value, value, i))
            continue
        if char.isdigit() or (
            char == "." and i + 1 < n and sql[i + 1].isdigit()
        ):
            text, i = _read_number(sql, i)
            tokens.append(Token("NUMBER", text, text, i))
            continue
        if char.isalpha() or char == "_" or char == '"':
            text, raw, i = _read_identifier(sql, i)
            tokens.append(Token("IDENT", text, raw, i))
            continue
        matched = False
        for op in _TWO_CHAR_OPS:
            if sql.startswith(op, i):
                tokens.append(Token("OP", op, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if char in _ONE_CHAR_OPS:
            tokens.append(Token("OP", char, char, i))
            i += 1
            continue
        raise SqlError(f"unexpected character {char!r} at offset {i}")
    tokens.append(Token("EOF", "", "", n))
    return tokens


def _read_string(sql: str, start: int) -> tuple:
    out = []
    i = start + 1
    n = len(sql)
    while i < n:
        char = sql[i]
        if char == "'":
            if i + 1 < n and sql[i + 1] == "'":
                out.append("'")
                i += 2
                continue
            return "".join(out), i + 1
        out.append(char)
        i += 1
    raise SqlError(f"unterminated string literal starting at offset {start}")


def _read_number(sql: str, start: int) -> tuple:
    i = start
    n = len(sql)
    seen_dot = False
    seen_exp = False
    while i < n:
        char = sql[i]
        if char.isdigit():
            i += 1
        elif char == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif char in "eE" and not seen_exp and i > start:
            seen_exp = True
            i += 1
            if i < n and sql[i] in "+-":
                i += 1
        else:
            break
    return sql[start:i], i


def _read_identifier(sql: str, start: int) -> tuple:
    if sql[start] == '"':
        end = sql.find('"', start + 1)
        if end == -1:
            raise SqlError(f"unterminated quoted identifier at offset {start}")
        raw = sql[start + 1 : end]
        return raw.upper(), raw, end + 1
    i = start
    n = len(sql)
    while i < n and (sql[i].isalnum() or sql[i] in "_$"):
        i += 1
    raw = sql[start:i]
    return raw.upper(), raw, i
